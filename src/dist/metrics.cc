#include "dist/metrics.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/string_util.h"
#include "obs/json.h"

namespace radb {

double OperatorMetrics::TotalSeconds() const {
  double s = 0.0;
  for (double w : worker_seconds) s += w;
  return s;
}

double OperatorMetrics::MaxWorkerSeconds() const {
  double m = 0.0;
  for (double w : worker_seconds) m = std::max(m, w);
  return m;
}

double OperatorMetrics::Skew() const {
  if (worker_seconds.empty()) return 1.0;
  const double total = TotalSeconds();
  if (total <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(worker_seconds.size());
  return MaxWorkerSeconds() / mean;
}

double OperatorMetrics::EstimationError() const {
  if (estimated_rows <= 0.0) return 0.0;
  const double est = std::max(estimated_rows, 1.0);
  const double actual = std::max(static_cast<double>(rows_out), 1.0);
  return std::max(est / actual, actual / est);
}

double QueryMetrics::SimulatedParallelSeconds() const {
  double s = 0.0;
  for (const OperatorMetrics& op : operators) s += op.MaxWorkerSeconds();
  return s;
}

size_t QueryMetrics::TotalBytesShuffled() const {
  size_t s = 0;
  for (const OperatorMetrics& op : operators) s += op.bytes_shuffled;
  return s;
}

size_t QueryMetrics::TotalRowsProcessed() const {
  size_t s = 0;
  for (const OperatorMetrics& op : operators) s += op.rows_out;
  return s;
}

size_t QueryMetrics::TotalBytesSpilled() const {
  size_t s = 0;
  for (const OperatorMetrics& op : operators) s += op.bytes_spilled;
  return s;
}

double QueryMetrics::MaxEstimationError() const {
  double worst = 0.0;
  for (const OperatorMetrics& op : operators) {
    worst = std::max(worst, op.EstimationError());
  }
  return worst;
}

double QueryMetrics::SecondsForOperatorsContaining(
    const std::string& substr) const {
  double s = 0.0;
  for (const OperatorMetrics& op : operators) {
    if (op.name.find(substr) != std::string::npos) s += op.TotalSeconds();
  }
  return s;
}

namespace {

std::string FormatSeconds(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << s << "s";
  return os.str();
}

std::string FormatSkew(double skew) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << skew;
  return os.str();
}

}  // namespace

std::string QueryMetrics::ToString() const {
  // Column widths adapt to the data: no operator name is ever
  // truncated and numeric columns stay aligned however large the
  // counts get.
  const char* kHeaders[] = {"operator", "rows_out", "bytes_out", "shuffled",
                            "spilled",  "time",     "skew"};
  std::vector<std::vector<std::string>> cells;
  for (const OperatorMetrics& op : operators) {
    cells.push_back({op.name, std::to_string(op.rows_out),
                     FormatBytes(static_cast<double>(op.bytes_out)),
                     FormatBytes(static_cast<double>(op.bytes_shuffled)),
                     op.bytes_spilled == 0
                         ? "-"
                         : FormatBytes(static_cast<double>(op.bytes_spilled)),
                     FormatSeconds(op.TotalSeconds()), FormatSkew(op.Skew())});
  }
  constexpr size_t kCols = 7;
  size_t widths[kCols];
  for (size_t c = 0; c < kCols; ++c) {
    widths[c] = std::string(kHeaders[c]).size();
    for (const auto& row : cells) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  for (size_t c = 0; c < kCols; ++c) {
    if (c > 0) os << ' ';
    // Name column left-aligned, numerics right-aligned.
    os << (c == 0 ? std::left : std::right) << std::setw(static_cast<int>(widths[c]))
       << kHeaders[c];
  }
  os << '\n';
  for (const auto& row : cells) {
    for (size_t c = 0; c < kCols; ++c) {
      if (c > 0) os << ' ';
      os << (c == 0 ? std::left : std::right)
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  }
  os << "total wall " << FormatSeconds(wall_seconds) << " | simulated parallel "
     << FormatSeconds(SimulatedParallelSeconds()) << " | shuffled "
     << FormatBytes(static_cast<double>(TotalBytesShuffled()));
  if (TotalBytesSpilled() > 0) {
    os << " | spilled " << FormatBytes(static_cast<double>(TotalBytesSpilled()));
  }
  os << '\n';
  return os.str();
}

std::string QueryMetrics::ToJson() const {
  using obs::JsonEscape;
  using obs::JsonNumber;
  std::ostringstream os;
  os << "{\n  \"wall_seconds\": " << JsonNumber(wall_seconds)
     << ",\n  \"simulated_parallel_seconds\": "
     << JsonNumber(SimulatedParallelSeconds())
     << ",\n  \"total_bytes_shuffled\": " << TotalBytesShuffled()
     << ",\n  \"total_bytes_spilled\": " << TotalBytesSpilled()
     << ",\n  \"total_rows_processed\": " << TotalRowsProcessed()
     << ",\n  \"max_estimation_error\": " << JsonNumber(MaxEstimationError())
     << ",\n  \"operators\": [";
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorMetrics& op = operators[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << JsonEscape(op.name)
       << "\", \"rows_in\": " << op.rows_in
       << ", \"rows_out\": " << op.rows_out
       << ", \"estimated_rows\": " << JsonNumber(op.estimated_rows)
       << ", \"bytes_out\": " << op.bytes_out
       << ", \"rows_shuffled\": " << op.rows_shuffled
       << ", \"bytes_shuffled\": " << op.bytes_shuffled
       << ", \"bytes_spilled\": " << op.bytes_spilled
       << ", \"spill_runs\": " << op.spill_runs
       << ", \"exec_mode\": \"" << (op.vectorized ? "batch" : "row")
       << "\", \"batches\": " << op.batches
       << ", \"total_seconds\": " << JsonNumber(op.TotalSeconds())
       << ", \"max_worker_seconds\": " << JsonNumber(op.MaxWorkerSeconds())
       << ", \"skew\": " << JsonNumber(op.Skew()) << "}";
  }
  os << (operators.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace radb
