#ifndef RADB_DIST_CLUSTER_H_
#define RADB_DIST_CLUSTER_H_

#include <cstddef>

namespace radb {

/// Configuration of the simulated shared-nothing cluster. The paper
/// evaluates on 10 EC2 machines x 8 cores; we model W workers, each
/// owning one horizontal partition of every table. Execution is
/// in-process: each worker's partition loop runs as one task on the
/// Database's thread pool (sequential when Config::num_threads is 1),
/// and the executor records per-worker time and cross-worker byte
/// movement so that simulated parallel runtimes and shuffle volumes
/// match what a real deployment would see.
class Cluster {
 public:
  explicit Cluster(size_t num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers) {}

  size_t num_workers() const { return num_workers_; }

  /// Worker that owns a hash bucket.
  size_t WorkerForHash(size_t hash) const { return hash % num_workers_; }

 private:
  size_t num_workers_;
};

}  // namespace radb

#endif  // RADB_DIST_CLUSTER_H_
