#ifndef RADB_API_DATABASE_H_
#define RADB_API_DATABASE_H_

#include <atomic>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/cancellation.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "mem/memory_tracker.h"
#include "dist/cluster.h"
#include "dist/metrics.h"
#include "obs/exporter.h"
#include "obs/metrics_registry.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "optimizer/query_cache.h"
#include "plan/logical_plan.h"
#include "storage/table.h"
#include "storage/table_store.h"

namespace radb {

class SystemTableCatalog;  // api/system_tables.h

/// Materialized result of a SELECT, gathered from all workers.
struct ResultSet {
  std::vector<SlotInfo> columns;
  RowSet rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return columns.size(); }
  /// Unchecked fast path: indices must be in range (use Get() for the
  /// bounds-checked accessor).
  const Value& at(size_t row, size_t col) const { return rows[row][col]; }

  /// Bounds-checked cell access: InvalidArgument (with the actual
  /// result shape in the message) instead of undefined behavior on a
  /// bad index.
  Result<Value> Get(size_t row, size_t col) const;
  /// Position of the column named `name`; InvalidArgument (listing
  /// the available columns) when absent.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// First value of a single-cell result as double (common for
  /// scalar aggregates). TypeError/ExecutionError when unsuitable.
  Result<double> ScalarDouble() const;
  /// First value of the first row as a matrix.
  Result<la::Matrix> ScalarMatrix() const;
  /// First value of the first row as a vector.
  Result<la::Vector> ScalarVector() const;

  /// Pretty-printed table (for examples / debugging).
  std::string ToString(size_t max_rows = 20) const;
};

/// Per-call execution knobs for Database::Execute. Defaults mean
/// "inherit the Database's Config" for every field.
struct QueryOptions {
  /// Memory budget for this call's queries (intermediates, hash
  /// tables, aggregation state). 0 = Config::memory_budget_bytes
  /// (whose 0 = unlimited). Over-budget operators spill to disk where
  /// possible and produce bit-identical results; unspillable state
  /// that cannot fit fails the statement with ResourceExhausted.
  size_t memory_budget_bytes = 0;
  /// Run this call on a temporary thread pool with this many threads
  /// instead of the database's pool. 0 = use the database pool.
  /// Results are identical at every setting.
  size_t num_threads_override = 0;
  /// When false, this call does not report to the metrics registry
  /// (per-statement QueryStats are still collected — they are free).
  bool collect_metrics = true;
  /// When false, this call records no trace spans even when tracing
  /// is configured on.
  bool trace = true;
  /// Wall-clock deadline for the whole call, in milliseconds from the
  /// moment Execute starts (0 = none). The clock covers queue wait
  /// when the call goes through a service::Session. On expiry the
  /// statement fails with DeadlineExceeded; already-completed
  /// statements of the script are discarded with it.
  uint64_t deadline_ms = 0;
  /// Cooperative cancellation handle. When set, executor row loops
  /// and LA kernels poll it; Cancel() from any thread aborts the call
  /// with Cancelled. Execute creates one internally when deadline_ms
  /// is set without a token.
  std::shared_ptr<CancellationToken> cancellation;
  /// Query id used for spill-file attribution and thread-pool task
  /// tagging. 0 = the Database assigns a fresh id per call.
  uint64_t query_id = 0;
  /// Service-level global memory root this call's per-query tracker
  /// mirrors its charges into (null = standalone). Set by the
  /// admission controller; the global budget itself is enforced at
  /// admission, not per byte.
  mem::MemoryTracker* memory_parent = nullptr;
  /// Session attribution for the radb_queries record (0 = standalone
  /// call, no service session). Set by service::Session.
  uint64_t session_id = 0;
  /// Time this call already spent blocked before reaching Execute —
  /// admission-queue wait and catalog-latch wait — credited to the
  /// record's queue/latch phases. Set by service::Session.
  uint64_t queue_wait_micros = 0;
  uint64_t latch_wait_micros = 0;
};

/// Cheap per-statement execution summary, collected for every
/// statement of an Execute call regardless of observability settings.
struct QueryStats {
  size_t rows = 0;           // rows in the statement's result set
  double wall_seconds = 0.0;
  size_t spill_bytes = 0;       // bytes written to spill files
  size_t peak_memory_bytes = 0; // tracked high-water mark
};

/// Everything an Execute call produced: one ResultSet per
/// result-producing statement (SELECT / EXPLAIN / EXPLAIN ANALYZE, in
/// script order — not just the last one) and one QueryStats per
/// statement of the script.
struct ScriptResult {
  std::vector<ResultSet> result_sets;
  std::vector<QueryStats> statements;

  bool has_results() const { return !result_sets.empty(); }
  /// The last result set; result_sets must be non-empty.
  const ResultSet& last() const { return result_sets.back(); }
};

/// The user-facing database engine: a catalog, a simulated cluster,
/// and the parse → bind → optimize → execute pipeline. This is the
/// "SimSQL with LA extensions" of the paper, as a C++ library.
///
/// Construction goes through two factories:
///
///   // Ephemeral: everything lives in RAM, gone at destruction.
///   auto db = Database::InMemory();
///
///   // Durable: catalog + data persist in a directory. CREATE/DROP/
///   // INSERT are WAL-logged and survive restart; reopening the same
///   // path recovers the previous state with zero re-ingest.
///   auto db = Database::Open("/data/mydb", config);
///
/// Both validate the Config up front and return InvalidArgument for
/// nonsensical combinations instead of failing deep in execution.
/// (The plain constructors remain for embedded in-memory use — they
/// are exactly InMemory() minus the validation.)
///
///   (*db)->Execute("CREATE TABLE v (vec VECTOR[10])").status();
///   auto script = (*db)->Execute(
///       "SELECT SUM(outer_product(vec, vec)) FROM v",
///       QueryOptions{.memory_budget_bytes = 64 << 20});
///
/// Durability semantics (persistent databases):
///  - every mutating statement appends one logical WAL record and —
///    with StorageOptions::wal_fsync — is durable when Execute
///    returns;
///  - Checkpoint() rewrites page files and truncates the WAL; it runs
///    automatically when the WAL outgrows
///    StorageOptions::wal_auto_checkpoint_bytes;
///  - Close() checkpoints and releases the directory lock (also done
///    by the destructor). A closed database must not execute further
///    statements — Close exists so the same process can reopen the
///    directory (cold-restart tests) without destroying the object
///    first.
class Database {
 public:
  /// Observability switches. Everything defaults to off, in which
  /// case the pipeline runs through null-object fast paths (a handful
  /// of branch-on-nullptr checks, no allocation, no clock reads).
  struct ObsOptions {
    /// Record a span tree (parse/bind/optimize/execute, per-operator
    /// and per-worker children) for every Execute call.
    bool enable_tracing = false;
    /// Maintain a metrics registry (counters/gauges/histograms). The
    /// registry is also installed as the process-global one so LA
    /// kernels and storage I/O report into it.
    bool enable_metrics = false;
    /// When non-empty, the Chrome trace-event JSON of the most recent
    /// Execute call is rewritten here after each call (implies
    /// enable_tracing). Load via chrome://tracing or Perfetto.
    std::string trace_path;
    /// When non-empty, the metrics JSON snapshot is rewritten here
    /// after each Execute call (implies enable_metrics).
    std::string metrics_path;
  };

  /// Telemetry knobs: the query-record ring behind the radb_* system
  /// tables, the slow-query log, and the exporter/sampler. The store
  /// itself is always on (it is a bounded in-memory ring and costs a
  /// few microseconds per query); only the export paths need opting
  /// into.
  struct TelemetryOptions {
    /// Serve the radb_* system tables through the catalog. When off,
    /// queries against them fail with CatalogError (the reserved
    /// prefix stays reserved either way).
    bool enable_system_tables = true;
    /// Completed-query records retained for radb_queries /
    /// radb_operators (oldest evicted first).
    size_t query_log_capacity = 256;
    /// Per-query cap on persisted operator records.
    size_t max_operators_per_query = 64;
    /// SQL text is truncated to this many bytes in records.
    size_t max_sql_bytes = 1024;
    /// Queries whose end-to-end time (queue wait included) reaches
    /// this threshold emit one structured JSON line with the full
    /// phase breakdown. 0 = slow-query log off.
    uint64_t slow_query_micros = 0;
    /// Slow-query log sink: appended to this file when non-empty,
    /// else stderr. `slow_query_sink` overrides both (test hook).
    std::string slow_query_log_path;
    std::function<void(const std::string&)> slow_query_sink;
    /// Exporter sinks (see obs::TelemetryExporter). The exporter is
    /// created when any of these is set; the periodic sampler thread
    /// additionally requires sampler_interval_ms != 0 and shuts down
    /// cleanly with the Database.
    std::string prometheus_path;
    std::string jsonl_path;
    std::function<void(const std::string&)> prometheus_callback;
    std::function<void(const std::string&)> jsonl_callback;
    uint64_t sampler_interval_ms = 0;
  };

  struct Config {
    /// Simulated worker count (the paper uses 10 machines x 8 cores;
    /// workers here model the unit of data partitioning).
    size_t num_workers = 8;
    /// Real execution threads in the shared pool that the executor's
    /// per-worker loops and the LA kernels dispatch onto. 0 = one per
    /// hardware core; 1 = fully sequential (the pre-pool behavior).
    /// Results are bit-identical at every setting — only wall-clock
    /// changes.
    size_t num_threads = 0;
    /// Default per-query memory budget in bytes; 0 = unlimited. When
    /// 0, the RADB_TEST_MEMORY_BUDGET environment variable (a byte
    /// size like "16MB") supplies the default — the hook the
    /// memory_budget ctest label uses to rerun suites under pressure.
    /// QueryOptions::memory_budget_bytes overrides per call.
    size_t memory_budget_bytes = 0;
    /// Directory spill files are created in ("" = system temp dir).
    std::string spill_dir;
    /// Master switch for the columnar batch engine. Even when on, a
    /// pipeline runs vectorized only if the optimizer marked its
    /// nodes batch-capable, and never under a memory budget; results
    /// are bit-identical to the row engine either way.
    bool enable_vectorized = true;
    /// Lanes per ColumnBatch on the vectorized path.
    size_t vectorized_batch_rows = 1024;

    /// Hot-traffic caches (plan + result). Folded into one struct so
    /// a service config reads `config.cache.*` in one place.
    struct CacheOptions {
      /// Plan cache: normalized statement text -> optimized plan,
      /// invalidated by any catalog change (DDL or DML — a plan
      /// embeds table pointers and cardinality estimates). Capacity
      /// is an entry count; 0 or enable_plan_cache=false turns it
      /// off.
      bool enable_plan_cache = true;
      size_t plan_cache_entries = 256;
      /// Result cache: materialized result sets of deterministic
      /// read-only statements, replayed while every source table is
      /// unchanged (per-table versions + schema version). Bytes are
      /// charged against a dedicated MemoryTracker root with LRU
      /// eviction; 0 bytes or enable_result_cache=false turns it
      /// off.
      bool enable_result_cache = true;
      size_t result_cache_bytes = 64u << 20;
    };
    CacheOptions cache;

    /// Durability knobs, consulted only by Database::Open (an
    /// in-memory database has no store). Validated at Open:
    /// a buffer pool larger than a non-zero global memory budget is
    /// rejected with InvalidArgument rather than thrashing the spill
    /// path deep in execution.
    struct StorageOptions {
      /// Budget for checkpointed segments resident in RAM. Eviction
      /// is LRU over unpinned clean segments; tables larger than the
      /// pool stream through it.
      size_t buffer_pool_bytes = 256ull << 20;
      /// Page size of the per-table page files (power of two,
      /// >= 512).
      uint32_t page_size = 8192;
      /// Target serialized size of one sealed segment (the unit of
      /// buffer-pool residency and eviction).
      size_t segment_bytes = 64u << 10;
      /// fsync the WAL after every mutating statement (durable by
      /// the time Execute returns). Off = the OS decides; a crash
      /// may lose the most recent statements but never corrupts.
      bool wal_fsync = true;
      /// WAL size that triggers an automatic checkpoint (bounds both
      /// recovery time and dirty-tail size).
      size_t wal_auto_checkpoint_bytes = 64ull << 20;
    };
    StorageOptions storage;

    /// Density-adaptive sparse kernel selection (src/la/sparse). The
    /// policy is process-global — the constructor installs these
    /// values, last-constructed Database wins (same discipline as the
    /// global worker pool).
    struct SparseOptions {
      /// Route dense-by-dense multiplies through the sparse kernel
      /// when the left operand's measured nnz density is at or below
      /// the threshold. Purely a kernel-selection device: results
      /// keep their dense representation and identical cells.
      bool auto_dispatch = true;
      double density_threshold = 0.05;
    };
    SparseOptions sparse;

    Optimizer::Options optimizer;
    ObsOptions obs;
    TelemetryOptions telemetry;

    /// Rejects nonsensical combinations (zero workers, zero-size
    /// pool/pages for a persistent open, buffer pool exceeding the
    /// global memory budget, ...). `persistent` adds the checks that
    /// only matter when a store will be opened. Called by the
    /// factories so misconfiguration fails at Open with
    /// InvalidArgument, not deep in execution.
    Status Validate(bool persistent) const;
  };

  Database() : Database(Config{}) {}
  explicit Database(const Config& config);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens (or creates) a durable database in directory `path`:
  /// validates `config`, recovers the persisted catalog + data
  /// (replaying the WAL tail if the last process died mid-write), and
  /// WAL-logs every subsequent mutating statement. The directory is
  /// flock'd for the lifetime of the instance — a second concurrent
  /// Open of the same path fails.
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                Config config);
  static Result<std::unique_ptr<Database>> Open(const std::string& path) {
    return Open(path, Config{});
  }
  /// An ephemeral database with `config` validated up front. Same
  /// object the plain constructor builds; use this form in new code
  /// so misconfiguration surfaces as InvalidArgument instead of being
  /// silently clamped.
  static Result<std::unique_ptr<Database>> InMemory(Config config);
  static Result<std::unique_ptr<Database>> InMemory() {
    return InMemory(Config{});
  }

  /// True when this database was produced by Open() and is still
  /// attached to its data directory.
  bool persistent() const { return store_ != nullptr; }
  /// The durable store behind a persistent database (null for
  /// in-memory). Exposed for stats (radb_bufferpool) and tests.
  storage::TableStore* table_store() { return store_.get(); }

  /// Forces a checkpoint: seals open segment tails, rewrites page
  /// files and dirty index images, then truncates the WAL. No-op for
  /// an in-memory database.
  Status Checkpoint();
  /// Checkpoints and releases the data directory (also done by the
  /// destructor). Idempotent. The instance must not execute further
  /// statements afterwards; the directory is immediately reopenable
  /// (by this process or another).
  Status Close();

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  const Cluster& cluster() const { return cluster_; }
  /// The execution thread pool (never null; a 1-thread pool runs
  /// everything inline on the caller).
  ThreadPool* pool() { return pool_.get(); }
  /// Resolved Config::num_threads (0 resolves to the hardware core
  /// count at construction).
  size_t num_threads() const { return pool_->num_threads(); }

  /// Executes one or more ';'-separated statements with default
  /// QueryOptions. Returns every result set the script produced plus
  /// per-statement execution stats.
  Result<ScriptResult> Execute(const std::string& sql);
  /// Same, with per-call knobs (memory budget, thread override,
  /// observability toggles).
  Result<ScriptResult> Execute(const std::string& sql,
                               const QueryOptions& options);

  /// Cache-only fast path: serves the whole script from the result
  /// cache WITHOUT parsing when every statement's normalized text has
  /// a valid entry (source tables unchanged, schema unchanged, and
  /// the entry's fill ran within this call's memory budget). Returns
  /// nullopt on any miss — the caller falls back to Execute() — and
  /// records telemetry only on a hit. Service sessions call this
  /// under the shared catalog latch before paying for admission.
  std::optional<ScriptResult> ExecuteCachedOnly(const std::string& sql,
                                                const QueryOptions& options);

  /// Optimizes a SELECT and returns the EXPLAIN rendering with cost
  /// annotations.
  Result<std::string> Explain(const std::string& select_sql);

  /// Optimizes a SELECT and returns the logical plan (for tests that
  /// inspect plan shape).
  Result<LogicalOpPtr> PlanQuery(const std::string& select_sql);

  /// Programmatic CREATE TABLE, equivalent to executing the DDL: the
  /// table is registered in the catalog AND attached to the persistent
  /// store (WAL-logged) when this database was opened with Open().
  /// Callers must use this — not catalog().CreateTable directly — or
  /// the table would silently stay memory-only.
  Result<std::shared_ptr<Table>> CreateTable(const std::string& table,
                                             Schema schema);

  /// Bulk loader: appends rows to a table round-robin across
  /// partitions, bypassing SQL parsing. The fast path used by the
  /// workload generators.
  Status BulkInsert(const std::string& table, std::vector<Row> rows);

  /// Re-shards a table by hash of `column` (one shard per worker).
  /// Joins on that column then skip shuffling this side (paper §2.1).
  Status RepartitionTable(const std::string& table,
                          const std::string& column);

  /// Persists a table (schema + rows) to `path` in the radb binary
  /// table format.
  Status SaveTable(const std::string& table, const std::string& path);
  /// Loads a table file into the catalog under `table` (which must not
  /// exist yet); rows are redistributed across this database's
  /// workers.
  Status LoadTable(const std::string& table, const std::string& path);

  /// Metrics of the most recent Execute call (per-operator times,
  /// shuffle volume — the Figure 4 data). Single-caller accessors:
  /// with concurrent sessions, read per-call stats from ScriptResult
  /// instead.
  const QueryMetrics& last_metrics() const { return last_metrics_; }
  /// Spill / peak-memory summary of the most recent successful
  /// Execute call, aggregated exactly like the call's ScriptResult:
  /// spill is the sum over the script's statements, peak the maximum
  /// (the ablation benchmark's measurement hooks).
  size_t last_spill_bytes() const { return last_spill_bytes_; }
  size_t last_peak_memory_bytes() const { return last_peak_bytes_; }

  /// Span tracer (null unless Config::obs enables tracing). Holds the
  /// span tree of the most recent Execute call.
  obs::Tracer* tracer() { return tracer_.get(); }
  /// Metrics registry (null unless Config::obs enables metrics).
  /// Counters accumulate across the lifetime of the Database.
  obs::MetricsRegistry* metrics_registry() { return metrics_registry_.get(); }
  /// The tracer/metrics pair threaded through the pipeline; both
  /// members are null when observability is off.
  obs::ObsContext obs_context() {
    return obs::ObsContext{tracer_.get(), metrics_registry_.get()};
  }

  /// Completed-query ring + live session registry behind the radb_*
  /// system tables. Never null.
  obs::TelemetryStore* telemetry_store() { return telemetry_.get(); }
  const obs::TelemetryStore* telemetry_store() const {
    return telemetry_.get();
  }
  /// Exporter (null unless Config::telemetry configures a sink or the
  /// sampler).
  obs::TelemetryExporter* exporter() { return exporter_.get(); }

  /// Plan / result caches (null when disabled by Config).
  PlanCache* plan_cache() { return plan_cache_.get(); }
  ResultCache* result_cache() { return result_cache_.get(); }
  /// Number of PREPAREd statements currently registered.
  size_t prepared_count() const;

 private:
  friend class SystemTableCatalog;

  /// One PREPAREd statement: the AST template plus, after the first
  /// EXECUTE, the bound+optimized plan template (parameters still
  /// abstract). The plan is reused while the catalog version and the
  /// arguments' types match; otherwise EXECUTE rebinds. Guarded by
  /// prepared_mu_.
  struct PreparedStatement {
    std::unique_ptr<parser::SelectStmt> body;
    size_t num_params = 0;
    std::shared_ptr<const CachedPlan> plan;  // null until first EXECUTE
    std::vector<DataType> param_types;       // types `plan` was bound with
  };

  /// `stats`, when non-null, receives this statement's spill/peak
  /// totals — the race-free path for concurrent sessions, which must
  /// not read them back from the shared last_* members. `cache_key`,
  /// when non-null, is the statement's normalized text and enables
  /// the plan/result caches for this statement.
  Result<ResultSet> RunSelect(const parser::SelectStmt& stmt,
                              const QueryOptions& options,
                              QueryStats* stats = nullptr,
                              obs::QueryRecord* record = nullptr,
                              const std::string* cache_key = nullptr);
  /// Executes an already-optimized plan: per-query memory tracker,
  /// executor, stats copy-back, and serialization to a ResultSet with
  /// `out_columns` (hidden sort keys trimmed). The shared tail of the
  /// cold path, the plan-cache hit path, and EXECUTE.
  Result<ResultSet> ExecutePlanRows(const LogicalOp& plan,
                                    const std::vector<SlotInfo>& out_columns,
                                    const QueryOptions& options,
                                    QueryStats* stats,
                                    obs::QueryRecord* record);
  /// EXECUTE name (args): evaluates the constant arguments, reuses or
  /// (re)builds the prepared plan template, substitutes parameters
  /// into a private clone, and executes it.
  Result<ResultSet> RunExecutePrepared(const parser::Statement& stmt,
                                       const QueryOptions& options,
                                       QueryStats* stats,
                                       obs::QueryRecord* record);
  /// Inserts a successful SELECT's result into the result cache when
  /// eligible (cache on, key present, deterministic plan).
  void MaybeCacheResult(const std::string& cache_key, const ResultSet& rs,
                        const std::vector<TableDep>& deps, size_t fill_peak);
  /// EXPLAIN ANALYZE: executes the SELECT, then renders the plan tree
  /// annotated with per-node actual metrics (including spill volume).
  /// With a cache key, the plan cache is consulted/filled (under the
  /// EXPLAIN's own normalized text) and the footer reports
  /// cache=plan-hit / cache=miss.
  Result<ResultSet> ExplainAnalyzeSelect(const parser::SelectStmt& stmt,
                                         const QueryOptions& options,
                                         QueryStats* stats = nullptr,
                                         obs::QueryRecord* record = nullptr,
                                         const std::string* cache_key =
                                             nullptr);
  /// The statement loop behind Execute(); `record` accumulates the
  /// phase breakdown and operator records for telemetry.
  Result<ScriptResult> ExecuteScript(const std::string& sql,
                                     const QueryOptions& options,
                                     obs::QueryRecord* record);
  /// Inserts the finished record into the telemetry ring and, when it
  /// crosses Config::telemetry.slow_query_micros, emits one structured
  /// slow-query-log line.
  void RecordQueryTelemetry(obs::QueryRecord record);
  /// The ObsContext for one call, with QueryOptions toggles applied.
  obs::ObsContext QueryObs(const QueryOptions& options);
  /// Rewrites trace/metrics files if Config::obs names paths.
  Status WriteObsFiles() const;

  /// WAL-logs a committed mutating statement and runs the automatic
  /// checkpoint check. No-op for an in-memory database; a logging
  /// failure fails the statement (the in-memory effect stands, but
  /// durability could not be guaranteed).
  Status LogMutation(const std::function<Status(storage::TableStore&)>& log);

  Config config_;
  Cluster cluster_;
  Catalog catalog_;
  /// The durable half (null = in-memory). Declared before any member
  /// that could reference pooled segments and destroyed by explicit
  /// Close() in the destructor, after queries have drained.
  std::unique_ptr<storage::TableStore> store_;
  /// Guards the last-call snapshots below. Execution itself writes
  /// into per-call QueryMetrics locals; only the final copy-back to
  /// these legacy accessors takes the lock, so concurrent sessions
  /// never race on mid-flight metrics.
  mutable std::mutex stats_mu_;
  QueryMetrics last_metrics_;
  size_t last_spill_bytes_ = 0;
  size_t last_peak_bytes_ = 0;
  /// Ids handed to calls that did not bring one (spill attribution,
  /// pool task tags). Starts at 1; 0 means "unassigned".
  std::atomic<uint64_t> next_query_id_{1};
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::MetricsRegistry> metrics_registry_;
  std::unique_ptr<obs::TelemetryStore> telemetry_;
  /// The radb_* system-table provider (null when disabled); registered
  /// with catalog_ at construction. Defined in api/system_tables.h.
  std::unique_ptr<SystemTableCatalog> system_tables_;
  /// Declared after the registry/store it reads so its destructor
  /// (which joins the sampler thread) runs first.
  std::unique_ptr<obs::TelemetryExporter> exporter_;
  /// Lazily-opened append sink for the slow-query log.
  std::mutex slow_log_mu_;
  std::ofstream slow_log_;
  /// Hot-traffic caches (null when disabled). Mutation of catalog /
  /// tables happens under the service's unique catalog latch; the
  /// caches themselves are internally synchronized leaf structures.
  std::unique_ptr<PlanCache> plan_cache_;
  std::unique_ptr<ResultCache> result_cache_;
  /// PREPAREd statements by lowercase name.
  mutable std::mutex prepared_mu_;
  std::map<std::string, std::shared_ptr<PreparedStatement>> prepared_;
};

}  // namespace radb

#endif  // RADB_API_DATABASE_H_
