#ifndef RADB_API_DATABASE_H_
#define RADB_API_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "dist/cluster.h"
#include "dist/metrics.h"
#include "optimizer/optimizer.h"
#include "plan/logical_plan.h"
#include "storage/table.h"

namespace radb {

/// Materialized result of a SELECT, gathered from all workers.
struct ResultSet {
  std::vector<SlotInfo> columns;
  RowSet rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return columns.size(); }
  const Value& at(size_t row, size_t col) const { return rows[row][col]; }

  /// First value of a single-cell result as double (common for
  /// scalar aggregates). TypeError/ExecutionError when unsuitable.
  Result<double> ScalarDouble() const;
  /// First value of the first row as a matrix.
  Result<la::Matrix> ScalarMatrix() const;
  /// First value of the first row as a vector.
  Result<la::Vector> ScalarVector() const;

  /// Pretty-printed table (for examples / debugging).
  std::string ToString(size_t max_rows = 20) const;
};

/// The user-facing database engine: a catalog, a simulated cluster,
/// and the parse → bind → optimize → execute pipeline. This is the
/// "SimSQL with LA extensions" of the paper, as a C++ library.
///
/// Example:
///   Database db;
///   db.ExecuteSql("CREATE TABLE v (vec VECTOR[10])").status();
///   ...
///   auto rs = db.ExecuteSql(
///       "SELECT SUM(outer_product(vec, vec)) FROM v");
class Database {
 public:
  struct Config {
    /// Simulated worker count (the paper uses 10 machines x 8 cores;
    /// workers here model the unit of data partitioning).
    size_t num_workers = 8;
    Optimizer::Options optimizer;
  };

  Database() : Database(Config{}) {}
  explicit Database(const Config& config);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  const Cluster& cluster() const { return cluster_; }

  /// Executes one or more ';'-separated statements. The returned
  /// ResultSet is that of the last SELECT (empty for DDL/DML-only
  /// scripts).
  Result<ResultSet> ExecuteSql(const std::string& sql);

  /// Optimizes a SELECT and returns the EXPLAIN rendering with cost
  /// annotations.
  Result<std::string> Explain(const std::string& select_sql);

  /// Optimizes a SELECT and returns the logical plan (for tests that
  /// inspect plan shape).
  Result<LogicalOpPtr> PlanQuery(const std::string& select_sql);

  /// Bulk loader: appends rows to a table round-robin across
  /// partitions, bypassing SQL parsing. The fast path used by the
  /// workload generators.
  Status BulkInsert(const std::string& table, std::vector<Row> rows);

  /// Re-shards a table by hash of `column` (one shard per worker).
  /// Joins on that column then skip shuffling this side (paper §2.1).
  Status RepartitionTable(const std::string& table,
                          const std::string& column);

  /// Persists a table (schema + rows) to `path` in the radb binary
  /// table format.
  Status SaveTable(const std::string& table, const std::string& path);
  /// Loads a table file into the catalog under `table` (which must not
  /// exist yet); rows are redistributed across this database's
  /// workers.
  Status LoadTable(const std::string& table, const std::string& path);

  /// Metrics of the most recent ExecuteSql call (per-operator times,
  /// shuffle volume — the Figure 4 data).
  const QueryMetrics& last_metrics() const { return last_metrics_; }

 private:
  Result<ResultSet> RunSelect(const parser::SelectStmt& stmt);

  Config config_;
  Cluster cluster_;
  Catalog catalog_;
  QueryMetrics last_metrics_;
};

}  // namespace radb

#endif  // RADB_API_DATABASE_H_
