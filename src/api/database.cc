#include "api/database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "api/system_tables.h"
#include "binder/binder.h"
#include "common/string_util.h"
#include "exec/executor.h"
#include "exec/expr_eval.h"
#include "la/sparse/sparse.h"
#include "mem/memory_tracker.h"
#include "obs/metrics_registry.h"
#include "mem/spill_file.h"
#include "parser/normalize.h"
#include "parser/parser.h"
#include "storage/serialize.h"

namespace radb {

Result<double> ResultSet::ScalarDouble() const {
  if (rows.empty() || rows[0].empty()) {
    return Status::ExecutionError("empty result set");
  }
  return rows[0][0].AsDouble();
}

Result<la::Matrix> ResultSet::ScalarMatrix() const {
  if (rows.empty() || rows[0].empty()) {
    return Status::ExecutionError("empty result set");
  }
  if (rows[0][0].kind() != TypeKind::kMatrix) {
    return Status::TypeError("result is not a MATRIX");
  }
  return rows[0][0].Densified().matrix();
}

Result<la::Vector> ResultSet::ScalarVector() const {
  if (rows.empty() || rows[0].empty()) {
    return Status::ExecutionError("empty result set");
  }
  if (rows[0][0].kind() != TypeKind::kVector) {
    return Status::TypeError("result is not a VECTOR");
  }
  return rows[0][0].vector();
}

Result<Value> ResultSet::Get(size_t row, size_t col) const {
  if (row >= rows.size()) {
    return Status::InvalidArgument(
        "row index " + std::to_string(row) + " out of range (result has " +
        std::to_string(rows.size()) + " rows)");
  }
  if (col >= rows[row].size()) {
    return Status::InvalidArgument(
        "column index " + std::to_string(col) +
        " out of range (result has " + std::to_string(rows[row].size()) +
        " columns)");
  }
  return rows[row][col];
}

Result<size_t> ResultSet::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return i;
  }
  std::string available;
  for (const SlotInfo& s : columns) {
    if (!available.empty()) available += ", ";
    available += s.name;
  }
  return Status::InvalidArgument("no column named '" + name +
                                 "' (available: " + available + ")");
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os << " | ";
    os << columns[i].name;
  }
  os << "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) os << " | ";
      os << rows[r][c].ToString();
    }
    os << "\n";
  }
  if (rows.size() > max_rows) {
    os << "... (" << rows.size() << " rows)\n";
  }
  return os.str();
}

namespace {

/// Evaluates an INSERT ... VALUES expression: constants, arithmetic,
/// and built-in function calls only (no column references).
Result<Value> EvalConstExpr(const Catalog& catalog,
                            const parser::Expr& pe) {
  using PK = parser::Expr::Kind;
  switch (pe.kind) {
    case PK::kIntLiteral:
      return Value::Int(pe.int_value);
    case PK::kDoubleLiteral:
      return Value::Double(pe.double_value);
    case PK::kStringLiteral:
      return Value::String(pe.string_value);
    case PK::kBoolLiteral:
      return Value::Bool(pe.bool_value);
    case PK::kNullLiteral:
      return Value::Null();
    case PK::kUnaryOp: {
      RADB_ASSIGN_OR_RETURN(Value v, EvalConstExpr(catalog, *pe.children[0]));
      if (pe.op == parser::OpKind::kNeg) return EvalNegate(v);
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.bool_value());
    }
    case PK::kBinaryOp: {
      RADB_ASSIGN_OR_RETURN(Value l, EvalConstExpr(catalog, *pe.children[0]));
      RADB_ASSIGN_OR_RETURN(Value r, EvalConstExpr(catalog, *pe.children[1]));
      switch (pe.op) {
        case parser::OpKind::kAdd:
          return EvalArith(ArithOp::kAdd, l, r);
        case parser::OpKind::kSub:
          return EvalArith(ArithOp::kSub, l, r);
        case parser::OpKind::kMul:
          return EvalArith(ArithOp::kMul, l, r);
        case parser::OpKind::kDiv:
          return EvalArith(ArithOp::kDiv, l, r);
        default:
          return Status::BindError("unsupported operator in INSERT VALUES");
      }
    }
    case PK::kFunctionCall: {
      RADB_ASSIGN_OR_RETURN(const BuiltinFunction* fn,
                            catalog.functions().Lookup(pe.name));
      std::vector<Value> args;
      for (const auto& c : pe.children) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalConstExpr(catalog, *c));
        args.push_back(std::move(v));
      }
      return fn->eval(args);
    }
    case PK::kParam:
      return Status::BindError(
          "parameter marker ? is not allowed in a constant expression");
    default:
      return Status::BindError("INSERT VALUES allows constants only");
  }
}

/// Accumulates wall time into one phase of a QueryRecord on scope
/// exit, so early error returns still charge the partial phase.
/// No-ops on a null record.
class PhaseTimer {
 public:
  PhaseTimer(obs::QueryRecord* record, obs::QueryPhase phase)
      : record_(record),
        phase_(phase),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    if (record_ == nullptr) return;
    record_->phases[phase_] += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  obs::QueryRecord* record_;
  obs::QueryPhase phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Flattens a query's executed-operator metrics into the persistable
/// records radb_operators serves.
void AppendOperatorRecords(const QueryMetrics& qm, obs::QueryRecord* record) {
  if (record == nullptr) return;
  for (size_t i = 0; i < qm.operators.size(); ++i) {
    const OperatorMetrics& m = qm.operators[i];
    obs::OperatorRecord op;
    op.op_index = static_cast<int64_t>(record->operators.size());
    op.name = m.name;
    op.estimated_rows = m.estimated_rows;
    op.actual_rows = static_cast<int64_t>(m.rows_out);
    op.rows_in = static_cast<int64_t>(m.rows_in);
    op.worker_seconds = m.TotalSeconds();
    op.max_worker_seconds = m.MaxWorkerSeconds();
    op.skew = m.Skew();
    op.rows_shuffled = static_cast<int64_t>(m.rows_shuffled);
    op.bytes_shuffled = static_cast<int64_t>(m.bytes_shuffled);
    op.bytes_spilled = static_cast<int64_t>(m.bytes_spilled);
    op.spill_runs = static_cast<int64_t>(m.spill_runs);
    op.exec_mode = m.vectorized ? "batch" : "row";
    op.batches = static_cast<int64_t>(m.batches);
    record->operators.push_back(std::move(op));
  }
}

}  // namespace

Database::Database(const Config& config)
    : config_(config), cluster_(config.num_workers) {
  catalog_ = Catalog(config.num_workers);
  if (config_.memory_budget_bytes == 0) {
    // Test hook: RADB_TEST_MEMORY_BUDGET=16MB reruns any suite under
    // a tight default budget (the ctest `memory_budget` label).
    if (const char* env = std::getenv("RADB_TEST_MEMORY_BUDGET")) {
      config_.memory_budget_bytes = ParseByteSize(env);
    }
  }
  pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  // Install as the process-global pool so the LA kernels — free
  // functions with no path to a Database — parallelize over the same
  // threads (and stay sequential when invoked from inside an already
  // parallel executor loop). The scoped install removes this entry
  // from anywhere in the registration stack at destruction, so two
  // live Databases can be torn down in any order without one
  // resurrecting the other's freed pool.
  InstallGlobalPool(pool_.get());
  la::sparse::DispatchPolicy::Set(config_.sparse.auto_dispatch,
                                  config_.sparse.density_threshold);
  if (config_.obs.enable_tracing || !config_.obs.trace_path.empty()) {
    tracer_ = std::make_unique<obs::Tracer>();
  }
  if (config_.obs.enable_metrics || !config_.obs.metrics_path.empty()) {
    metrics_registry_ = std::make_unique<obs::MetricsRegistry>();
    // Install as the process-global registry so call sites with no
    // path to a Database (LA kernels, storage I/O) report here too.
    obs::InstallGlobalMetrics(metrics_registry_.get());
  }
  // Contention profiling: every retired pool region reports its
  // startup wait (submission -> first index claim, i.e. time the
  // region sat queued behind other queries' work) and total run time.
  if (metrics_registry_ != nullptr) {
    obs::Histogram* wait =
        metrics_registry_->histogram("pool.region_wait_seconds");
    obs::Histogram* run =
        metrics_registry_->histogram("pool.region_run_seconds");
    pool_->SetRegionObserver([wait, run](double wait_s, double run_s) {
      wait->Observe(wait_s);
      run->Observe(run_s);
    });
  }
  if (config_.cache.enable_plan_cache && config_.cache.plan_cache_entries > 0) {
    plan_cache_ =
        std::make_unique<PlanCache>(config_.cache.plan_cache_entries);
  }
  if (config_.cache.enable_result_cache &&
      config_.cache.result_cache_bytes > 0) {
    // A dedicated standalone tracker root: cache residency is a
    // database-lifetime charge, deliberately NOT part of any query or
    // service budget (whose leak assertions expect zero at idle).
    result_cache_ = std::make_unique<ResultCache>(
        "result_cache", config_.cache.result_cache_bytes);
  }
  // Startup hygiene: reclaim spill files orphaned by a previous
  // process that died between mkstemp and unlink. Live owners (pid
  // probe) and young pid-less files (age check) are left alone.
  (void)mem::SweepOrphanedSpillFiles(config_.spill_dir);
  telemetry_ = std::make_unique<obs::TelemetryStore>(
      obs::TelemetryStore::Options{config_.telemetry.query_log_capacity,
                                   config_.telemetry.max_operators_per_query,
                                   config_.telemetry.max_sql_bytes});
  if (config_.telemetry.enable_system_tables) {
    system_tables_ = std::make_unique<SystemTableCatalog>(this);
    catalog_.RegisterSystemTableProvider(system_tables_.get());
  }
  const TelemetryOptions& t = config_.telemetry;
  if (!t.prometheus_path.empty() || !t.jsonl_path.empty() ||
      t.prometheus_callback || t.jsonl_callback ||
      t.sampler_interval_ms != 0) {
    obs::TelemetryExporter::Options eo;
    eo.prometheus_path = t.prometheus_path;
    eo.jsonl_path = t.jsonl_path;
    eo.prometheus_callback = t.prometheus_callback;
    eo.jsonl_callback = t.jsonl_callback;
    eo.interval_ms = t.sampler_interval_ms == 0 ? 1000 : t.sampler_interval_ms;
    exporter_ = std::make_unique<obs::TelemetryExporter>(
        metrics_registry_.get(), telemetry_.get(), std::move(eo));
    if (t.sampler_interval_ms != 0) exporter_->StartSampler();
  }
}

Database::~Database() {
  // Flush-on-close: checkpoint + release the directory lock while the
  // metrics registry (whose counters the store holds) is still alive.
  if (store_ != nullptr) (void)store_->Close();
  if (exporter_ != nullptr) exporter_->StopSampler();
  obs::UninstallGlobalMetrics(metrics_registry_.get());
  UninstallGlobalPool(pool_.get());
}

Status Database::Config::Validate(bool persistent) const {
  if (num_workers == 0) {
    return Status::InvalidArgument("Config::num_workers must be at least 1");
  }
  if (enable_vectorized && vectorized_batch_rows == 0) {
    return Status::InvalidArgument(
        "Config::vectorized_batch_rows must be at least 1 when the "
        "vectorized engine is enabled");
  }
  if (!persistent) return Status::OK();
  const StorageOptions& s = storage;
  if (s.buffer_pool_bytes == 0) {
    return Status::InvalidArgument(
        "StorageOptions::buffer_pool_bytes must be non-zero for a "
        "persistent database");
  }
  if (s.page_size < 512 || (s.page_size & (s.page_size - 1)) != 0) {
    return Status::InvalidArgument(
        "StorageOptions::page_size must be a power of two >= 512 (got " +
        std::to_string(s.page_size) + ")");
  }
  if (s.segment_bytes == 0) {
    return Status::InvalidArgument(
        "StorageOptions::segment_bytes must be non-zero");
  }
  if (s.segment_bytes > s.buffer_pool_bytes) {
    return Status::InvalidArgument(
        "StorageOptions::segment_bytes (" + std::to_string(s.segment_bytes) +
        ") exceeds buffer_pool_bytes (" +
        std::to_string(s.buffer_pool_bytes) +
        "): not even one segment would be admissible");
  }
  if (memory_budget_bytes != 0 &&
      s.buffer_pool_bytes > memory_budget_bytes) {
    return Status::InvalidArgument(
        "StorageOptions::buffer_pool_bytes (" +
        std::to_string(s.buffer_pool_bytes) +
        ") exceeds the global memory budget (" +
        std::to_string(memory_budget_bytes) +
        "); shrink the pool or raise Config::memory_budget_bytes");
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> Database::InMemory(Config config) {
  RADB_RETURN_NOT_OK(config.Validate(/*persistent=*/false));
  return std::make_unique<Database>(config);
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 Config config) {
  if (path.empty()) {
    return Status::InvalidArgument(
        "Database::Open requires a data directory path (use InMemory() "
        "for an ephemeral database)");
  }
  RADB_RETURN_NOT_OK(config.Validate(/*persistent=*/true));
  auto db = std::make_unique<Database>(config);
  storage::TableStore::Options so;
  so.data_dir = path;
  so.page_size = config.storage.page_size;
  so.segment_bytes = config.storage.segment_bytes;
  so.buffer_pool_bytes = config.storage.buffer_pool_bytes;
  so.wal_sync = config.storage.wal_fsync
                    ? storage::TableStore::WalSync::kCommit
                    : storage::TableStore::WalSync::kNone;
  so.wal_auto_checkpoint_bytes = config.storage.wal_auto_checkpoint_bytes;
  so.metrics = db->metrics_registry_.get();
  RADB_ASSIGN_OR_RETURN(db->store_,
                        storage::TableStore::Open(so, &db->catalog_));
  return db;
}

Status Database::Checkpoint() {
  if (store_ == nullptr) return Status::OK();
  return store_->Checkpoint();
}

Status Database::Close() {
  if (store_ == nullptr) return Status::OK();
  return store_->Close();
}

Status Database::LogMutation(
    const std::function<Status(storage::TableStore&)>& log) {
  if (store_ == nullptr) return Status::OK();
  RADB_RETURN_NOT_OK(log(*store_));
  return store_->MaybeAutoCheckpoint();
}

Result<std::shared_ptr<Table>> Database::CreateTable(const std::string& table,
                                                     Schema schema) {
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                        catalog_.CreateTable(table, std::move(schema)));
  if (store_ != nullptr) {
    RADB_RETURN_NOT_OK(store_->AttachNewTable(t));
    RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
      return s.LogCreateTable(t->name(), t->schema());
    }));
  }
  return t;
}

Status Database::BulkInsert(const std::string& table, std::vector<Row> rows) {
  if (Catalog::IsSystemName(table)) {
    return Status::CatalogError("system table " + ToLower(table) +
                                " is read-only");
  }
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog_.GetTable(table));
  RADB_RETURN_NOT_OK(LogMutation(
      [&](storage::TableStore& s) { return s.LogInsert(t->name(), rows); }));
  RADB_RETURN_NOT_OK(t->InsertAll(std::move(rows)));
  catalog_.BumpDataVersion();
  return Status::OK();
}

obs::ObsContext Database::QueryObs(const QueryOptions& options) {
  obs::ObsContext obs = obs_context();
  if (!options.trace) obs.tracer = nullptr;
  if (!options.collect_metrics) obs.metrics = nullptr;
  return obs;
}

Result<ResultSet> Database::RunSelect(const parser::SelectStmt& stmt,
                                      const QueryOptions& options,
                                      QueryStats* stats,
                                      obs::QueryRecord* record,
                                      const std::string* cache_key) {
  const obs::ObsContext obs = QueryObs(options);
  const size_t budget = options.memory_budget_bytes != 0
                            ? options.memory_budget_bytes
                            : config_.memory_budget_bytes;
  // 1. Result cache: replay a materialized result while every source
  // table (and the schema) is unchanged. Served only when this call's
  // budget is unlimited or at least the filling run's peak, so a
  // budget that would have failed the cold run with ResourceExhausted
  // is never satisfied from cache.
  if (cache_key != nullptr && result_cache_ != nullptr) {
    if (auto hit = result_cache_->Lookup(*cache_key, catalog_, budget)) {
      if (record != nullptr) record->cache_result_hits++;
      if (obs.metrics != nullptr) obs.metrics->Add("cache.result_hits", 1);
      PhaseTimer serialize_timer(record, obs::QueryPhase::kSerialize);
      ResultSet rs;
      rs.columns = hit->columns;
      rs.rows = hit->rows;
      return rs;
    }
    if (obs.metrics != nullptr) {
      obs.metrics->Add("cache.result_misses", 1);
    }
  }

  // 2. Plan cache: skip bind + optimize when this exact normalized
  // statement was planned against this exact catalog version.
  std::shared_ptr<const CachedPlan> cached;
  if (cache_key != nullptr && plan_cache_ != nullptr) {
    cached = plan_cache_->Lookup(*cache_key, catalog_.version());
    if (obs.metrics != nullptr) {
      obs.metrics->Add(cached != nullptr ? "cache.plan_hits"
                                         : "cache.plan_misses",
                       1);
    }
  }
  std::shared_ptr<const LogicalOp> plan;
  std::vector<SlotInfo> out_columns;
  std::vector<TableDep> deps;
  bool result_cacheable = false;
  if (cached != nullptr) {
    if (record != nullptr) record->cache_plan_hits++;
    plan = cached->plan;
    out_columns = cached->out_columns;
    deps = cached->deps;
    result_cacheable = cached->result_cacheable;
  } else {
    Binder binder(catalog_);
    std::unique_ptr<BoundQuery> bound;
    {
      obs::ScopedSpan bind_span(obs.tracer, "bind", "pipeline");
      PhaseTimer bind_timer(record, obs::QueryPhase::kBind);
      RADB_ASSIGN_OR_RETURN(bound, binder.Bind(stmt));
    }
    out_columns = bound->output;
    const size_t visible = bound->num_visible_outputs == 0
                               ? out_columns.size()
                               : bound->num_visible_outputs;
    out_columns.resize(std::min(visible, out_columns.size()));
    Optimizer optimizer(config_.optimizer);
    LogicalOpPtr planned;
    {
      obs::ScopedSpan optimize_span(obs.tracer, "optimize", "pipeline");
      PhaseTimer optimize_timer(record, obs::QueryPhase::kOptimize);
      RADB_ASSIGN_OR_RETURN(planned, optimizer.Plan(std::move(bound), obs));
    }
    PlanDeps pd = CollectTableDeps(*planned);
    deps = std::move(pd.deps);
    // Plans over radb_* system tables embed a point-in-time snapshot
    // Table and must be rebuilt every execution.
    result_cacheable = !pd.has_system_table;
    plan = std::shared_ptr<const LogicalOp>(std::move(planned));
    if (cache_key != nullptr && plan_cache_ != nullptr && result_cacheable) {
      auto entry = std::make_shared<CachedPlan>();
      entry->plan = plan;
      entry->out_columns = out_columns;
      entry->catalog_version = catalog_.version();
      entry->schema_version = catalog_.schema_version();
      entry->deps = deps;
      entry->result_cacheable = true;
      plan_cache_->Insert(*cache_key, std::move(entry));
    }
  }

  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  RADB_ASSIGN_OR_RETURN(
      ResultSet rs, ExecutePlanRows(*plan, out_columns, options, st, record));
  if (cache_key != nullptr && result_cacheable) {
    MaybeCacheResult(*cache_key, rs, deps, st->peak_memory_bytes);
  }
  return rs;
}

void Database::MaybeCacheResult(const std::string& cache_key,
                                const ResultSet& rs,
                                const std::vector<TableDep>& deps,
                                size_t fill_peak) {
  if (result_cache_ == nullptr) return;
  auto entry = std::make_shared<CachedResult>();
  entry->columns = rs.columns;
  entry->rows = rs.rows;
  entry->bytes = ResultBytes(rs.rows);
  entry->fill_peak_bytes = fill_peak;
  entry->schema_version = catalog_.schema_version();
  entry->deps = deps;
  result_cache_->Insert(cache_key, std::move(entry));
}

Result<ResultSet> Database::ExecutePlanRows(
    const LogicalOp& plan, const std::vector<SlotInfo>& out_columns,
    const QueryOptions& options, QueryStats* stats,
    obs::QueryRecord* record) {
  const obs::ObsContext obs = QueryObs(options);
  // Per-query memory governance: a fresh root tracker per SELECT, so
  // a ResourceExhausted query releases everything it charged and the
  // next query starts from a clean slate. Budget 0 = unlimited (the
  // tracker still records the peak, which the ablation benchmark
  // reads).
  const size_t budget = options.memory_budget_bytes != 0
                            ? options.memory_budget_bytes
                            : config_.memory_budget_bytes;
  const uint64_t query_id =
      options.query_id != 0
          ? options.query_id
          : next_query_id_.fetch_add(1, std::memory_order_relaxed);
  mem::MemoryTracker tracker("query", budget, options.memory_parent,
                             obs.metrics);
  MemoryContext mem{&tracker, config_.spill_dir, query_id,
                    options.cancellation.get()};
  std::unique_ptr<ThreadPool> tmp_pool;
  ThreadPool* pool = pool_.get();
  if (options.num_threads_override != 0 &&
      options.num_threads_override != pool_->num_threads()) {
    tmp_pool = std::make_unique<ThreadPool>(options.num_threads_override);
    pool = tmp_pool.get();
  }

  // Execution writes into a per-call QueryMetrics: concurrent
  // sessions must never share mid-flight metrics state. The finished
  // snapshot is copied to the legacy last_* accessors at the end.
  QueryMetrics qm;
  const auto t0 = std::chrono::steady_clock::now();
  Dist dist;
  {
    obs::ScopedSpan exec_span(obs.tracer, "execute", "pipeline");
    PhaseTimer exec_timer(record, obs::QueryPhase::kExecute);
    Executor executor(cluster_, &qm, obs, pool, mem,
                      ExecOptions{config_.enable_vectorized,
                                  config_.vectorized_batch_rows});
    auto result = executor.Execute(plan);
    const size_t spill = tracker.spill_bytes();
    const size_t peak = tracker.peak_bytes();
    if (stats != nullptr) {
      stats->spill_bytes = spill;
      stats->peak_memory_bytes = peak;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      last_spill_bytes_ = spill;
      last_peak_bytes_ = peak;
    }
    AppendOperatorRecords(qm, record);
    RADB_ASSIGN_OR_RETURN(dist, std::move(result));
  }
  qm.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_metrics_ = std::move(qm);
  }

  PhaseTimer serialize_timer(record, obs::QueryPhase::kSerialize);
  ResultSet rs;
  rs.columns = plan.output;
  // Trim hidden sort columns and restore binder-declared names.
  if (rs.columns.size() >= out_columns.size()) {
    rs.columns.resize(out_columns.size());
    for (size_t i = 0; i < rs.columns.size(); ++i) {
      rs.columns[i].name = out_columns[i].name;
    }
  }
  for (RowSet& partition : dist) {
    for (Row& row : partition) {
      if (row.size() > rs.columns.size()) row.resize(rs.columns.size());
      rs.rows.push_back(std::move(row));
    }
  }
  return rs;
}

Result<ResultSet> Database::RunExecutePrepared(const parser::Statement& stmt,
                                               const QueryOptions& options,
                                               QueryStats* stats,
                                               obs::QueryRecord* record) {
  const obs::ObsContext obs = QueryObs(options);
  const std::string name = ToLower(stmt.relation_name);
  std::shared_ptr<PreparedStatement> prep;
  {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    auto it = prepared_.find(name);
    if (it != prepared_.end()) prep = it->second;
  }
  if (prep == nullptr) {
    return Status::BindError("prepared statement " + name +
                             " does not exist");
  }
  if (stmt.execute_args.size() != prep->num_params) {
    return Status::BindError(
        "prepared statement " + name + " expects " +
        std::to_string(prep->num_params) + " argument(s), got " +
        std::to_string(stmt.execute_args.size()));
  }
  std::vector<Value> args;
  std::vector<DataType> arg_types;
  args.reserve(stmt.execute_args.size());
  for (const auto& e : stmt.execute_args) {
    RADB_ASSIGN_OR_RETURN(Value v, EvalConstExpr(catalog_, *e));
    arg_types.push_back(v.RuntimeType());
    args.push_back(std::move(v));
  }

  // Reuse the bound+optimized template while the catalog and the
  // argument types are unchanged; any catalog change or a type switch
  // (say, EXECUTE q(1) after EXECUTE q(1.5)) forces a rebind.
  std::shared_ptr<const CachedPlan> tmpl;
  {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    if (prep->plan != nullptr &&
        prep->plan->catalog_version == catalog_.version() &&
        prep->param_types == arg_types) {
      tmpl = prep->plan;
    }
  }
  if (tmpl != nullptr) {
    if (record != nullptr) record->cache_plan_hits++;
    if (obs.metrics != nullptr) obs.metrics->Add("cache.plan_hits", 1);
  } else {
    if (obs.metrics != nullptr) obs.metrics->Add("cache.plan_misses", 1);
    Binder binder(catalog_);
    binder.SetParamTypes(&arg_types);
    std::unique_ptr<BoundQuery> bound;
    {
      obs::ScopedSpan bind_span(obs.tracer, "bind", "pipeline");
      PhaseTimer bind_timer(record, obs::QueryPhase::kBind);
      RADB_ASSIGN_OR_RETURN(bound, binder.Bind(*prep->body));
    }
    auto entry = std::make_shared<CachedPlan>();
    entry->out_columns = bound->output;
    const size_t visible = bound->num_visible_outputs == 0
                               ? entry->out_columns.size()
                               : bound->num_visible_outputs;
    entry->out_columns.resize(
        std::min(visible, entry->out_columns.size()));
    Optimizer optimizer(config_.optimizer);
    LogicalOpPtr planned;
    {
      obs::ScopedSpan optimize_span(obs.tracer, "optimize", "pipeline");
      PhaseTimer optimize_timer(record, obs::QueryPhase::kOptimize);
      RADB_ASSIGN_OR_RETURN(planned, optimizer.Plan(std::move(bound), obs));
    }
    PlanDeps pd = CollectTableDeps(*planned);
    entry->plan = std::shared_ptr<const LogicalOp>(std::move(planned));
    entry->catalog_version = catalog_.version();
    entry->schema_version = catalog_.schema_version();
    entry->deps = std::move(pd.deps);
    // EXECUTE results are never cached: the name -> body mapping can
    // be replaced by PREPARE without any catalog change, so a textual
    // "execute q(...)" key could go stale invisibly.
    entry->result_cacheable = false;
    tmpl = entry;
    {
      std::lock_guard<std::mutex> lock(prepared_mu_);
      prep->plan = tmpl;
      prep->param_types = arg_types;
    }
  }

  // Substitute the arguments into a private clone; the template stays
  // parameter-abstract for the next EXECUTE. Re-annotate batch
  // capability: literals vectorize where an abstract parameter
  // could not.
  LogicalOpPtr plan = tmpl->plan->Clone();
  RADB_RETURN_NOT_OK(SubstituteParams(plan.get(), args));
  AnnotateBatchCapability(*plan);
  return ExecutePlanRows(*plan, tmpl->out_columns, options, stats, record);
}

std::optional<ScriptResult> Database::ExecuteCachedOnly(
    const std::string& sql, const QueryOptions& options) {
  if (result_cache_ == nullptr) return std::nullopt;
  auto normalized = parser::NormalizeScript(sql);
  if (!normalized.ok() || normalized->empty()) return std::nullopt;
  const size_t budget = options.memory_budget_bytes != 0
                            ? options.memory_budget_bytes
                            : config_.memory_budget_bytes;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<const CachedResult>> hits;
  hits.reserve(normalized->size());
  for (const std::string& key : *normalized) {
    auto hit = result_cache_->Lookup(key, catalog_, budget);
    if (hit == nullptr) return std::nullopt;
    hits.push_back(std::move(hit));
  }
  // Whole-script hit: serve without parsing. Only SELECT results are
  // ever inserted, so full resolution implies a read-only script.
  ScriptResult script;
  obs::QueryRecord record;
  record.query_id =
      options.query_id != 0
          ? options.query_id
          : next_query_id_.fetch_add(1, std::memory_order_relaxed);
  record.session_id = options.session_id;
  record.sql = sql;
  record.status = StatusCodeName(StatusCode::kOk);
  record.cache_result_hits = static_cast<int64_t>(hits.size());
  record.phases[obs::QueryPhase::kQueue] = options.queue_wait_micros;
  record.phases[obs::QueryPhase::kLatch] = options.latch_wait_micros;
  for (const auto& hit : hits) {
    ResultSet rs;
    rs.columns = hit->columns;
    rs.rows = hit->rows;
    QueryStats qs;
    qs.rows = rs.num_rows();
    record.rows += static_cast<int64_t>(rs.num_rows());
    script.result_sets.push_back(std::move(rs));
    script.statements.push_back(qs);
  }
  const uint64_t serve_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  record.phases[obs::QueryPhase::kSerialize] = serve_micros;
  record.total_micros =
      serve_micros + options.queue_wait_micros + options.latch_wait_micros;
  if (!script.statements.empty()) {
    script.statements.front().wall_seconds = serve_micros * 1e-6;
  }
  if (metrics_registry_ != nullptr && options.collect_metrics) {
    metrics_registry_->Add("cache.result_hits",
                           static_cast<int64_t>(hits.size()));
  }
  RecordQueryTelemetry(std::move(record));
  return script;
}

size_t Database::prepared_count() const {
  std::lock_guard<std::mutex> lock(prepared_mu_);
  return prepared_.size();
}

Result<ScriptResult> Database::Execute(const std::string& sql) {
  return Execute(sql, QueryOptions{});
}

Result<ScriptResult> Database::Execute(const std::string& sql,
                                       const QueryOptions& options) {
  // Deadline handling: the deadline covers this whole call (all
  // statements), so the token is armed once up front. A caller-
  // supplied token with an already-armed deadline (a service session
  // that started the clock at submission, before queue wait) is left
  // alone.
  QueryOptions opts = options;
  if (opts.deadline_ms != 0) {
    if (opts.cancellation == nullptr) {
      opts.cancellation = std::make_shared<CancellationToken>();
    }
    if (!opts.cancellation->has_deadline()) {
      opts.cancellation->ArmDeadlineMs(opts.deadline_ms);
    }
  }
  // One id per call: every statement of the script shares it, and the
  // telemetry record, spill files and pool task tags all agree.
  if (opts.query_id == 0) {
    opts.query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }
  obs::QueryRecord record;
  record.query_id = opts.query_id;
  record.session_id = opts.session_id;
  record.sql = sql;
  record.phases[obs::QueryPhase::kQueue] = opts.queue_wait_micros;
  record.phases[obs::QueryPhase::kLatch] = opts.latch_wait_micros;
  const auto call_t0 = std::chrono::steady_clock::now();
  Result<ScriptResult> result = ExecuteScript(sql, opts, &record);
  const uint64_t wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - call_t0)
          .count());
  // End-to-end time includes the blocked time the service attributed
  // to this call before Execute started.
  record.total_micros =
      wall_micros + opts.queue_wait_micros + opts.latch_wait_micros;
  record.status = StatusCodeName(
      result.ok() ? StatusCode::kOk : result.status().code());
  if (result.ok()) {
    for (const ResultSet& rs : result->result_sets) {
      record.rows += static_cast<int64_t>(rs.num_rows());
    }
    for (const QueryStats& s : result->statements) {
      record.spill_bytes += static_cast<int64_t>(s.spill_bytes);
      record.peak_memory_bytes =
          std::max(record.peak_memory_bytes,
                   static_cast<int64_t>(s.peak_memory_bytes));
    }
    // The legacy last_* accessors report exactly the ScriptResult
    // aggregation (spill summed over statements, peak maxed), so both
    // views of the same call always agree.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      last_spill_bytes_ = static_cast<size_t>(record.spill_bytes);
      last_peak_bytes_ = static_cast<size_t>(record.peak_memory_bytes);
    }
  }
  RecordQueryTelemetry(std::move(record));
  return result;
}

void Database::RecordQueryTelemetry(obs::QueryRecord record) {
  const uint64_t threshold = config_.telemetry.slow_query_micros;
  const bool slow = threshold != 0 && record.total_micros >= threshold;
  std::string line;
  if (slow) {
    line = obs::TelemetryExporter::QueryRecordJson(record);
  }
  telemetry_->RecordQuery(std::move(record));
  if (!slow) return;
  if (metrics_registry_ != nullptr) {
    metrics_registry_->Add("obs.slow_queries", 1);
  }
  if (config_.telemetry.slow_query_sink) {
    config_.telemetry.slow_query_sink(line);
    return;
  }
  if (!config_.telemetry.slow_query_log_path.empty()) {
    std::lock_guard<std::mutex> lock(slow_log_mu_);
    if (!slow_log_.is_open()) {
      slow_log_.open(config_.telemetry.slow_query_log_path, std::ios::app);
    }
    if (slow_log_.is_open()) {
      slow_log_ << line << "\n";
      slow_log_.flush();
      return;
    }
  }
  std::fprintf(stderr, "[radb slow_query] %s\n", line.c_str());
}

Result<ScriptResult> Database::ExecuteScript(const std::string& sql,
                                             const QueryOptions& options,
                                             obs::QueryRecord* record) {
  const QueryOptions& opts = options;
  if (tracer_ != nullptr && opts.trace) {
    tracer_->Clear();  // trace covers the last call
  }
  const obs::ObsContext obs = QueryObs(opts);
  obs::ScopedSpan query_span(obs.tracer, "query", "pipeline");
  query_span.AddArg("sql", sql);
  std::vector<parser::Statement> stmts;
  {
    obs::ScopedSpan parse_span(obs.tracer, "parse", "pipeline");
    PhaseTimer parse_timer(record, obs::QueryPhase::kParse);
    RADB_ASSIGN_OR_RETURN(stmts, parser::ParseScript(sql));
    parse_span.AddArg("statements", std::to_string(stmts.size()));
  }
  // Per-statement normalized texts = cache keys, aligned with stmts.
  // A normalization failure or count mismatch (both should be
  // impossible for a script that just parsed) disables caching for
  // this call rather than risking key/statement misalignment.
  std::vector<std::string> cache_keys;
  if (plan_cache_ != nullptr || result_cache_ != nullptr) {
    auto normalized = parser::NormalizeScript(sql);
    if (normalized.ok() && normalized->size() == stmts.size()) {
      cache_keys = std::move(*normalized);
    }
  }
  ScriptResult script;
  size_t stmt_index = static_cast<size_t>(-1);
  for (parser::Statement& stmt : stmts) {
    ++stmt_index;
    const std::string* cache_key =
        cache_keys.size() == stmts.size() ? &cache_keys[stmt_index] : nullptr;
    // Between statements is the cheapest cancellation point a script
    // has: a fired token (or expired deadline) stops the script
    // before the next statement starts.
    if (opts.cancellation != nullptr) {
      RADB_RETURN_NOT_OK(opts.cancellation->Check());
    }
    const auto stmt_t0 = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      last_spill_bytes_ = 0;
      last_peak_bytes_ = 0;
    }
    QueryStats stats;
    size_t stmt_rows = 0;
    switch (stmt.kind) {
      case parser::Statement::Kind::kSelect: {
        RADB_ASSIGN_OR_RETURN(
            ResultSet rs,
            RunSelect(*stmt.select, opts, &stats, record, cache_key));
        stmt_rows = rs.num_rows();
        script.result_sets.push_back(std::move(rs));
        break;
      }
      case parser::Statement::Kind::kExplain: {
        if (stmt.explain_analyze) {
          RADB_ASSIGN_OR_RETURN(
              ResultSet rs, ExplainAnalyzeSelect(*stmt.select, opts, &stats,
                                                 record, cache_key));
          stmt_rows = rs.num_rows();
          script.result_sets.push_back(std::move(rs));
          break;
        }
        Binder binder(catalog_);
        RADB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                              binder.Bind(*stmt.select));
        Optimizer optimizer(config_.optimizer);
        RADB_ASSIGN_OR_RETURN(LogicalOpPtr plan,
                              optimizer.Plan(std::move(bound)));
        ResultSet rs;
        rs.columns.push_back(SlotInfo{0, "plan", DataType::String()});
        std::istringstream lines(plan->ToString() + "estimated cost: " +
                                 std::to_string(plan->est_cost));
        std::string line;
        while (std::getline(lines, line)) {
          rs.rows.push_back({Value::String(line)});
        }
        stmt_rows = rs.num_rows();
        script.result_sets.push_back(std::move(rs));
        break;
      }
      case parser::Statement::Kind::kCreateTable: {
        Schema schema;
        for (const parser::ColumnDef& def : stmt.columns) {
          schema.Add(Column{"", def.name, def.type});
        }
        RADB_RETURN_NOT_OK(
            CreateTable(stmt.relation_name, std::move(schema)).status());
        break;
      }
      case parser::Statement::Kind::kCreateTableAs: {
        RADB_ASSIGN_OR_RETURN(ResultSet rs,
                              RunSelect(*stmt.select, opts, &stats, record));
        stmt_rows = rs.num_rows();
        Schema schema;
        for (const SlotInfo& s : rs.columns) {
          schema.Add(Column{"", s.name, s.type});
        }
        RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                              catalog_.CreateTable(stmt.relation_name,
                                                   std::move(schema)));
        if (store_ != nullptr) {
          RADB_RETURN_NOT_OK(store_->AttachNewTable(t));
          // Two WAL records: create, then the SELECT's materialized
          // output. A crash between them recovers an empty table —
          // the same prefix-of-records guarantee every multi-
          // statement script gets.
          RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
            RADB_RETURN_NOT_OK(s.LogCreateTable(t->name(), t->schema()));
            return s.LogInsert(t->name(), rs.rows);
          }));
        }
        RADB_RETURN_NOT_OK(t->InsertAll(std::move(rs.rows)));
        break;
      }
      case parser::Statement::Kind::kCreateView: {
        // Validate the view body eagerly so errors surface at CREATE
        // time, then store the SQL text.
        Binder binder(catalog_);
        RADB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                              binder.Bind(*stmt.select));
        if (!stmt.view_aliases.empty() &&
            stmt.view_aliases.size() != bound->output.size()) {
          return Status::BindError(
              "view " + stmt.relation_name + " declares " +
              std::to_string(stmt.view_aliases.size()) +
              " columns but SELECT produces " +
              std::to_string(bound->output.size()));
        }
        RADB_RETURN_NOT_OK(catalog_.CreateView(ViewEntry{
            stmt.relation_name, stmt.view_aliases, stmt.view_sql}));
        RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
          return s.LogCreateView(ViewEntry{stmt.relation_name,
                                           stmt.view_aliases,
                                           stmt.view_sql});
        }));
        break;
      }
      case parser::Statement::Kind::kInsert: {
        // Without this guard an INSERT would silently write into a
        // discarded snapshot table.
        if (Catalog::IsSystemName(stmt.relation_name)) {
          return Status::CatalogError("system table " +
                                      ToLower(stmt.relation_name) +
                                      " is read-only");
        }
        RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                              catalog_.GetTable(stmt.relation_name));
        std::vector<Row> rows;
        rows.reserve(stmt.insert_rows.size());
        for (const auto& row_exprs : stmt.insert_rows) {
          Row row;
          for (const auto& e : row_exprs) {
            RADB_ASSIGN_OR_RETURN(Value v, EvalConstExpr(catalog_, *e));
            row.push_back(std::move(v));
          }
          rows.push_back(std::move(row));
        }
        // WAL first (one record for the whole statement), while the
        // rows are still materialized; then apply in memory.
        RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
          return s.LogInsert(t->name(), rows);
        }));
        RADB_RETURN_NOT_OK(t->InsertAll(std::move(rows)));
        // Retire cached plans (their cardinality estimates are stale);
        // result entries invalidate via the table's own version.
        catalog_.BumpDataVersion();
        break;
      }
      case parser::Statement::Kind::kDropTable:
        RADB_RETURN_NOT_OK(catalog_.DropTable(stmt.relation_name));
        if (store_ != nullptr) {
          // WAL before unlink: a crash in between replays the drop
          // and detaches then; the reverse order would delete a page
          // file the snapshot still references.
          RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
            return s.LogDropTable(ToLower(stmt.relation_name));
          }));
          RADB_RETURN_NOT_OK(
              store_->DetachTable(ToLower(stmt.relation_name)));
        }
        break;
      case parser::Statement::Kind::kDropView:
        RADB_RETURN_NOT_OK(catalog_.DropView(stmt.relation_name));
        RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
          return s.LogDropView(stmt.relation_name);
        }));
        break;
      case parser::Statement::Kind::kCreateIndex: {
        RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                              catalog_.GetTable(stmt.index_table));
        std::vector<size_t> columns;
        columns.reserve(stmt.index_columns.size());
        for (const std::string& col : stmt.index_columns) {
          RADB_ASSIGN_OR_RETURN(size_t idx, t->schema().Resolve("", col));
          columns.push_back(idx);
        }
        RADB_RETURN_NOT_OK(
            catalog_.CreateIndex(stmt.index_table, stmt.relation_name,
                                 columns));
        RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
          return s.LogCreateIndex(t->name(), ToLower(stmt.relation_name),
                                  columns);
        }));
        break;
      }
      case parser::Statement::Kind::kDropIndex:
        RADB_RETURN_NOT_OK(catalog_.DropIndex(stmt.relation_name));
        RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
          return s.LogDropIndex(ToLower(stmt.relation_name));
        }));
        break;
      case parser::Statement::Kind::kPrepare: {
        // Binding is deferred to the first EXECUTE, whose argument
        // values supply the parameter types.
        auto prep = std::make_shared<PreparedStatement>();
        prep->body = std::move(stmt.select);
        prep->num_params = stmt.num_params;
        std::lock_guard<std::mutex> lock(prepared_mu_);
        prepared_[ToLower(stmt.relation_name)] = std::move(prep);
        break;
      }
      case parser::Statement::Kind::kExecutePrepared: {
        RADB_ASSIGN_OR_RETURN(
            ResultSet rs, RunExecutePrepared(stmt, opts, &stats, record));
        stmt_rows = rs.num_rows();
        script.result_sets.push_back(std::move(rs));
        break;
      }
      case parser::Statement::Kind::kDeallocate: {
        std::lock_guard<std::mutex> lock(prepared_mu_);
        const std::string name = ToLower(stmt.relation_name);
        if (prepared_.erase(name) == 0) {
          return Status::BindError("prepared statement " + name +
                                   " does not exist");
        }
        break;
      }
    }
    stats.rows = stmt_rows;
    stats.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - stmt_t0)
                             .count();
    script.statements.push_back(stats);
  }
  query_span.End();
  RADB_RETURN_NOT_OK(WriteObsFiles());
  return script;
}

namespace {

/// Appends `op`'s label plus an actual-metrics annotation line, then
/// recurses into children. An Aggregate plan node runs as two physical
/// operators (partial + final); their metrics fold into one line:
/// actuals come from the final stage, shuffle/time are summed, skew is
/// the worst of the two.
void RenderAnalyzed(const LogicalOp& op, const Executor& executor,
                    const QueryMetrics& qm, int indent,
                    std::ostringstream& os) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << op.NodeLabel() << "\n";
  const std::vector<size_t>* ids = executor.MetricsForNode(&op);
  if (ids != nullptr && !ids->empty()) {
    const OperatorMetrics& final_stage = qm.operators[ids->back()];
    size_t rows_shuffled = 0, bytes_shuffled = 0;
    size_t bytes_spilled = 0, spill_runs = 0;
    double max_worker = 0.0, skew = 0.0;
    for (size_t id : *ids) {
      const OperatorMetrics& m = qm.operators[id];
      rows_shuffled += m.rows_shuffled;
      bytes_shuffled += m.bytes_shuffled;
      bytes_spilled += m.bytes_spilled;
      spill_runs += m.spill_runs;
      max_worker += m.MaxWorkerSeconds();
      skew = std::max(skew, m.Skew());
    }
    os << pad << "  (est rows=" << op.est_rows
       << ", actual rows=" << final_stage.rows_out
       << ", bytes out=" << FormatBytes(double(final_stage.bytes_out))
       << ", shuffled=" << FormatBytes(double(bytes_shuffled)) << "/"
       << rows_shuffled << " rows";
    if (bytes_spilled > 0) {
      os << ", spilled=" << FormatBytes(double(bytes_spilled)) << "/"
         << spill_runs << " runs";
    }
    os << ", max-worker=" << max_worker << " s"
       << ", skew=" << skew;
    if (final_stage.vectorized) {
      size_t batches = 0;
      for (size_t id : *ids) batches += qm.operators[id].batches;
      os << ", exec=batch, batches=" << batches;
    }
    os << ")\n";
  }
  for (const auto& c : op.children) {
    RenderAnalyzed(*c, executor, qm, indent + 1, os);
  }
}

}  // namespace

Result<ResultSet> Database::ExplainAnalyzeSelect(
    const parser::SelectStmt& stmt, const QueryOptions& options,
    QueryStats* stats, obs::QueryRecord* record,
    const std::string* cache_key) {
  const obs::ObsContext obs = QueryObs(options);
  // Plan-cache consult under the EXPLAIN's own normalized text (a
  // different key space from the bare SELECT; both resolve to the
  // same plan shape). Results of EXPLAIN ANALYZE are never cached —
  // the point is fresh execution metrics.
  std::shared_ptr<const CachedPlan> cached;
  if (cache_key != nullptr && plan_cache_ != nullptr) {
    cached = plan_cache_->Lookup(*cache_key, catalog_.version());
    if (obs.metrics != nullptr) {
      obs.metrics->Add(cached != nullptr ? "cache.plan_hits"
                                         : "cache.plan_misses",
                       1);
    }
  }
  std::shared_ptr<const LogicalOp> splan;
  if (cached != nullptr) {
    if (record != nullptr) record->cache_plan_hits++;
    splan = cached->plan;
  } else {
    Binder binder(catalog_);
    std::unique_ptr<BoundQuery> bound;
    {
      obs::ScopedSpan bind_span(obs.tracer, "bind", "pipeline");
      PhaseTimer bind_timer(record, obs::QueryPhase::kBind);
      RADB_ASSIGN_OR_RETURN(bound, binder.Bind(stmt));
    }
    Optimizer optimizer(config_.optimizer);
    LogicalOpPtr planned;
    {
      obs::ScopedSpan optimize_span(obs.tracer, "optimize", "pipeline");
      PhaseTimer optimize_timer(record, obs::QueryPhase::kOptimize);
      RADB_ASSIGN_OR_RETURN(planned, optimizer.Plan(std::move(bound), obs));
    }
    PlanDeps pd = CollectTableDeps(*planned);
    splan = std::shared_ptr<const LogicalOp>(std::move(planned));
    if (cache_key != nullptr && plan_cache_ != nullptr &&
        !pd.has_system_table) {
      auto entry = std::make_shared<CachedPlan>();
      entry->plan = splan;
      entry->catalog_version = catalog_.version();
      entry->schema_version = catalog_.schema_version();
      entry->deps = std::move(pd.deps);
      entry->result_cacheable = false;
      plan_cache_->Insert(*cache_key, std::move(entry));
    }
  }
  const LogicalOp* plan = splan.get();

  const size_t budget = options.memory_budget_bytes != 0
                            ? options.memory_budget_bytes
                            : config_.memory_budget_bytes;
  const uint64_t query_id =
      options.query_id != 0
          ? options.query_id
          : next_query_id_.fetch_add(1, std::memory_order_relaxed);
  mem::MemoryTracker tracker("query", budget, options.memory_parent,
                             obs.metrics);
  MemoryContext mem{&tracker, config_.spill_dir, query_id,
                    options.cancellation.get()};
  std::unique_ptr<ThreadPool> tmp_pool;
  ThreadPool* pool = pool_.get();
  if (options.num_threads_override != 0 &&
      options.num_threads_override != pool_->num_threads()) {
    tmp_pool = std::make_unique<ThreadPool>(options.num_threads_override);
    pool = tmp_pool.get();
  }

  QueryMetrics qm;
  // Snapshot the sparse-dispatch counters so the footer can report
  // this query's deltas (the registry is cumulative per Database).
  obs::MetricsRegistry* sparse_reg = obs::GlobalMetrics();
  uint64_t sparse0 = 0, auto0 = 0, densify0 = 0;
  if (sparse_reg != nullptr) {
    sparse0 = sparse_reg->counter("la.sparse.dispatch_sparse")->value();
    auto0 = sparse_reg->counter("la.sparse.auto_sparsify")->value();
    densify0 = sparse_reg->counter("la.sparse.densify_fallback")->value();
  }
  const auto t0 = std::chrono::steady_clock::now();
  // The executor outlives Execute so its plan-node -> metrics map is
  // available for rendering.
  Executor executor(cluster_, &qm, obs, pool, mem,
                    ExecOptions{config_.enable_vectorized,
                                config_.vectorized_batch_rows});
  size_t spill = 0, peak = 0;
  {
    obs::ScopedSpan exec_span(obs.tracer, "execute", "pipeline");
    PhaseTimer exec_timer(record, obs::QueryPhase::kExecute);
    auto result = executor.Execute(*plan);
    spill = tracker.spill_bytes();
    peak = tracker.peak_bytes();
    if (stats != nullptr) {
      stats->spill_bytes = spill;
      stats->peak_memory_bytes = peak;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      last_spill_bytes_ = spill;
      last_peak_bytes_ = peak;
    }
    AppendOperatorRecords(qm, record);
    RADB_ASSIGN_OR_RETURN(Dist dist, std::move(result));
    (void)dist;
  }
  qm.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::ostringstream os;
  RenderAnalyzed(*plan, executor, qm, 0, os);
  os << "wall time: " << qm.wall_seconds << " s"
     << "; simulated parallel time: " << qm.SimulatedParallelSeconds() << " s"
     << "; total shuffled: " << FormatBytes(double(qm.TotalBytesShuffled()));
  if (spill > 0) {
    os << "; total spilled: " << FormatBytes(double(spill))
       << " (peak memory " << FormatBytes(double(peak)) << ")";
  }
  if (cache_key != nullptr && plan_cache_ != nullptr) {
    os << "; cache=" << (cached != nullptr ? "plan-hit" : "miss");
  }
  if (sparse_reg != nullptr) {
    const uint64_t sparse_calls =
        sparse_reg->counter("la.sparse.dispatch_sparse")->value() - sparse0;
    const uint64_t auto_calls =
        sparse_reg->counter("la.sparse.auto_sparsify")->value() - auto0;
    const uint64_t densify_calls =
        sparse_reg->counter("la.sparse.densify_fallback")->value() - densify0;
    if (sparse_calls + auto_calls + densify_calls > 0) {
      os << "; sparse dispatch: sparse=" << sparse_calls
         << " auto=" << auto_calls << " densified=" << densify_calls;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_metrics_ = std::move(qm);
  }
  ResultSet rs;
  rs.columns.push_back(SlotInfo{0, "plan", DataType::String()});
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    rs.rows.push_back({Value::String(line)});
  }
  return rs;
}

Status Database::WriteObsFiles() const {
  if (tracer_ != nullptr && !config_.obs.trace_path.empty()) {
    std::ofstream os(config_.obs.trace_path, std::ios::trunc);
    if (!os) {
      return Status::InvalidArgument("cannot open trace path " +
                                     config_.obs.trace_path);
    }
    os << tracer_->ToChromeJson();
  }
  if (metrics_registry_ != nullptr && !config_.obs.metrics_path.empty()) {
    std::ofstream os(config_.obs.metrics_path, std::ios::trunc);
    if (!os) {
      return Status::InvalidArgument("cannot open metrics path " +
                                     config_.obs.metrics_path);
    }
    os << metrics_registry_->ToJson() << "\n";
  }
  return Status::OK();
}

Status Database::RepartitionTable(const std::string& table,
                                  const std::string& column) {
  if (Catalog::IsSystemName(table)) {
    return Status::CatalogError("system table " + ToLower(table) +
                                " is read-only");
  }
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog_.GetTable(table));
  RADB_ASSIGN_OR_RETURN(size_t idx, t->schema().Resolve("", column));
  RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
    return s.LogRepartition(t->name(), idx);
  }));
  RADB_RETURN_NOT_OK(t->RepartitionByHash(idx));
  catalog_.BumpDataVersion();
  return Status::OK();
}

Status Database::SaveTable(const std::string& table,
                           const std::string& path) {
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog_.GetTable(table));
  return WriteTableFile(*t, path);
}

Status Database::LoadTable(const std::string& table,
                           const std::string& path) {
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> loaded,
                        ReadTableFile(path, config_.num_workers));
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> created,
                        catalog_.CreateTable(table, loaded->schema()));
  if (store_ != nullptr) {
    RADB_RETURN_NOT_OK(store_->AttachNewTable(created));
    RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
      return s.LogCreateTable(created->name(), created->schema());
    }));
  }
  RADB_ASSIGN_OR_RETURN(RowSet rows, loaded->Gather());
  RADB_RETURN_NOT_OK(LogMutation([&](storage::TableStore& s) {
    return s.LogInsert(created->name(), rows);
  }));
  RADB_RETURN_NOT_OK(created->InsertAll(std::move(rows)));
  catalog_.BumpDataVersion();
  return Status::OK();
}

Result<std::string> Database::Explain(const std::string& select_sql) {
  RADB_ASSIGN_OR_RETURN(LogicalOpPtr plan, PlanQuery(select_sql));
  std::ostringstream os;
  os << plan->ToString();
  os << "estimated cost: " << plan->est_cost << "\n";
  return os.str();
}

Result<LogicalOpPtr> Database::PlanQuery(const std::string& select_sql) {
  RADB_ASSIGN_OR_RETURN(auto select, parser::ParseSelect(select_sql));
  Binder binder(catalog_);
  RADB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                        binder.Bind(*select));
  Optimizer optimizer(config_.optimizer);
  return optimizer.Plan(std::move(bound));
}

}  // namespace radb
