#include "api/database.h"

#include <chrono>
#include <sstream>

#include "binder/binder.h"
#include "exec/executor.h"
#include "exec/expr_eval.h"
#include "parser/parser.h"
#include "storage/serialize.h"

namespace radb {

Result<double> ResultSet::ScalarDouble() const {
  if (rows.empty() || rows[0].empty()) {
    return Status::ExecutionError("empty result set");
  }
  return rows[0][0].AsDouble();
}

Result<la::Matrix> ResultSet::ScalarMatrix() const {
  if (rows.empty() || rows[0].empty()) {
    return Status::ExecutionError("empty result set");
  }
  if (rows[0][0].kind() != TypeKind::kMatrix) {
    return Status::TypeError("result is not a MATRIX");
  }
  return rows[0][0].matrix();
}

Result<la::Vector> ResultSet::ScalarVector() const {
  if (rows.empty() || rows[0].empty()) {
    return Status::ExecutionError("empty result set");
  }
  if (rows[0][0].kind() != TypeKind::kVector) {
    return Status::TypeError("result is not a VECTOR");
  }
  return rows[0][0].vector();
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os << " | ";
    os << columns[i].name;
  }
  os << "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) os << " | ";
      os << rows[r][c].ToString();
    }
    os << "\n";
  }
  if (rows.size() > max_rows) {
    os << "... (" << rows.size() << " rows)\n";
  }
  return os.str();
}

namespace {

/// Evaluates an INSERT ... VALUES expression: constants, arithmetic,
/// and built-in function calls only (no column references).
Result<Value> EvalConstExpr(const Catalog& catalog,
                            const parser::Expr& pe) {
  using PK = parser::Expr::Kind;
  switch (pe.kind) {
    case PK::kIntLiteral:
      return Value::Int(pe.int_value);
    case PK::kDoubleLiteral:
      return Value::Double(pe.double_value);
    case PK::kStringLiteral:
      return Value::String(pe.string_value);
    case PK::kBoolLiteral:
      return Value::Bool(pe.bool_value);
    case PK::kNullLiteral:
      return Value::Null();
    case PK::kUnaryOp: {
      RADB_ASSIGN_OR_RETURN(Value v, EvalConstExpr(catalog, *pe.children[0]));
      if (pe.op == parser::OpKind::kNeg) return EvalNegate(v);
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.bool_value());
    }
    case PK::kBinaryOp: {
      RADB_ASSIGN_OR_RETURN(Value l, EvalConstExpr(catalog, *pe.children[0]));
      RADB_ASSIGN_OR_RETURN(Value r, EvalConstExpr(catalog, *pe.children[1]));
      switch (pe.op) {
        case parser::OpKind::kAdd:
          return EvalArith(ArithOp::kAdd, l, r);
        case parser::OpKind::kSub:
          return EvalArith(ArithOp::kSub, l, r);
        case parser::OpKind::kMul:
          return EvalArith(ArithOp::kMul, l, r);
        case parser::OpKind::kDiv:
          return EvalArith(ArithOp::kDiv, l, r);
        default:
          return Status::BindError("unsupported operator in INSERT VALUES");
      }
    }
    case PK::kFunctionCall: {
      RADB_ASSIGN_OR_RETURN(const BuiltinFunction* fn,
                            catalog.functions().Lookup(pe.name));
      std::vector<Value> args;
      for (const auto& c : pe.children) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalConstExpr(catalog, *c));
        args.push_back(std::move(v));
      }
      return fn->eval(args);
    }
    default:
      return Status::BindError("INSERT VALUES allows constants only");
  }
}

}  // namespace

Database::Database(const Config& config)
    : config_(config), cluster_(config.num_workers) {
  catalog_ = Catalog(config.num_workers);
}

Status Database::BulkInsert(const std::string& table, std::vector<Row> rows) {
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog_.GetTable(table));
  return t->InsertAll(std::move(rows));
}

Result<ResultSet> Database::RunSelect(const parser::SelectStmt& stmt) {
  Binder binder(catalog_);
  RADB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                        binder.Bind(stmt));
  std::vector<SlotInfo> out_columns = bound->output;
  const size_t visible = bound->num_visible_outputs == 0
                             ? out_columns.size()
                             : bound->num_visible_outputs;
  out_columns.resize(std::min(visible, out_columns.size()));
  Optimizer optimizer(config_.optimizer);
  RADB_ASSIGN_OR_RETURN(LogicalOpPtr plan,
                        optimizer.Plan(std::move(bound)));

  last_metrics_ = QueryMetrics{};
  const auto t0 = std::chrono::steady_clock::now();
  Executor executor(cluster_, &last_metrics_);
  RADB_ASSIGN_OR_RETURN(Dist dist, executor.Execute(*plan));
  last_metrics_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ResultSet rs;
  rs.columns = plan->output;
  // Trim hidden sort columns and restore binder-declared names.
  if (rs.columns.size() >= out_columns.size()) {
    rs.columns.resize(out_columns.size());
    for (size_t i = 0; i < rs.columns.size(); ++i) {
      rs.columns[i].name = out_columns[i].name;
    }
  }
  for (RowSet& partition : dist) {
    for (Row& row : partition) {
      if (row.size() > rs.columns.size()) row.resize(rs.columns.size());
      rs.rows.push_back(std::move(row));
    }
  }
  return rs;
}

Result<ResultSet> Database::ExecuteSql(const std::string& sql) {
  RADB_ASSIGN_OR_RETURN(std::vector<parser::Statement> stmts,
                        parser::ParseScript(sql));
  ResultSet last;
  for (parser::Statement& stmt : stmts) {
    switch (stmt.kind) {
      case parser::Statement::Kind::kSelect: {
        RADB_ASSIGN_OR_RETURN(last, RunSelect(*stmt.select));
        break;
      }
      case parser::Statement::Kind::kExplain: {
        Binder binder(catalog_);
        RADB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                              binder.Bind(*stmt.select));
        Optimizer optimizer(config_.optimizer);
        RADB_ASSIGN_OR_RETURN(LogicalOpPtr plan,
                              optimizer.Plan(std::move(bound)));
        ResultSet rs;
        rs.columns.push_back(SlotInfo{0, "plan", DataType::String()});
        std::istringstream lines(plan->ToString() + "estimated cost: " +
                                 std::to_string(plan->est_cost));
        std::string line;
        while (std::getline(lines, line)) {
          rs.rows.push_back({Value::String(line)});
        }
        last = std::move(rs);
        break;
      }
      case parser::Statement::Kind::kCreateTable: {
        Schema schema;
        for (const parser::ColumnDef& def : stmt.columns) {
          schema.Add(Column{"", def.name, def.type});
        }
        RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                              catalog_.CreateTable(stmt.relation_name,
                                                   std::move(schema)));
        (void)t;
        break;
      }
      case parser::Statement::Kind::kCreateTableAs: {
        RADB_ASSIGN_OR_RETURN(ResultSet rs, RunSelect(*stmt.select));
        Schema schema;
        for (const SlotInfo& s : rs.columns) {
          schema.Add(Column{"", s.name, s.type});
        }
        RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                              catalog_.CreateTable(stmt.relation_name,
                                                   std::move(schema)));
        RADB_RETURN_NOT_OK(t->InsertAll(std::move(rs.rows)));
        break;
      }
      case parser::Statement::Kind::kCreateView: {
        // Validate the view body eagerly so errors surface at CREATE
        // time, then store the SQL text.
        Binder binder(catalog_);
        RADB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                              binder.Bind(*stmt.select));
        if (!stmt.view_aliases.empty() &&
            stmt.view_aliases.size() != bound->output.size()) {
          return Status::BindError(
              "view " + stmt.relation_name + " declares " +
              std::to_string(stmt.view_aliases.size()) +
              " columns but SELECT produces " +
              std::to_string(bound->output.size()));
        }
        RADB_RETURN_NOT_OK(catalog_.CreateView(ViewEntry{
            stmt.relation_name, stmt.view_aliases, stmt.view_sql}));
        break;
      }
      case parser::Statement::Kind::kInsert: {
        RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                              catalog_.GetTable(stmt.relation_name));
        for (const auto& row_exprs : stmt.insert_rows) {
          Row row;
          for (const auto& e : row_exprs) {
            RADB_ASSIGN_OR_RETURN(Value v, EvalConstExpr(catalog_, *e));
            row.push_back(std::move(v));
          }
          RADB_RETURN_NOT_OK(t->Insert(std::move(row)));
        }
        break;
      }
      case parser::Statement::Kind::kDropTable:
        RADB_RETURN_NOT_OK(catalog_.DropTable(stmt.relation_name));
        break;
      case parser::Statement::Kind::kDropView:
        RADB_RETURN_NOT_OK(catalog_.DropView(stmt.relation_name));
        break;
    }
  }
  return last;
}

Status Database::RepartitionTable(const std::string& table,
                                  const std::string& column) {
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog_.GetTable(table));
  RADB_ASSIGN_OR_RETURN(size_t idx, t->schema().Resolve("", column));
  return t->RepartitionByHash(idx);
}

Status Database::SaveTable(const std::string& table,
                           const std::string& path) {
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog_.GetTable(table));
  return WriteTableFile(*t, path);
}

Status Database::LoadTable(const std::string& table,
                           const std::string& path) {
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> loaded,
                        ReadTableFile(path, config_.num_workers));
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> created,
                        catalog_.CreateTable(table, loaded->schema()));
  for (size_t p = 0; p < loaded->num_partitions(); ++p) {
    for (const Row& row : loaded->partition(p)) {
      RADB_RETURN_NOT_OK(created->Insert(row));
    }
  }
  return Status::OK();
}

Result<std::string> Database::Explain(const std::string& select_sql) {
  RADB_ASSIGN_OR_RETURN(LogicalOpPtr plan, PlanQuery(select_sql));
  std::ostringstream os;
  os << plan->ToString();
  os << "estimated cost: " << plan->est_cost << "\n";
  return os.str();
}

Result<LogicalOpPtr> Database::PlanQuery(const std::string& select_sql) {
  RADB_ASSIGN_OR_RETURN(auto select, parser::ParseSelect(select_sql));
  Binder binder(catalog_);
  RADB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                        binder.Bind(*select));
  Optimizer optimizer(config_.optimizer);
  return optimizer.Plan(std::move(bound));
}

}  // namespace radb
