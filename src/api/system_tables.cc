#include "api/system_tables.h"

#include <algorithm>
#include <initializer_list>
#include <iterator>
#include <utility>

#include "common/string_util.h"
#include "obs/telemetry.h"

namespace radb {

namespace {

constexpr const char* kSystemTableNames[] = {
    "radb_metrics",   "radb_queries",  "radb_query_phases", "radb_operators",
    "radb_sessions",  "radb_threads",  "radb_tables",       "radb_cache",
    "radb_bufferpool", "radb_indexes",
};

Schema MakeSchema(std::initializer_list<std::pair<const char*, DataType>> cols) {
  Schema schema;
  for (const auto& [name, type] : cols) {
    schema.Add(Column{"", name, type});
  }
  return schema;
}

/// Snapshot tables are small and read-once: one partition keeps the
/// scan single-region and Gather()-friendly.
std::shared_ptr<Table> MakeSnapshotTable(const std::string& name,
                                         Schema schema) {
  return std::make_shared<Table>(name, std::move(schema), 1);
}

}  // namespace

std::vector<std::string> SystemTableCatalog::TableNames() const {
  return std::vector<std::string>(std::begin(kSystemTableNames),
                                  std::end(kSystemTableNames));
}

bool SystemTableCatalog::Has(const std::string& lower_name) const {
  for (const char* name : kSystemTableNames) {
    if (lower_name == name) return true;
  }
  return false;
}

Result<std::shared_ptr<Table>> SystemTableCatalog::Snapshot(
    const std::string& lower_name) const {
  if (lower_name == "radb_metrics") return MetricsTable();
  if (lower_name == "radb_queries") return QueriesTable();
  if (lower_name == "radb_query_phases") return QueryPhasesTable();
  if (lower_name == "radb_operators") return OperatorsTable();
  if (lower_name == "radb_sessions") return SessionsTable();
  if (lower_name == "radb_threads") return ThreadsTable();
  if (lower_name == "radb_tables") return TablesTable();
  if (lower_name == "radb_cache") return CacheTable();
  if (lower_name == "radb_bufferpool") return BufferPoolTable();
  if (lower_name == "radb_indexes") return IndexesTable();
  return Status::CatalogError("unknown system table: " + lower_name);
}

std::shared_ptr<Table> SystemTableCatalog::MetricsTable() const {
  auto table = MakeSnapshotTable(
      "radb_metrics",
      MakeSchema({{"name", DataType::String()},
                  {"kind", DataType::String()},
                  {"value", DataType::Double()},
                  {"count", DataType::Integer()},
                  {"sum", DataType::Double()},
                  {"min", DataType::Double()},
                  {"max", DataType::Double()},
                  {"p50", DataType::Double()},
                  {"p95", DataType::Double()},
                  {"p99", DataType::Double()}}));
  const obs::MetricsRegistry* registry = db_->metrics_registry();
  if (registry == nullptr) return table;
  for (const obs::MetricSample& s : registry->Snapshot()) {
    (void)table->Insert({Value::String(s.name),
                         Value::String(obs::MetricKindName(s.kind)),
                         Value::Double(s.value),
                         Value::Int(static_cast<int64_t>(s.count)),
                         Value::Double(s.sum), Value::Double(s.min),
                         Value::Double(s.max), Value::Double(s.p50),
                         Value::Double(s.p95), Value::Double(s.p99)});
  }
  return table;
}

std::shared_ptr<Table> SystemTableCatalog::QueriesTable() const {
  auto table = MakeSnapshotTable(
      "radb_queries",
      MakeSchema({{"query_id", DataType::Integer()},
                  {"session_id", DataType::Integer()},
                  {"sql", DataType::String()},
                  {"status", DataType::String()},
                  {"rows", DataType::Integer()},
                  {"peak_memory_bytes", DataType::Integer()},
                  {"spill_bytes", DataType::Integer()},
                  {"queue_micros", DataType::Integer()},
                  {"latch_micros", DataType::Integer()},
                  {"parse_micros", DataType::Integer()},
                  {"bind_micros", DataType::Integer()},
                  {"optimize_micros", DataType::Integer()},
                  {"execute_micros", DataType::Integer()},
                  {"serialize_micros", DataType::Integer()},
                  {"total_micros", DataType::Integer()},
                  {"cache", DataType::String()}}));
  for (const obs::QueryRecord& q : db_->telemetry_store()->SnapshotQueries()) {
    Row row{Value::Int(static_cast<int64_t>(q.query_id)),
            Value::Int(static_cast<int64_t>(q.session_id)),
            Value::String(q.sql), Value::String(q.status), Value::Int(q.rows),
            Value::Int(q.peak_memory_bytes), Value::Int(q.spill_bytes)};
    for (size_t i = 0; i < obs::kNumQueryPhases; ++i) {
      row.push_back(Value::Int(static_cast<int64_t>(q.phases.micros[i])));
    }
    row.push_back(Value::Int(static_cast<int64_t>(q.total_micros)));
    const char* cache = "miss";
    if (q.cache_result_hits > 0) {
      cache = "result-hit";
    } else if (q.cache_plan_hits > 0) {
      cache = "plan-hit";
    }
    row.push_back(Value::String(cache));
    (void)table->Insert(std::move(row));
  }
  return table;
}

std::shared_ptr<Table> SystemTableCatalog::QueryPhasesTable() const {
  auto table = MakeSnapshotTable(
      "radb_query_phases", MakeSchema({{"query_id", DataType::Integer()},
                                       {"session_id", DataType::Integer()},
                                       {"phase", DataType::String()},
                                       {"micros", DataType::Integer()}}));
  for (const obs::QueryRecord& q : db_->telemetry_store()->SnapshotQueries()) {
    for (size_t i = 0; i < obs::kNumQueryPhases; ++i) {
      (void)table->Insert(
          {Value::Int(static_cast<int64_t>(q.query_id)),
           Value::Int(static_cast<int64_t>(q.session_id)),
           Value::String(obs::QueryPhaseName(static_cast<obs::QueryPhase>(i))),
           Value::Int(static_cast<int64_t>(q.phases.micros[i]))});
    }
  }
  return table;
}

std::shared_ptr<Table> SystemTableCatalog::OperatorsTable() const {
  auto table = MakeSnapshotTable(
      "radb_operators",
      MakeSchema({{"query_id", DataType::Integer()},
                  {"op", DataType::Integer()},
                  {"name", DataType::String()},
                  {"est_rows", DataType::Double()},
                  {"actual_rows", DataType::Integer()},
                  {"rows_in", DataType::Integer()},
                  {"worker_seconds", DataType::Double()},
                  {"max_worker_seconds", DataType::Double()},
                  {"skew", DataType::Double()},
                  {"rows_shuffled", DataType::Integer()},
                  {"bytes_shuffled", DataType::Integer()},
                  {"bytes_spilled", DataType::Integer()},
                  {"spill_runs", DataType::Integer()},
                  {"est_error", DataType::Double()},
                  {"exec_mode", DataType::String()},
                  {"batches", DataType::Integer()}}));
  for (const obs::QueryRecord& q : db_->telemetry_store()->SnapshotQueries()) {
    for (const obs::OperatorRecord& op : q.operators) {
      // Relative misestimate with both sides clamped to >= 1 row
      // (mirrors OperatorMetrics::EstimationError); 0 = no estimate.
      double est_error = 0.0;
      if (op.estimated_rows > 0.0) {
        const double est = std::max(1.0, op.estimated_rows);
        const double actual =
            std::max(1.0, static_cast<double>(op.actual_rows));
        est_error = std::max(est / actual, actual / est);
      }
      (void)table->Insert({Value::Int(static_cast<int64_t>(q.query_id)),
                           Value::Int(op.op_index), Value::String(op.name),
                           Value::Double(op.estimated_rows),
                           Value::Int(op.actual_rows), Value::Int(op.rows_in),
                           Value::Double(op.worker_seconds),
                           Value::Double(op.max_worker_seconds),
                           Value::Double(op.skew), Value::Int(op.rows_shuffled),
                           Value::Int(op.bytes_shuffled),
                           Value::Int(op.bytes_spilled),
                           Value::Int(op.spill_runs),
                           Value::Double(est_error),
                           Value::String(op.exec_mode),
                           Value::Int(op.batches)});
    }
  }
  return table;
}

std::shared_ptr<Table> SystemTableCatalog::SessionsTable() const {
  auto table = MakeSnapshotTable(
      "radb_sessions", MakeSchema({{"session_id", DataType::Integer()},
                                   {"state", DataType::String()},
                                   {"queries", DataType::Integer()},
                                   {"current_query_id", DataType::Integer()},
                                   {"current_sql", DataType::String()}}));
  for (const obs::SessionRecord& s :
       db_->telemetry_store()->SnapshotSessions()) {
    (void)table->Insert({Value::Int(static_cast<int64_t>(s.session_id)),
                         Value::String(s.state),
                         Value::Int(static_cast<int64_t>(s.queries)),
                         Value::Int(static_cast<int64_t>(s.current_query_id)),
                         Value::String(s.current_sql)});
  }
  return table;
}

std::shared_ptr<Table> SystemTableCatalog::ThreadsTable() const {
  auto table = MakeSnapshotTable(
      "radb_threads", MakeSchema({{"kind", DataType::String()},
                                  {"id", DataType::Integer()},
                                  {"tag", DataType::Integer()},
                                  {"queue_depth", DataType::Integer()},
                                  {"tasks", DataType::Integer()},
                                  {"busy_micros", DataType::Integer()},
                                  {"wait_micros", DataType::Integer()}}));
  const ThreadPool::PoolStats stats = db_->pool()->Stats();
  auto micros = [](double seconds) {
    return Value::Int(static_cast<int64_t>(seconds * 1e6));
  };
  for (size_t i = 0; i < stats.workers.size(); ++i) {
    const ThreadPool::WorkerStats& w = stats.workers[i];
    (void)table->Insert({Value::String("worker"),
                         Value::Int(static_cast<int64_t>(i)), Value::Int(0),
                         Value::Int(0),
                         Value::Int(static_cast<int64_t>(w.tasks)),
                         micros(w.busy_seconds), micros(w.wait_seconds)});
  }
  // Submitting threads' own claims, folded into one aggregate row.
  (void)table->Insert({Value::String("caller"), Value::Int(-1), Value::Int(0),
                       Value::Int(0),
                       Value::Int(static_cast<int64_t>(stats.caller.tasks)),
                       micros(stats.caller.busy_seconds),
                       micros(stats.caller.wait_seconds)});
  for (const ThreadPool::RegionStats& r : stats.regions) {
    (void)table->Insert(
        {Value::String("region"), Value::Int(static_cast<int64_t>(r.id)),
         Value::Int(static_cast<int64_t>(r.tag)),
         Value::Int(static_cast<int64_t>(r.n - r.next)),
         Value::Int(static_cast<int64_t>(r.completed)),
         micros(r.age_seconds), Value::Int(0)});
  }
  return table;
}

std::shared_ptr<Table> SystemTableCatalog::TablesTable() const {
  auto table = MakeSnapshotTable(
      "radb_tables", MakeSchema({{"name", DataType::String()},
                                 {"columns", DataType::Integer()},
                                 {"num_rows", DataType::Integer()},
                                 {"bytes", DataType::Integer()},
                                 {"num_partitions", DataType::Integer()},
                                 {"partitioning", DataType::String()}}));
  const Catalog& catalog = db_->catalog();
  for (const std::string& name : catalog.TableNames()) {
    auto t = catalog.GetTable(name);
    if (!t.ok()) continue;
    const Table& user = *t.value();
    const char* partitioning = "round_robin";
    switch (user.partitioning().kind) {
      case Partitioning::Kind::kRoundRobin:
        partitioning = "round_robin";
        break;
      case Partitioning::Kind::kHash:
        partitioning = "hash";
        break;
      case Partitioning::Kind::kSingleton:
        partitioning = "singleton";
        break;
    }
    (void)table->Insert(
        {Value::String(name),
         Value::Int(static_cast<int64_t>(user.schema().size())),
         Value::Int(static_cast<int64_t>(user.num_rows())),
         Value::Int(static_cast<int64_t>(user.byte_size())),
         Value::Int(static_cast<int64_t>(user.num_partitions())),
         Value::String(partitioning)});
  }
  return table;
}

std::shared_ptr<Table> SystemTableCatalog::CacheTable() const {
  auto table = MakeSnapshotTable(
      "radb_cache", MakeSchema({{"cache", DataType::String()},
                                {"entries", DataType::Integer()},
                                {"bytes", DataType::Integer()},
                                {"budget_bytes", DataType::Integer()},
                                {"hits", DataType::Integer()},
                                {"misses", DataType::Integer()},
                                {"evictions", DataType::Integer()},
                                {"invalidations", DataType::Integer()}}));
  auto row = [&](const char* kind, int64_t entries, int64_t bytes,
                 int64_t budget, const CacheStatsSnapshot& s) {
    (void)table->Insert({Value::String(kind), Value::Int(entries),
                         Value::Int(bytes), Value::Int(budget),
                         Value::Int(s.hits), Value::Int(s.misses),
                         Value::Int(s.evictions), Value::Int(s.invalidations)});
  };
  if (const PlanCache* plans = db_->plan_cache()) {
    row("plan", static_cast<int64_t>(plans->entries()), 0, 0, plans->stats());
  }
  if (const ResultCache* results = db_->result_cache()) {
    row("result", static_cast<int64_t>(results->entries()),
        static_cast<int64_t>(results->bytes_in_use()),
        static_cast<int64_t>(results->budget_bytes()), results->stats());
  }
  row("prepared", static_cast<int64_t>(db_->prepared_count()), 0, 0,
      CacheStatsSnapshot{});
  return table;
}

std::shared_ptr<Table> SystemTableCatalog::BufferPoolTable() const {
  auto table = MakeSnapshotTable(
      "radb_bufferpool",
      MakeSchema({{"budget_bytes", DataType::Integer()},
                  {"cached_bytes", DataType::Integer()},
                  {"unevictable_bytes", DataType::Integer()},
                  {"entries", DataType::Integer()},
                  {"pinned_entries", DataType::Integer()},
                  {"hits", DataType::Integer()},
                  {"misses", DataType::Integer()},
                  {"evictions", DataType::Integer()},
                  {"wal_bytes", DataType::Integer()},
                  {"checkpoints", DataType::Integer()},
                  {"replayed_statements", DataType::Integer()},
                  {"recovered", DataType::Boolean()},
                  {"page_files", DataType::Integer()},
                  {"total_pages", DataType::Integer()},
                  {"free_pages", DataType::Integer()}}));
  // One row per database; none at all when the database is in-memory
  // (SELECT COUNT(*) FROM radb_bufferpool is the cheap persistence
  // probe).
  storage::TableStore* store = db_->table_store();
  if (store == nullptr) return table;
  const storage::BufferPool::Stats pool = store->pool()->GetStats();
  const storage::TableStore::Stats st = store->GetStats();
  auto u = [](uint64_t v) { return Value::Int(static_cast<int64_t>(v)); };
  (void)table->Insert(
      {u(pool.budget_bytes), u(pool.cached_bytes), u(pool.unevictable_bytes),
       u(pool.entries), u(pool.pinned_entries), u(pool.hits), u(pool.misses),
       u(pool.evictions), u(st.wal_bytes), u(st.checkpoints),
       u(st.replayed_statements), Value::Bool(st.recovered),
       u(st.page_files), u(st.total_pages), u(st.free_pages)});
  return table;
}

std::shared_ptr<Table> SystemTableCatalog::IndexesTable() const {
  auto table = MakeSnapshotTable(
      "radb_indexes", MakeSchema({{"name", DataType::String()},
                                  {"table_name", DataType::String()},
                                  {"columns", DataType::String()},
                                  {"entries", DataType::Integer()},
                                  {"degraded", DataType::Boolean()}}));
  const Catalog& catalog = db_->catalog();
  for (const auto& [index, owner] : catalog.index_owners()) {
    auto t = catalog.GetTable(owner);
    if (!t.ok()) continue;
    const IndexDef* def = t.value()->FindIndex(index);
    if (def == nullptr) continue;
    std::string cols;
    for (size_t c : def->columns) {
      if (!cols.empty()) cols += ",";
      cols += t.value()->schema().columns()[c].name;
    }
    (void)table->Insert(
        {Value::String(index), Value::String(owner), Value::String(cols),
         Value::Int(static_cast<int64_t>(
             def->tree == nullptr ? 0 : def->tree->size())),
         Value::Bool(def->degraded)});
  }
  return table;
}

}  // namespace radb
