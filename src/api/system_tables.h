#ifndef RADB_API_SYSTEM_TABLES_H_
#define RADB_API_SYSTEM_TABLES_H_

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "catalog/catalog.h"

namespace radb {

/// The Database's SystemTableProvider: serves the virtual radb_*
/// tables from live engine state. Every GetTable hit materializes a
/// fresh single-partition snapshot Table, so one scan sees one
/// consistent point in time and the ordinary executor path (filters,
/// joins, aggregates, EXPLAIN) needs no special cases.
///
/// Tables served:
///   radb_metrics   — registry counters/gauges/histogram percentiles
///   radb_queries   — completed-query ring: status, rows, peak/spill
///                    bytes, per-phase micros (wide format)
///   radb_query_phases — the same breakdown in long format
///                    (query_id, phase, micros) for GROUP BY phase
///   radb_operators — per-operator est vs. actual rows, worker
///                    seconds, skew, shuffle/spill bytes
///   radb_sessions  — live service sessions and what they run
///   radb_threads   — pool workers (busy/wait time) and live regions
///                    (queue depth)
///   radb_tables    — user tables with row counts and byte sizes
///   radb_cache     — plan/result cache state: entries, bytes, hits,
///                    misses, evictions, invalidations; plus the
///                    prepared-statement count
///
/// Latch rules (DESIGN.md §12): snapshots take only leaf locks (the
/// telemetry-store mutex, the registry mutex, the pool mutex) — never
/// the service's catalog latch, which readers already hold.
class SystemTableCatalog : public SystemTableProvider {
 public:
  explicit SystemTableCatalog(Database* db) : db_(db) {}

  std::vector<std::string> TableNames() const override;
  bool Has(const std::string& lower_name) const override;
  Result<std::shared_ptr<Table>> Snapshot(
      const std::string& lower_name) const override;

 private:
  std::shared_ptr<Table> MetricsTable() const;
  std::shared_ptr<Table> QueriesTable() const;
  std::shared_ptr<Table> QueryPhasesTable() const;
  std::shared_ptr<Table> OperatorsTable() const;
  std::shared_ptr<Table> SessionsTable() const;
  std::shared_ptr<Table> ThreadsTable() const;
  std::shared_ptr<Table> TablesTable() const;
  std::shared_ptr<Table> CacheTable() const;
  std::shared_ptr<Table> BufferPoolTable() const;
  std::shared_ptr<Table> IndexesTable() const;

  Database* db_;
};

}  // namespace radb

#endif  // RADB_API_SYSTEM_TABLES_H_
