#ifndef RADB_BINDER_BOUND_EXPR_H_
#define RADB_BINDER_BOUND_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/aggregate.h"
#include "catalog/function_registry.h"
#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"
#include "types/value_ops.h"

namespace radb {

/// A type-checked expression. Column references use *slot ids*:
/// globally unique column identifiers assigned by the binder. The
/// physical planner later rewrites slots to row positions.
struct BoundExpr {
  enum class Kind {
    kLiteral,
    kColumnRef,  // slot
    kArith,      // children[0] op children[1]
    kCompare,
    kLogic,  // AND / OR
    kNot,
    kNeg,
    kCall,   // scalar built-in
    kParam,  // ? placeholder in a PREPAREd plan; replaced per EXECUTE
  };

  Kind kind = Kind::kLiteral;
  DataType type;

  Value literal;    // kLiteral
  size_t slot = 0;  // kColumnRef; kParam: 0-based parameter ordinal
  std::string column_name;  // kColumnRef, for display

  ArithOp arith_op = ArithOp::kAdd;      // kArith
  CompareOp compare_op = CompareOp::kEq;  // kCompare
  bool logic_is_and = true;               // kLogic

  const BuiltinFunction* fn = nullptr;  // kCall
  std::vector<std::unique_ptr<BoundExpr>> children;

  std::unique_ptr<BoundExpr> Clone() const;
  /// Adds every slot referenced by this expression to `slots`.
  void CollectSlots(std::set<size_t>* slots) const;
  /// Rewrites every column reference through `mapping[old] = new`.
  /// Slots absent from the mapping are left unchanged.
  void RemapSlots(const std::map<size_t, size_t>& mapping);
  std::string ToString() const;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

BoundExprPtr MakeBoundLiteral(Value v);
BoundExprPtr MakeBoundColumnRef(size_t slot, DataType type,
                                std::string name);

/// One aggregate invocation extracted from the SELECT list, e.g.
/// SUM(outer_product(x, x)): the argument is a scalar expression over
/// the aggregate input; `out_slot` is the slot the result occupies in
/// the aggregate operator's output.
struct AggCall {
  const AggregateFunction* fn = nullptr;
  std::string name;
  BoundExprPtr arg;        // null only for COUNT(*)
  bool is_count_star = false;
  DataType result_type;
  size_t out_slot = 0;
};

}  // namespace radb

#endif  // RADB_BINDER_BOUND_EXPR_H_
