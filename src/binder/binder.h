#ifndef RADB_BINDER_BINDER_H_
#define RADB_BINDER_BINDER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "binder/bound_expr.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "parser/ast.h"
#include "plan/logical_plan.h"

namespace radb {

struct BoundQuery;

/// One FROM-list entry after binding: either a base table or a nested
/// query (derived table or expanded view). `columns` lists the slots
/// it exposes to the enclosing query.
struct BoundRelation {
  std::string alias;
  std::shared_ptr<Table> table;  // base table; null for subqueries
  std::unique_ptr<BoundQuery> subquery;
  std::vector<SlotInfo> columns;
};

/// A fully bound (type-checked, slot-resolved) SELECT, the input to
/// the optimizer. WHERE is split into conjuncts; aggregates are
/// extracted from the SELECT list into AggCalls whose results the
/// final projection references by slot.
struct BoundQuery {
  std::vector<BoundRelation> relations;
  std::vector<BoundExprPtr> conjuncts;

  bool has_aggregate = false;
  std::vector<BoundExprPtr> group_exprs;  // over relation slots
  std::vector<SlotInfo> group_outputs;    // slots produced by group keys
  std::vector<AggCall> aggs;
  /// HAVING predicate over group/aggregate outputs; may be null.
  BoundExprPtr having;

  /// Final projection. In aggregate queries these reference
  /// group_outputs / agg out_slots; otherwise relation slots.
  std::vector<BoundExprPtr> select_exprs;
  std::vector<SlotInfo> output;

  bool distinct = false;
  std::vector<std::pair<BoundExprPtr, bool>> order_by;  // over `output`
  std::optional<int64_t> limit;

  /// Leading count of `output` columns the user asked for; entries
  /// beyond it are hidden sort keys (ORDER BY expressions that are not
  /// in the SELECT list) and are trimmed from the final result.
  size_t num_visible_outputs = 0;

  /// First slot id not in use after binding; the optimizer allocates
  /// fresh slots (for early projections) starting here.
  size_t next_slot = 0;
};

/// Semantic analyzer: resolves names against the catalog, expands
/// views, assigns globally unique slots, and type-checks every
/// expression — including dimension inference through the templated
/// built-in signatures (paper §4.2). Size mismatches that are knowable
/// from declared MATRIX/VECTOR dimensions are compile-time errors
/// (paper §3.1).
class Binder {
 public:
  explicit Binder(const Catalog& catalog) : catalog_(catalog) {}

  /// Supplies the concrete type of each ? marker when binding a
  /// PREPAREd statement body (types come from the first EXECUTE's
  /// argument values). Without hints, ? markers are a bind error.
  /// The vector must outlive the Bind call.
  void SetParamTypes(const std::vector<DataType>* types) {
    param_types_ = types;
  }

  Result<std::unique_ptr<BoundQuery>> Bind(const parser::SelectStmt& stmt);

 private:
  struct ScopeEntry {
    std::string qualifier;
    std::string name;
    size_t slot;
    DataType type;
  };
  struct Scope {
    std::vector<ScopeEntry> entries;
  };

  size_t NewSlot() { return next_slot_++; }

  Result<BoundRelation> BindTableRef(const parser::TableRef& ref);
  Result<std::unique_ptr<BoundQuery>> BindSubquery(
      const parser::SelectStmt& stmt);

  Result<const ScopeEntry*> ResolveColumn(const Scope& scope,
                                          const std::string& qualifier,
                                          const std::string& name) const;

  /// Binds a scalar expression; aggregate function names are an error
  /// here (`context` names the clause for the message).
  Result<BoundExprPtr> BindExpr(const parser::Expr& expr, const Scope& scope,
                                const char* context);

  /// Binds a SELECT-list expression in an aggregate query: group-key
  /// subtrees become refs to group slots, aggregate calls become
  /// AggCalls, bare columns are errors.
  Result<BoundExprPtr> BindAggSelectExpr(
      const parser::Expr& expr, const Scope& scope,
      const std::vector<std::string>& group_keys, BoundQuery* query);

  bool ContainsAggregate(const parser::Expr& expr) const;

  const Catalog& catalog_;
  const std::vector<DataType>* param_types_ = nullptr;
  size_t next_slot_ = 0;
  int view_depth_ = 0;
};

}  // namespace radb

#endif  // RADB_BINDER_BINDER_H_
