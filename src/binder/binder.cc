#include "binder/binder.h"

#include <set>

#include "common/string_util.h"
#include "parser/parser.h"

namespace radb {

namespace {

constexpr int kMaxViewDepth = 32;

/// Canonical textual form used to match SELECT subtrees against GROUP
/// BY expressions.
std::string GroupKey(const parser::Expr& e) { return ToLower(e.ToString()); }

}  // namespace

bool Binder::ContainsAggregate(const parser::Expr& expr) const {
  if (expr.kind == parser::Expr::Kind::kFunctionCall &&
      catalog_.aggregates().Contains(expr.name)) {
    return true;
  }
  for (const auto& c : expr.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

Result<const Binder::ScopeEntry*> Binder::ResolveColumn(
    const Scope& scope, const std::string& qualifier,
    const std::string& name) const {
  const std::string q = ToLower(qualifier);
  const std::string n = ToLower(name);
  const ScopeEntry* found = nullptr;
  for (const ScopeEntry& e : scope.entries) {
    if (ToLower(e.name) != n) continue;
    if (!q.empty() && ToLower(e.qualifier) != q) continue;
    if (found != nullptr) {
      return Status::BindError("ambiguous column reference: " +
                               (q.empty() ? name : qualifier + "." + name));
    }
    found = &e;
  }
  if (found == nullptr) {
    return Status::BindError("column not found: " +
                             (q.empty() ? name : qualifier + "." + name));
  }
  return found;
}

Result<BoundRelation> Binder::BindTableRef(const parser::TableRef& ref) {
  BoundRelation rel;
  if (ref.kind == parser::TableRef::Kind::kSubquery) {
    rel.alias = ref.alias;
    RADB_ASSIGN_OR_RETURN(rel.subquery, BindSubquery(*ref.subquery));
    for (const SlotInfo& s : rel.subquery->output) {
      rel.columns.push_back(s);
    }
    return rel;
  }
  // Base table or view.
  rel.alias = ref.alias.empty() ? ref.name : ref.alias;
  if (catalog_.HasView(ref.name)) {
    if (++view_depth_ > kMaxViewDepth) {
      --view_depth_;
      return Status::BindError("view expansion too deep (cycle?) at " +
                               ref.name);
    }
    RADB_ASSIGN_OR_RETURN(const ViewEntry* view, catalog_.GetView(ref.name));
    // Views are stored as SQL text (late binding); re-parse at use.
    auto parsed = parser::ParseSelect(view->select_sql);
    if (!parsed.ok()) {
      --view_depth_;
      return Status::BindError("failed to re-parse view " + ref.name + ": " +
                               parsed.status().message());
    }
    auto bound = BindSubquery(**parsed);
    --view_depth_;
    if (!bound.ok()) return bound.status();
    rel.subquery = std::move(bound).value();
    const auto& aliases = view->column_aliases;
    if (!aliases.empty() && aliases.size() != rel.subquery->output.size()) {
      return Status::BindError("view " + ref.name + " declares " +
                               std::to_string(aliases.size()) +
                               " columns but SELECT produces " +
                               std::to_string(rel.subquery->output.size()));
    }
    for (size_t i = 0; i < rel.subquery->output.size(); ++i) {
      SlotInfo s = rel.subquery->output[i];
      if (!aliases.empty()) s.name = aliases[i];
      rel.columns.push_back(std::move(s));
    }
    return rel;
  }
  RADB_ASSIGN_OR_RETURN(rel.table, catalog_.GetTable(ref.name));
  for (size_t i = 0; i < rel.table->schema().size(); ++i) {
    const Column& c = rel.table->schema().at(i);
    rel.columns.push_back(SlotInfo{NewSlot(), c.name, c.type});
  }
  return rel;
}

Result<BoundExprPtr> Binder::BindExpr(const parser::Expr& expr,
                                      const Scope& scope,
                                      const char* context) {
  using PK = parser::Expr::Kind;
  switch (expr.kind) {
    case PK::kIntLiteral:
      return MakeBoundLiteral(Value::Int(expr.int_value));
    case PK::kDoubleLiteral:
      return MakeBoundLiteral(Value::Double(expr.double_value));
    case PK::kStringLiteral:
      return MakeBoundLiteral(Value::String(expr.string_value));
    case PK::kBoolLiteral:
      return MakeBoundLiteral(Value::Bool(expr.bool_value));
    case PK::kNullLiteral:
      return MakeBoundLiteral(Value::Null());
    case PK::kStar:
      return Status::BindError(std::string("'*' is not allowed in ") +
                               context);
    case PK::kColumnRef: {
      RADB_ASSIGN_OR_RETURN(const ScopeEntry* e,
                            ResolveColumn(scope, expr.qualifier, expr.name));
      return MakeBoundColumnRef(
          e->slot, e->type,
          e->qualifier.empty() ? e->name : e->qualifier + "." + e->name);
    }
    case PK::kUnaryOp: {
      RADB_ASSIGN_OR_RETURN(BoundExprPtr child,
                            BindExpr(*expr.children[0], scope, context));
      auto out = std::make_unique<BoundExpr>();
      if (expr.op == parser::OpKind::kNot) {
        if (child->type.kind() != TypeKind::kBoolean &&
            child->type.kind() != TypeKind::kNull) {
          return Status::TypeError("NOT requires BOOLEAN, got " +
                                   child->type.ToString());
        }
        out->kind = BoundExpr::Kind::kNot;
        out->type = DataType::Boolean();
      } else {
        RADB_ASSIGN_OR_RETURN(out->type, InferNegateType(child->type));
        out->kind = BoundExpr::Kind::kNeg;
      }
      out->children.push_back(std::move(child));
      return out;
    }
    case PK::kBinaryOp: {
      RADB_ASSIGN_OR_RETURN(BoundExprPtr lhs,
                            BindExpr(*expr.children[0], scope, context));
      RADB_ASSIGN_OR_RETURN(BoundExprPtr rhs,
                            BindExpr(*expr.children[1], scope, context));
      auto out = std::make_unique<BoundExpr>();
      switch (expr.op) {
        case parser::OpKind::kAdd:
        case parser::OpKind::kSub:
        case parser::OpKind::kMul:
        case parser::OpKind::kDiv: {
          out->kind = BoundExpr::Kind::kArith;
          out->arith_op = expr.op == parser::OpKind::kAdd   ? ArithOp::kAdd
                          : expr.op == parser::OpKind::kSub ? ArithOp::kSub
                          : expr.op == parser::OpKind::kMul ? ArithOp::kMul
                                                            : ArithOp::kDiv;
          RADB_ASSIGN_OR_RETURN(
              out->type, InferArithType(out->arith_op, lhs->type, rhs->type));
          break;
        }
        case parser::OpKind::kEq:
        case parser::OpKind::kNe:
        case parser::OpKind::kLt:
        case parser::OpKind::kLe:
        case parser::OpKind::kGt:
        case parser::OpKind::kGe: {
          out->kind = BoundExpr::Kind::kCompare;
          out->compare_op = expr.op == parser::OpKind::kEq   ? CompareOp::kEq
                            : expr.op == parser::OpKind::kNe ? CompareOp::kNe
                            : expr.op == parser::OpKind::kLt ? CompareOp::kLt
                            : expr.op == parser::OpKind::kLe ? CompareOp::kLe
                            : expr.op == parser::OpKind::kGt ? CompareOp::kGt
                                                             : CompareOp::kGe;
          RADB_ASSIGN_OR_RETURN(
              out->type,
              InferCompareType(out->compare_op, lhs->type, rhs->type));
          break;
        }
        case parser::OpKind::kAnd:
        case parser::OpKind::kOr: {
          auto require_bool = [](const DataType& t) -> Status {
            if (t.kind() != TypeKind::kBoolean &&
                t.kind() != TypeKind::kNull) {
              return Status::TypeError("AND/OR requires BOOLEAN, got " +
                                       t.ToString());
            }
            return Status::OK();
          };
          RADB_RETURN_NOT_OK(require_bool(lhs->type));
          RADB_RETURN_NOT_OK(require_bool(rhs->type));
          out->kind = BoundExpr::Kind::kLogic;
          out->logic_is_and = (expr.op == parser::OpKind::kAnd);
          out->type = DataType::Boolean();
          break;
        }
        default:
          return Status::Internal("unexpected binary op");
      }
      out->children.push_back(std::move(lhs));
      out->children.push_back(std::move(rhs));
      return out;
    }
    case PK::kFunctionCall: {
      if (catalog_.aggregates().Contains(expr.name)) {
        return Status::BindError("aggregate function " + expr.name +
                                 " is not allowed in " + context);
      }
      RADB_ASSIGN_OR_RETURN(const BuiltinFunction* fn,
                            catalog_.functions().Lookup(expr.name));
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExpr::Kind::kCall;
      out->fn = fn;
      std::vector<DataType> arg_types;
      for (const auto& child : expr.children) {
        RADB_ASSIGN_OR_RETURN(BoundExprPtr bound,
                              BindExpr(*child, scope, context));
        arg_types.push_back(bound->type);
        out->children.push_back(std::move(bound));
      }
      // Templated signature binding: unifies dimension variables and
      // infers the result size (paper §4.2).
      RADB_ASSIGN_OR_RETURN(out->type, fn->signature.Bind(arg_types));
      return out;
    }
    case PK::kParam: {
      if (param_types_ == nullptr) {
        return Status::BindError(
            "parameter markers (?) are only allowed inside PREPARE");
      }
      if (expr.param_index >= param_types_->size()) {
        return Status::Internal("parameter index out of range");
      }
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExpr::Kind::kParam;
      out->slot = expr.param_index;
      out->type = (*param_types_)[expr.param_index];
      return out;
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<BoundExprPtr> Binder::BindAggSelectExpr(
    const parser::Expr& expr, const Scope& scope,
    const std::vector<std::string>& group_keys, BoundQuery* query) {
  using PK = parser::Expr::Kind;
  // A subtree that textually matches a GROUP BY expression becomes a
  // reference to the corresponding group slot.
  const std::string key = GroupKey(expr);
  for (size_t i = 0; i < group_keys.size(); ++i) {
    if (group_keys[i] == key) {
      const SlotInfo& s = query->group_outputs[i];
      return MakeBoundColumnRef(s.slot, s.type, s.name);
    }
  }
  // Aggregate call?
  if (expr.kind == PK::kFunctionCall &&
      catalog_.aggregates().Contains(expr.name)) {
    RADB_ASSIGN_OR_RETURN(const AggregateFunction* fn,
                          catalog_.aggregates().Lookup(expr.name));
    AggCall call;
    call.fn = fn;
    call.name = ToLower(expr.name);
    if (expr.children.size() == 1 &&
        expr.children[0]->kind == PK::kStar) {
      if (call.name != "count") {
        return Status::BindError("'*' argument only valid in COUNT(*)");
      }
      call.is_count_star = true;
      call.result_type = DataType::Integer();
    } else {
      if (expr.children.size() != 1) {
        return Status::BindError("aggregate " + expr.name +
                                 " takes exactly one argument");
      }
      if (ContainsAggregate(*expr.children[0])) {
        return Status::BindError("nested aggregates are not allowed");
      }
      RADB_ASSIGN_OR_RETURN(
          call.arg, BindExpr(*expr.children[0], scope, "aggregate argument"));
      RADB_ASSIGN_OR_RETURN(call.result_type, fn->infer(call.arg->type));
    }
    call.out_slot = NewSlot();
    BoundExprPtr ref = MakeBoundColumnRef(
        call.out_slot, call.result_type,
        call.name + "(" +
            (call.is_count_star ? "*" : call.arg->ToString()) + ")");
    query->aggs.push_back(std::move(call));
    return ref;
  }
  // Otherwise recurse; bare column references are illegal here.
  if (expr.kind == PK::kColumnRef) {
    return Status::BindError(
        "column " + expr.ToString() +
        " must appear in GROUP BY or inside an aggregate");
  }
  if (expr.kind == PK::kStar) {
    return Status::BindError("'*' is not allowed with GROUP BY/aggregates");
  }
  if (expr.children.empty()) {
    // Literal.
    return BindExpr(expr, scope, "select list");
  }
  // Rebuild operator nodes over recursively transformed children.
  switch (expr.kind) {
    case PK::kUnaryOp: {
      RADB_ASSIGN_OR_RETURN(
          BoundExprPtr child,
          BindAggSelectExpr(*expr.children[0], scope, group_keys, query));
      auto out = std::make_unique<BoundExpr>();
      if (expr.op == parser::OpKind::kNot) {
        out->kind = BoundExpr::Kind::kNot;
        out->type = DataType::Boolean();
      } else {
        out->kind = BoundExpr::Kind::kNeg;
        RADB_ASSIGN_OR_RETURN(out->type, InferNegateType(child->type));
      }
      out->children.push_back(std::move(child));
      return out;
    }
    case PK::kBinaryOp: {
      RADB_ASSIGN_OR_RETURN(
          BoundExprPtr lhs,
          BindAggSelectExpr(*expr.children[0], scope, group_keys, query));
      RADB_ASSIGN_OR_RETURN(
          BoundExprPtr rhs,
          BindAggSelectExpr(*expr.children[1], scope, group_keys, query));
      auto out = std::make_unique<BoundExpr>();
      switch (expr.op) {
        case parser::OpKind::kAdd:
        case parser::OpKind::kSub:
        case parser::OpKind::kMul:
        case parser::OpKind::kDiv: {
          out->kind = BoundExpr::Kind::kArith;
          out->arith_op = expr.op == parser::OpKind::kAdd   ? ArithOp::kAdd
                          : expr.op == parser::OpKind::kSub ? ArithOp::kSub
                          : expr.op == parser::OpKind::kMul ? ArithOp::kMul
                                                            : ArithOp::kDiv;
          RADB_ASSIGN_OR_RETURN(
              out->type, InferArithType(out->arith_op, lhs->type, rhs->type));
          break;
        }
        case parser::OpKind::kEq:
        case parser::OpKind::kNe:
        case parser::OpKind::kLt:
        case parser::OpKind::kLe:
        case parser::OpKind::kGt:
        case parser::OpKind::kGe: {
          out->kind = BoundExpr::Kind::kCompare;
          out->compare_op = expr.op == parser::OpKind::kEq   ? CompareOp::kEq
                            : expr.op == parser::OpKind::kNe ? CompareOp::kNe
                            : expr.op == parser::OpKind::kLt ? CompareOp::kLt
                            : expr.op == parser::OpKind::kLe ? CompareOp::kLe
                            : expr.op == parser::OpKind::kGt ? CompareOp::kGt
                                                             : CompareOp::kGe;
          RADB_ASSIGN_OR_RETURN(
              out->type,
              InferCompareType(out->compare_op, lhs->type, rhs->type));
          break;
        }
        case parser::OpKind::kAnd:
        case parser::OpKind::kOr:
          out->kind = BoundExpr::Kind::kLogic;
          out->logic_is_and = (expr.op == parser::OpKind::kAnd);
          out->type = DataType::Boolean();
          break;
        default:
          return Status::Internal("unexpected binary op");
      }
      out->children.push_back(std::move(lhs));
      out->children.push_back(std::move(rhs));
      return out;
    }
    case PK::kFunctionCall: {
      RADB_ASSIGN_OR_RETURN(const BuiltinFunction* fn,
                            catalog_.functions().Lookup(expr.name));
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExpr::Kind::kCall;
      out->fn = fn;
      std::vector<DataType> arg_types;
      for (const auto& child : expr.children) {
        RADB_ASSIGN_OR_RETURN(
            BoundExprPtr bound,
            BindAggSelectExpr(*child, scope, group_keys, query));
        arg_types.push_back(bound->type);
        out->children.push_back(std::move(bound));
      }
      RADB_ASSIGN_OR_RETURN(out->type, fn->signature.Bind(arg_types));
      return out;
    }
    default:
      return Status::Internal("unhandled select expression");
  }
  (void)clone;
}

Result<std::unique_ptr<BoundQuery>> Binder::BindSubquery(
    const parser::SelectStmt& stmt) {
  return Bind(stmt);
}

Result<std::unique_ptr<BoundQuery>> Binder::Bind(
    const parser::SelectStmt& stmt) {
  auto query = std::make_unique<BoundQuery>();
  query->distinct = stmt.distinct;
  query->limit = stmt.limit;

  if (stmt.from.empty()) {
    return Status::BindError("FROM clause is required");
  }

  // 1. FROM: bind relations and build the name scope.
  Scope scope;
  std::set<std::string> seen_aliases;
  for (const parser::TableRef& ref : stmt.from) {
    RADB_ASSIGN_OR_RETURN(BoundRelation rel, BindTableRef(ref));
    const std::string alias_key = ToLower(rel.alias);
    if (!seen_aliases.insert(alias_key).second) {
      return Status::BindError("duplicate table alias: " + rel.alias);
    }
    for (const SlotInfo& s : rel.columns) {
      scope.entries.push_back(ScopeEntry{rel.alias, s.name, s.slot, s.type});
    }
    query->relations.push_back(std::move(rel));
  }

  // 2. WHERE: bind and split conjuncts.
  if (stmt.where) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr where,
                          BindExpr(*stmt.where, scope, "WHERE"));
    if (where->type.kind() != TypeKind::kBoolean &&
        where->type.kind() != TypeKind::kNull) {
      return Status::TypeError("WHERE requires BOOLEAN, got " +
                               where->type.ToString());
    }
    // Split top-level ANDs.
    std::vector<BoundExprPtr> stack;
    stack.push_back(std::move(where));
    while (!stack.empty()) {
      BoundExprPtr e = std::move(stack.back());
      stack.pop_back();
      if (e->kind == BoundExpr::Kind::kLogic && e->logic_is_and) {
        stack.push_back(std::move(e->children[0]));
        stack.push_back(std::move(e->children[1]));
      } else {
        query->conjuncts.push_back(std::move(e));
      }
    }
  }

  // 3. Aggregate detection.
  bool any_agg = !stmt.group_by.empty();
  for (const parser::SelectItem& item : stmt.items) {
    if (!item.is_star && ContainsAggregate(*item.expr)) any_agg = true;
  }
  query->has_aggregate = any_agg;

  // Source text of each output column (for ORDER BY textual match).
  std::vector<std::string> output_texts;

  auto name_for = [](const parser::SelectItem& item, size_t idx) {
    if (!item.alias.empty()) return item.alias;
    if (item.expr && item.expr->kind == parser::Expr::Kind::kColumnRef) {
      return item.expr->name;
    }
    return "col" + std::to_string(idx + 1);
  };

  if (!any_agg) {
    // Plain projection query.
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const parser::SelectItem& item = stmt.items[i];
      if (item.is_star) {
        for (const ScopeEntry& e : scope.entries) {
          query->select_exprs.push_back(MakeBoundColumnRef(
              e.slot, e.type, e.qualifier + "." + e.name));
          query->output.push_back(SlotInfo{NewSlot(), e.name, e.type});
          output_texts.push_back(ToLower(e.qualifier + "." + e.name));
        }
        continue;
      }
      RADB_ASSIGN_OR_RETURN(BoundExprPtr bound,
                            BindExpr(*item.expr, scope, "select list"));
      query->output.push_back(
          SlotInfo{NewSlot(), name_for(item, i), bound->type});
      output_texts.push_back(ToLower(item.expr->ToString()));
      query->select_exprs.push_back(std::move(bound));
    }
  } else {
    // 3a. Bind GROUP BY keys.
    std::vector<std::string> group_keys;
    for (const auto& g : stmt.group_by) {
      if (ContainsAggregate(*g)) {
        return Status::BindError("aggregates are not allowed in GROUP BY");
      }
      RADB_ASSIGN_OR_RETURN(BoundExprPtr bound,
                            BindExpr(*g, scope, "GROUP BY"));
      group_keys.push_back(GroupKey(*g));
      query->group_outputs.push_back(
          SlotInfo{NewSlot(), bound->ToString(), bound->type});
      query->group_exprs.push_back(std::move(bound));
    }
    // 3b. Transform SELECT items.
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const parser::SelectItem& item = stmt.items[i];
      if (item.is_star) {
        return Status::BindError(
            "'*' is not allowed with GROUP BY/aggregates");
      }
      RADB_ASSIGN_OR_RETURN(
          BoundExprPtr bound,
          BindAggSelectExpr(*item.expr, scope, group_keys, query.get()));
      query->output.push_back(
          SlotInfo{NewSlot(), name_for(item, i), bound->type});
      output_texts.push_back(ToLower(item.expr->ToString()));
      query->select_exprs.push_back(std::move(bound));
    }
  }

  // 3c. HAVING binds like an aggregate-context select expression.
  if (stmt.having) {
    if (!any_agg) {
      return Status::BindError("HAVING requires GROUP BY or aggregates");
    }
    std::vector<std::string> group_keys;
    for (const auto& g : stmt.group_by) group_keys.push_back(GroupKey(*g));
    RADB_ASSIGN_OR_RETURN(
        query->having,
        BindAggSelectExpr(*stmt.having, scope, group_keys, query.get()));
    if (query->having->type.kind() != TypeKind::kBoolean &&
        query->having->type.kind() != TypeKind::kNull) {
      return Status::TypeError("HAVING requires BOOLEAN, got " +
                               query->having->type.ToString());
    }
  }

  query->num_visible_outputs = query->output.size();

  // 4. ORDER BY binds against the projected output columns, either by
  // output name/alias or by textually matching a SELECT item (so
  // `ORDER BY t.a` and `ORDER BY a / 2` work when those expressions
  // appear in the SELECT list).
  if (!stmt.order_by.empty()) {
    Scope out_scope;
    for (const SlotInfo& s : query->output) {
      out_scope.entries.push_back(ScopeEntry{"", s.name, s.slot, s.type});
    }
    std::vector<std::string> group_keys;
    for (const auto& g : stmt.group_by) group_keys.push_back(GroupKey(*g));
    for (const auto& item : stmt.order_by) {
      auto bound = BindExpr(*item.expr, out_scope, "ORDER BY");
      if (!bound.ok()) {
        // Fall back to a textual match against the SELECT list.
        const std::string text = ToLower(item.expr->ToString());
        BoundExprPtr matched;
        for (size_t i = 0; i < output_texts.size(); ++i) {
          if (output_texts[i] == text && i < query->output.size()) {
            const SlotInfo& s = query->output[i];
            matched = MakeBoundColumnRef(s.slot, s.type, s.name);
            break;
          }
        }
        if (!matched) {
          // Last resort: bind over the input (or group/aggregate)
          // scope and carry the value as a hidden output column that
          // the API trims from the final result.
          if (stmt.distinct) {
            return Status::BindError(
                "ORDER BY expression must appear in the SELECT list "
                "when DISTINCT is used: " + item.expr->ToString());
          }
          Result<BoundExprPtr> hidden =
              query->has_aggregate
                  ? BindAggSelectExpr(*item.expr, scope, group_keys,
                                      query.get())
                  : BindExpr(*item.expr, scope, "ORDER BY");
          if (!hidden.ok()) return bound.status();
          const SlotInfo info{NewSlot(), "$sort", (*hidden)->type};
          query->select_exprs.push_back(std::move(hidden).value());
          query->output.push_back(info);
          matched = MakeBoundColumnRef(info.slot, info.type, info.name);
        }
        bound = std::move(matched);
      }
      query->order_by.emplace_back(std::move(bound).value(),
                                   item.descending);
    }
  }
  query->next_slot = next_slot_;
  return query;
}

}  // namespace radb
