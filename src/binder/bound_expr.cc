#include "binder/bound_expr.h"

#include <map>

#include "common/string_util.h"

namespace radb {

BoundExprPtr BoundExpr::Clone() const {
  auto out = std::make_unique<BoundExpr>();
  out->kind = kind;
  out->type = type;
  out->literal = literal;
  out->slot = slot;
  out->column_name = column_name;
  out->arith_op = arith_op;
  out->compare_op = compare_op;
  out->logic_is_and = logic_is_and;
  out->fn = fn;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

void BoundExpr::CollectSlots(std::set<size_t>* slots) const {
  if (kind == Kind::kColumnRef) slots->insert(slot);
  for (const auto& c : children) c->CollectSlots(slots);
}

void BoundExpr::RemapSlots(const std::map<size_t, size_t>& mapping) {
  if (kind == Kind::kColumnRef) {
    auto it = mapping.find(slot);
    if (it != mapping.end()) slot = it->second;
  }
  for (auto& c : children) c->RemapSlots(mapping);
}

std::string BoundExpr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumnRef:
      return column_name.empty() ? "$" + std::to_string(slot) : column_name;
    case Kind::kArith: {
      const char* op = arith_op == ArithOp::kAdd   ? "+"
                       : arith_op == ArithOp::kSub ? "-"
                       : arith_op == ArithOp::kMul ? "*"
                                                   : "/";
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    }
    case Kind::kCompare: {
      const char* op = compare_op == CompareOp::kEq   ? "="
                       : compare_op == CompareOp::kNe ? "<>"
                       : compare_op == CompareOp::kLt ? "<"
                       : compare_op == CompareOp::kLe ? "<="
                       : compare_op == CompareOp::kGt ? ">"
                                                      : ">=";
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    }
    case Kind::kLogic: {
      return "(" + children[0]->ToString() +
             (logic_is_and ? " AND " : " OR ") + children[1]->ToString() +
             ")";
    }
    case Kind::kNot:
      return "NOT(" + children[0]->ToString() + ")";
    case Kind::kNeg:
      return "-(" + children[0]->ToString() + ")";
    case Kind::kCall: {
      std::vector<std::string> args;
      args.reserve(children.size());
      for (const auto& c : children) args.push_back(c->ToString());
      return fn->signature.name() + "(" + Join(args, ", ") + ")";
    }
    case Kind::kParam:
      return "$param" + std::to_string(slot);
  }
  return "?";
}

BoundExprPtr MakeBoundLiteral(Value v) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExpr::Kind::kLiteral;
  e->type = v.RuntimeType();
  e->literal = std::move(v);
  return e;
}

BoundExprPtr MakeBoundColumnRef(size_t slot, DataType type,
                                std::string name) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExpr::Kind::kColumnRef;
  e->slot = slot;
  e->type = type;
  e->column_name = std::move(name);
  return e;
}

}  // namespace radb
