// Graph analytics on a relational engine: the edge list lives in an
// ordinary SQL table, the adjacency matrix is built with VECTORIZE /
// ROWMATRIX / SPARSIFY, and both traversals below are nothing but an
// iterated semiring vector-matrix multiply executed through SQL:
//
//   SSSP:   d <- min(d, d (min.+) A)     ('min_plus' semiring)
//   k-hop:  x <- or(x, x (or.&) A)       ('or_and'  semiring)
//
// A dense C++ reference runs the same synchronous relaxations; the
// process exits nonzero unless the SQL answers match it exactly.
#include <cstdio>
#include <iostream>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "workloads/graph.h"

namespace {

constexpr size_t kNodes = 64;
constexpr size_t kSource = 0;
constexpr size_t kHops = 4;

int Fail(const radb::Status& s) {
  std::cerr << "error: " << s << "\n";
  return 1;
}

void PrintFrontiers(const char* label,
                    const radb::workloads::TraversalResult& r) {
  std::printf("  %s frontier sizes:", label);
  for (size_t f : r.frontier_sizes) std::printf(" %zu", f);
  std::printf("  (%zu iterations)\n", r.frontier_sizes.size());
}

}  // namespace

int main() {
  using radb::workloads::GraphEdge;
  radb::Rng rng(42);

  // Sparse random digraph: ~3 out-edges per node, grid weights in
  // {0.5, 1.0, ..., 4.0} so every path length is exact in binary.
  std::vector<GraphEdge> edges;
  for (size_t s = 0; s < kNodes; ++s) {
    const size_t degree = 1 + rng.NextBelow(5);
    for (size_t e = 0; e < degree; ++e) {
      const int64_t dst = static_cast<int64_t>(rng.NextBelow(kNodes));
      const double w = 0.5 * static_cast<double>(1 + rng.NextBelow(8));
      edges.push_back({static_cast<int64_t>(s), dst, w});
    }
  }

  radb::Database db;
  radb::workloads::GraphAnalytics graph(&db);
  if (auto s = graph.LoadEdges(kNodes, edges); !s.ok()) return Fail(s);

  auto sssp = graph.Sssp(kSource);
  if (!sssp.ok()) return Fail(sssp.status());
  auto khop = graph.KHop(kSource, kHops);
  if (!khop.ok()) return Fail(khop.status());

  const std::vector<double> sssp_ref =
      radb::workloads::SsspOracle(kNodes, edges, kSource);
  const std::vector<double> khop_ref =
      radb::workloads::KHopOracle(kNodes, edges, kSource, kHops);

  size_t reached = 0, khop_count = 0;
  double farthest = 0.0;
  for (size_t i = 0; i < kNodes; ++i) {
    if (sssp->values[i] < radb::workloads::kUnreachable) {
      ++reached;
      if (sssp->values[i] > farthest) farthest = sssp->values[i];
    }
    if (khop->values[i] != 0.0) ++khop_count;
  }
  std::printf("Graph analytics over %zu nodes, %zu edges (pure SQL):\n",
              kNodes, edges.size());
  PrintFrontiers("SSSP ", *sssp);
  PrintFrontiers("k-hop", *khop);
  std::printf("  nodes reached from %zu   = %zu (farthest at distance %g)\n",
              kSource, reached, farthest);
  std::printf("  reachable in <= %zu hops = %zu\n", kHops, khop_count);

  const bool sssp_ok = sssp->values == sssp_ref;
  const bool khop_ok = khop->values == khop_ref;
  std::printf("  SQL == dense oracle: sssp=%s khop=%s\n",
              sssp_ok ? "yes" : "NO", khop_ok ? "yes" : "NO");
  return sssp_ok && khop_ok ? 0 : 1;
}
