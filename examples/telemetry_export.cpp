// Telemetry walkthrough: runs a small mixed workload through the
// service layer (so queue/latch phases are populated), then
//   1. queries the engine's own state through the radb_* system
//      tables — plain SQL, no special API,
//   2. prints the Prometheus text exposition a scraper would see,
//   3. prints the JSONL query-record feed (one line per query, with
//      the per-phase breakdown and est-vs-actual operator stats).
//
// scripts/metrics_dump.sh builds and runs this binary.
#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "la/random.h"
#include "service/session.h"

namespace {

using namespace radb;

Status Run() {
  Database::Config config;
  config.num_workers = 4;
  config.obs.enable_metrics = true;
  // Flag anything slower than 200 us so the slow-query log has output.
  config.telemetry.slow_query_micros = 200;
  Database db(config);

  RADB_RETURN_NOT_OK(
      db.Execute("CREATE TABLE points (id INTEGER, x VECTOR[16]);"
                 "CREATE TABLE labels (id INTEGER, y DOUBLE)")
          .status());
  Rng rng(7);
  std::vector<Row> xs, ys;
  for (int i = 0; i < 400; ++i) {
    xs.push_back({Value::Int(i), Value::FromVector(la::RandomVector(rng, 16))});
    ys.push_back({Value::Int(i), Value::Double(rng.NextDouble())});
  }
  RADB_RETURN_NOT_OK(db.BulkInsert("points", std::move(xs)));
  RADB_RETURN_NOT_OK(db.BulkInsert("labels", std::move(ys)));

  // The workload, through a service session so admission-queue and
  // catalog-latch waits land in the phase breakdown.
  service::SessionManager manager(&db);
  auto session = manager.CreateSession();
  const std::vector<std::string> workload = {
      "SELECT SUM(outer_product(p.x, p.x)) FROM points AS p",
      "SELECT COUNT(*), SUM(l.y) FROM labels AS l WHERE l.y > 0.5",
      "SELECT SUM(p.x * l.y) FROM points AS p, labels AS l "
      "WHERE p.id = l.id",
  };
  for (const std::string& sql : workload) {
    RADB_RETURN_NOT_OK(session->Execute(sql).status());
  }

  // 1. Introspection through SQL.
  const std::vector<std::pair<const char*, const char*>> probes = {
      {"user tables", "SELECT name, num_rows, bytes FROM radb_tables"},
      {"recent queries",
       "SELECT query_id, status, rows, execute_micros, total_micros "
       "FROM radb_queries WHERE session_id > 0"},
      {"time by phase",
       "SELECT phase, SUM(micros) AS micros FROM radb_query_phases "
       "WHERE session_id > 0 GROUP BY phase"},
      {"operator est vs actual",
       "SELECT o.name, o.est_rows, o.actual_rows, o.skew "
       "FROM radb_operators AS o, radb_queries AS q "
       "WHERE o.query_id = q.query_id AND q.session_id > 0"},
  };
  for (const auto& [title, sql] : probes) {
    std::printf("---- %s ----\n  %s\n", title, sql);
    auto rs = db.Execute(sql);
    RADB_RETURN_NOT_OK(rs.status());
    std::printf("%s\n", rs->last().ToString().c_str());
  }

  // 2 + 3. The exporter's two renders, straight to stdout.
  obs::TelemetryExporter exporter(db.metrics_registry(),
                                  db.telemetry_store());
  std::printf("---- Prometheus exposition ----\n%s\n",
              exporter.RenderPrometheus().c_str());
  std::printf("---- JSONL query records ----\n%s",
              exporter.RenderJsonl().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  if (Status s = Run(); !s.ok()) {
    std::fprintf(stderr, "telemetry_export failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  return 0;
}
