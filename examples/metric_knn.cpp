// The paper's motivating example (§2.2-2.3): distances under a
// Riemannian metric A, d²(x_i, x') = (x_i - x')ᵀ A (x_i - x'),
// computed for one query point against the whole table — the kernel of
// a kNN classifier — written in the extended SQL.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "la/random.h"

namespace {

constexpr size_t kN = 500;
constexpr size_t kD = 16;
constexpr size_t kQueryPoint = 123;
constexpr size_t kK = 5;

int Fail(const radb::Status& s) {
  std::cerr << "error: " << s << "\n";
  return 1;
}

}  // namespace

int main() {
  using radb::Value;
  radb::Rng rng(7);

  radb::Database db;
  if (auto s = db.Execute(
          "CREATE TABLE data (pointID INTEGER, val VECTOR[16]);"
          "CREATE TABLE matrixA (val MATRIX[16][16])");
      !s.ok()) {
    return Fail(s.status());
  }

  std::vector<radb::la::Vector> points;
  std::vector<radb::Row> rows;
  for (size_t i = 0; i < kN; ++i) {
    points.push_back(radb::la::RandomVector(rng, kD));
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::FromVector(points.back())});
  }
  radb::la::Matrix a = radb::la::RandomSpdMatrix(rng, kD);
  if (auto s = db.BulkInsert("data", std::move(rows)); !s.ok()) {
    return Fail(s);
  }
  if (auto s = db.BulkInsert("matrixA", {{Value::FromMatrix(a)}}); !s.ok()) {
    return Fail(s);
  }

  // The paper's §2.3 query, with ordering to get the k nearest.
  auto rs = db.Execute(
      "SELECT x2.pointID, "
      "  inner_product(matrix_vector_multiply(a.val, x1.val - x2.val), "
      "                x1.val - x2.val) AS value "
      "FROM data AS x1, data AS x2, matrixA AS a "
      "WHERE x1.pointID = " +
      std::to_string(kQueryPoint) +
      " AND x2.pointID <> " + std::to_string(kQueryPoint) +
      " ORDER BY value LIMIT " + std::to_string(kK));
  if (!rs.ok()) return Fail(rs.status());

  std::printf("%zu nearest neighbours of point %zu under metric A:\n", kK,
              kQueryPoint);
  std::printf("%-10s %-14s %-14s\n", "pointID", "SQL d^2", "check d^2");
  for (size_t r = 0; r < rs->last().num_rows(); ++r) {
    auto pid_cell = rs->last().Get(r, 0);
    auto dist_cell = rs->last().Get(r, 1);
    if (!pid_cell.ok()) return Fail(pid_cell.status());
    if (!dist_cell.ok()) return Fail(dist_cell.status());
    const int64_t pid = pid_cell->AsInt().value();
    const double dist = dist_cell->AsDouble().value();
    // Direct verification.
    auto diff = radb::la::Sub(points[kQueryPoint],
                              points[static_cast<size_t>(pid)]);
    auto av = radb::la::MatrixVectorMultiply(a, *diff);
    const double check = *radb::la::InnerProduct(*av, *diff);
    std::printf("%-10lld %-14.6f %-14.6f\n",
                static_cast<long long>(pid), dist, check);
  }

  std::printf("\nquery ran over %zu points; per-operator metrics:\n%s", kN,
              db.last_metrics().ToString().c_str());
  return 0;
}
