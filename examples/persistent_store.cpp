// Persistent store tour: open a durable database, load a tiled
// matrix, index its coordinates, kill the in-process handle, and
// reopen — catalog, rows, and index all come back from disk with
// zero re-ingest (DESIGN.md §15). Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/persistent_store
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "api/database.h"

using radb::Database;

namespace {

int Fail(const radb::Status& s) {
  std::cerr << s << "\n";
  return 1;
}

}  // namespace

int main() {
  char dir_template[] = "/tmp/radb_example_store_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string dir = dir_template;

  Database::Config config;
  config.num_workers = 4;
  // Durability knobs live in config.storage.* and are validated at
  // Open — e.g. a pool bigger than the global memory budget is an
  // InvalidArgument here, not a thrashing mystery later.
  config.storage.buffer_pool_bytes = 8u << 20;
  config.storage.segment_bytes = 16u << 10;

  // 1. First life: create, load, index, and close cleanly.
  {
    auto opened = Database::Open(dir, config);
    if (!opened.ok()) return Fail(opened.status());
    std::unique_ptr<Database> db = std::move(*opened);

    // Every mutating statement is WAL-logged and fsync'd before
    // Execute returns; a crash right after this block would lose
    // nothing.
    auto s = db->Execute(
        "CREATE TABLE tiles (tr INTEGER, tc INTEGER, mat MATRIX[4][4])");
    if (!s.ok()) return Fail(s.status());
    for (int tr = 0; tr < 8; ++tr) {
      for (int tc = 0; tc < 8; ++tc) {
        auto ins = db->Execute(
            "INSERT INTO tiles VALUES (" + std::to_string(tr) + ", " +
            std::to_string(tc) + ", identity_matrix(4) * " +
            std::to_string(tr * 8 + tc) + ".0)");
        if (!ins.ok()) return Fail(ins.status());
      }
    }

    // A B+ tree over the tile coordinates: bounded filters become
    // index range scans instead of full-table walks.
    s = db->Execute("CREATE INDEX tile_idx ON tiles (tr, tc)");
    if (!s.ok()) return Fail(s.status());

    auto plan = db->Execute(
        "EXPLAIN SELECT mat FROM tiles WHERE tr = 3 AND tc = 5");
    if (!plan.ok()) return Fail(plan.status());
    std::cout << "plan in first life:\n" << plan->last().ToString() << "\n";

    // Close checkpoints (seals page files, truncates the WAL) and
    // releases the directory lock so this same process can reopen.
    if (auto c = db->Close(); !c.ok()) return Fail(c);
  }

  // 2. Second life: everything is back from page files alone.
  auto reopened = Database::Open(dir, config);
  if (!reopened.ok()) return Fail(reopened.status());
  std::unique_ptr<Database> db = std::move(*reopened);

  auto stats = db->Execute(
      "SELECT replayed_statements, recovered, checkpoints "
      "FROM radb_bufferpool");
  if (!stats.ok()) return Fail(stats.status());
  std::cout << "recovery stats (zero replayed = zero re-ingest):\n"
            << stats->last().ToString() << "\n";

  auto probe = db->Execute(
      "SELECT tr, tc, trace(mat) AS trace FROM tiles "
      "WHERE tr = 3 AND tc >= 4 AND tc <= 6 ORDER BY tc");
  if (!probe.ok()) return Fail(probe.status());
  std::cout << "indexed probe after restart:\n"
            << probe->last().ToString() << "\n";

  auto indexes = db->Execute("SELECT * FROM radb_indexes");
  if (!indexes.ok()) return Fail(indexes.status());
  std::cout << "surviving indexes:\n" << indexes->last().ToString() << "\n";

  std::cout << "data directory: " << dir << " (left on disk for "
            << "inspection — page files, radb.cat, radb.wal)\n";
  return 0;
}
