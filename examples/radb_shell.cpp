// Interactive SQL shell over the engine: type statements terminated by
// ';', see results (and per-operator metrics with `\metrics on`).
//
//   $ ./build/examples/radb_shell
//   radb> CREATE TABLE v (vec VECTOR[4]);
//   radb> INSERT INTO v VALUES (ones_vector(4)), (zeros_vector(4));
//   radb> SELECT SUM(outer_product(vec, vec)) FROM v;
//   radb> EXPLAIN SELECT SUM(vec) FROM v;
//   radb> \q
#include <iostream>
#include <string>

#include "api/database.h"

namespace {

void PrintHelp() {
  std::cout << "commands:\n"
               "  <sql statement>;      run SQL (multi-line ok)\n"
               "  \\metrics on|off       toggle per-operator metrics\n"
               "  \\tables               list tables\n"
               "  \\help                 this message\n"
               "  \\q                    quit\n";
}

}  // namespace

int main() {
  radb::Database db;
  bool show_metrics = false;
  std::string buffer;
  std::cout << "radb shell — extended SQL with VECTOR/MATRIX types. "
               "\\help for help.\n";
  std::cout << "radb> " << std::flush;
  std::string line;
  while (std::getline(std::cin, line)) {
    // Backslash commands act immediately when the buffer is empty.
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\q" || line == "\\quit") break;
      if (line == "\\help") {
        PrintHelp();
      } else if (line == "\\metrics on") {
        show_metrics = true;
      } else if (line == "\\metrics off") {
        show_metrics = false;
      } else if (line == "\\tables") {
        for (const std::string& name : db.catalog().TableNames()) {
          auto table = db.catalog().GetTable(name);
          std::cout << "  " << name << " ("
                    << (table.ok() ? (*table)->num_rows() : 0)
                    << " rows)\n";
        }
      } else {
        std::cout << "unknown command; \\help for help\n";
      }
      std::cout << "radb> " << std::flush;
      continue;
    }
    buffer += line;
    buffer += '\n';
    // Execute once the statement (or script) is ';'-terminated.
    const size_t last = buffer.find_last_not_of(" \t\n\r");
    if (last == std::string::npos || buffer[last] != ';') {
      std::cout << "   -> " << std::flush;
      continue;
    }
    auto rs = db.Execute(buffer);
    buffer.clear();
    if (!rs.ok()) {
      std::cout << rs.status() << "\n";
    } else if (!rs->has_results()) {
      std::cout << "OK\n";
      if (show_metrics) {
        std::cout << db.last_metrics().ToString();
      }
    } else {
      if (rs->last().num_columns() > 0) {
        std::cout << rs->last().ToString(50);
      }
      std::cout << "(" << rs->last().num_rows() << " rows)\n";
      if (show_metrics) {
        std::cout << db.last_metrics().ToString();
      }
    }
    std::cout << "radb> " << std::flush;
  }
  std::cout << "\n";
  return 0;
}
