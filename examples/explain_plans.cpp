// The paper's §4.1 optimizer story, interactively: the same query
// planned with and without LA-aware costing, showing how templated
// type signatures change the chosen join order and where the
// matrix_multiply projection runs.
#include <cstdio>
#include <iostream>

#include "api/database.h"

namespace {

radb::Status Load(radb::Database* db, size_t k) {
  using radb::Value;
  RADB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE r (r_rid INTEGER, r_matrix MATRIX[10][" +
                     std::to_string(k) +
                     "]);"
                     "CREATE TABLE s (s_sid INTEGER, s_matrix MATRIX[" +
                     std::to_string(k) +
                     "][100]);"
                     "CREATE TABLE t (t_rid INTEGER, t_sid INTEGER)")
          .status());
  std::vector<radb::Row> r_rows, s_rows, t_rows;
  for (int i = 0; i < 10; ++i) {
    r_rows.push_back(
        {Value::Int(i), Value::FromMatrix(radb::la::Matrix(10, k, 1.0))});
    s_rows.push_back(
        {Value::Int(i), Value::FromMatrix(radb::la::Matrix(k, 100, 1.0))});
  }
  for (int i = 0; i < 100; ++i) {
    t_rows.push_back({Value::Int(i % 10), Value::Int((i * 3) % 10)});
  }
  RADB_RETURN_NOT_OK(db->BulkInsert("r", std::move(r_rows)));
  RADB_RETURN_NOT_OK(db->BulkInsert("s", std::move(s_rows)));
  return db->BulkInsert("t", std::move(t_rows));
}

constexpr const char* kQuery =
    "SELECT matrix_multiply(r_matrix, s_matrix) "
    "FROM r, s, t WHERE r_rid = t_rid AND s_sid = t_sid";

}  // namespace

int main() {
  constexpr size_t kK = 1000;  // scaled-down 100000 of the paper

  std::printf("query:\n  %s\n\n", kQuery);

  {
    radb::Database db;  // LA-aware costing + early projection (default)
    if (auto s = Load(&db, kK); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    auto explain = db.Explain(kQuery);
    if (!explain.ok()) {
      std::cerr << explain.status() << "\n";
      return 1;
    }
    std::printf("--- LA-aware optimizer (paper §4) ---\n%s\n",
                explain->c_str());
    auto rs = db.Execute(kQuery);
    if (!rs.ok()) {
      std::cerr << rs.status() << "\n";
      return 1;
    }
    std::printf("executed: %zu result rows\n%s\n", rs->last().num_rows(),
                db.last_metrics().ToString().c_str());
  }
  {
    radb::Database::Config config;
    config.optimizer.la_aware_costing = false;
    config.optimizer.enable_early_projection = false;
    radb::Database db(config);
    if (auto s = Load(&db, kK); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    auto explain = db.Explain(kQuery);
    if (!explain.ok()) {
      std::cerr << explain.status() << "\n";
      return 1;
    }
    std::printf("--- size-oblivious optimizer (the §4.1 strawman) ---\n%s\n",
                explain->c_str());
    auto rs = db.Execute(kQuery);
    if (!rs.ok()) {
      std::cerr << rs.status() << "\n";
      return 1;
    }
    std::printf("executed: %zu result rows\n%s\n", rs->last().num_rows(),
                db.last_metrics().ToString().c_str());
  }
  return 0;
}
