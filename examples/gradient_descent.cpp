// Iterative machine learning against data that lives in the database —
// the paper's intro argument: no extract-transform-reload, the
// analytics loop just issues SQL. Batch gradient descent for linear
// regression; each iteration is one vector-typed aggregate query:
//
//   grad = (2/n) * SUM( x_i * (<x_i, beta> - y_i) )
//
// The current beta is stored in a single-tuple table that the next
// query joins against.
#include <cstdio>
#include <iostream>

#include "api/database.h"
#include "common/rng.h"
#include "la/random.h"

namespace {

constexpr size_t kN = 2000;
constexpr size_t kD = 8;
constexpr int kIters = 200;
constexpr double kLearningRate = 0.08;

int Fail(const radb::Status& s) {
  std::cerr << "error: " << s << "\n";
  return 1;
}

}  // namespace

int main() {
  using radb::Value;
  radb::Rng rng(21);

  // Ground-truth model and noisy observations.
  radb::la::Vector beta_true = radb::la::RandomVector(rng, kD);
  radb::Database db;
  if (auto s = db.Execute("CREATE TABLE xy (x VECTOR[8], y DOUBLE); "
                             "CREATE TABLE beta (b VECTOR[8])");
      !s.ok()) {
    return Fail(s.status());
  }
  std::vector<radb::Row> rows;
  for (size_t i = 0; i < kN; ++i) {
    radb::la::Vector x = radb::la::RandomVector(rng, kD);
    const double y =
        *radb::la::InnerProduct(x, beta_true) + rng.Uniform(-0.05, 0.05);
    rows.push_back({Value::FromVector(std::move(x)), Value::Double(y)});
  }
  if (auto s = db.BulkInsert("xy", std::move(rows)); !s.ok()) return Fail(s);
  if (auto s = db.BulkInsert(
          "beta", {{Value::FromVector(radb::la::Vector(kD, 0.0))}});
      !s.ok()) {
    return Fail(s);
  }

  std::printf("batch gradient descent, %d iterations over %zu rows:\n",
              kIters, kN);
  for (int iter = 0; iter < kIters; ++iter) {
    // One SQL round trip per iteration: gradient + loss.
    auto rs = db.Execute(
        "SELECT SUM(xy.x * (inner_product(xy.x, beta.b) - xy.y)) AS g, "
        "       SUM((inner_product(xy.x, beta.b) - xy.y) * "
        "           (inner_product(xy.x, beta.b) - xy.y)) AS loss "
        "FROM xy, beta");
    if (!rs.ok()) return Fail(rs.status());
    // Look the output columns up by name instead of trusting their
    // positions in the SELECT list.
    auto g_col = rs->last().ColumnIndex("g");
    auto loss_col = rs->last().ColumnIndex("loss");
    if (!g_col.ok()) return Fail(g_col.status());
    if (!loss_col.ok()) return Fail(loss_col.status());
    auto g_cell = rs->last().Get(0, *g_col);
    auto loss_cell = rs->last().Get(0, *loss_col);
    if (!g_cell.ok()) return Fail(g_cell.status());
    if (!loss_cell.ok()) return Fail(loss_cell.status());
    auto grad = g_cell->vector();
    const double loss = loss_cell->AsDouble().value() / kN;

    // beta <- beta - lr * (2/n) * grad, written back through SQL.
    auto updated = db.Execute(
        "CREATE TABLE beta_next AS "
        "SELECT beta.b - (g.gv * " +
        std::to_string(2.0 * kLearningRate / kN) +
        ") AS b "
        "FROM beta, (SELECT SUM(xy.x * (inner_product(xy.x, beta.b) - "
        "xy.y)) AS gv FROM xy, beta) AS g; "
        "DROP TABLE beta; "
        "CREATE TABLE beta AS SELECT b FROM beta_next; "
        "DROP TABLE beta_next");
    if (!updated.ok()) return Fail(updated.status());

    if (iter % 25 == 0 || iter == kIters - 1) {
      std::printf("  iter %3d  mse %.6f  |grad| %.4f\n", iter, loss,
                  grad.Norm2());
    }
  }

  auto final_beta = db.Execute("SELECT b FROM beta");
  if (!final_beta.ok()) return Fail(final_beta.status());
  auto beta = final_beta->last().ScalarVector();
  std::printf("\nmax |beta - beta_true| = %.4f (noise-limited)\n",
              beta->MaxAbsDiff(beta_true));
  return 0;
}
