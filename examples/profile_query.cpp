// Profiling walkthrough: runs the paper's §4.1 R/S/T query with the
// observability subsystem switched on, then prints
//   1. the span tree of the whole parse→bind→optimize→execute
//      pipeline (where did the milliseconds go?),
//   2. the EXPLAIN ANALYZE rendering (estimated vs actual rows,
//      shuffle volume, worker skew per plan node),
//   3. the metrics-registry JSON snapshot (counters such as
//      la.matmul_flops that the LA kernels publish).
//
// The same artifacts can be written to files via
// Database::Config::obs::{trace_path,metrics_path}; the trace loads
// in chrome://tracing or https://ui.perfetto.dev.
#include <cstdio>

#include "api/database.h"

namespace {

using namespace radb;

constexpr size_t kK = 400;  // the paper's 100000, scaled way down

Status Run() {
  Database::Config config;
  config.num_workers = 4;
  config.obs.enable_tracing = true;
  config.obs.enable_metrics = true;
  Database db(config);

  RADB_RETURN_NOT_OK(
      db.Execute("CREATE TABLE r (r_rid INTEGER, r_matrix MATRIX[10][" +
                    std::to_string(kK) +
                    "]); "
                    "CREATE TABLE s (s_sid INTEGER, s_matrix MATRIX[" +
                    std::to_string(kK) +
                    "][100]); "
                    "CREATE TABLE t (t_rid INTEGER, t_sid INTEGER)")
          .status());
  std::vector<Row> r_rows, s_rows, t_rows;
  for (int i = 0; i < 8; ++i) {
    r_rows.push_back(
        {Value::Int(i), Value::FromMatrix(la::Matrix(10, kK, 0.25))});
    s_rows.push_back(
        {Value::Int(i), Value::FromMatrix(la::Matrix(kK, 100, 0.25))});
  }
  for (int i = 0; i < 32; ++i) {
    t_rows.push_back({Value::Int(i % 8), Value::Int((i * 3) % 8)});
  }
  RADB_RETURN_NOT_OK(db.BulkInsert("r", std::move(r_rows)));
  RADB_RETURN_NOT_OK(db.BulkInsert("s", std::move(s_rows)));
  RADB_RETURN_NOT_OK(db.BulkInsert("t", std::move(t_rows)));

  const std::string query =
      "SELECT matrix_multiply(r_matrix, s_matrix) "
      "FROM r, s, t WHERE r_rid = t_rid AND s_sid = t_sid";

  RADB_RETURN_NOT_OK(db.Execute(query).status());
  std::printf("=== span tree (wall-clock, per pipeline phase) ===\n%s\n",
              db.tracer()->ToTextTree().c_str());

  RADB_ASSIGN_OR_RETURN(ScriptResult analyzed_script,
                        db.Execute("EXPLAIN ANALYZE " + query));
  const ResultSet& analyzed = analyzed_script.last();
  std::printf("=== EXPLAIN ANALYZE ===\n");
  for (size_t i = 0; i < analyzed.num_rows(); ++i) {
    RADB_ASSIGN_OR_RETURN(Value line, analyzed.Get(i, 0));
    std::printf("%s\n", line.string_value().c_str());
  }

  std::printf("\n=== per-operator metrics of that run ===\n%s\n",
              db.last_metrics().ToString().c_str());
  std::printf("=== metrics registry snapshot ===\n%s\n",
              db.metrics_registry()->ToJson().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status s = Run();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
