// Concurrent query service: many sessions on one Database, with
// admission control, a deadline that fires, and a mid-query cancel.
// Build and run:
//   cmake -B build && cmake --build build
//   ./build/examples/concurrent_service
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "la/random.h"
#include "service/session.h"

using radb::Database;
using radb::QueryOptions;
using radb::Value;

int main() {
  // One Database, shared by every session. Metrics are on so the
  // service's admitted/queued/cancelled counters and latency
  // histograms land in the same registry as the executor's.
  Database::Config config;
  config.num_workers = 8;
  config.obs.enable_metrics = true;
  Database db(config);

  if (auto s = db.Execute("CREATE TABLE x_vm (id INTEGER, value VECTOR[40])");
      !s.ok()) {
    std::cerr << s.status() << "\n";
    return 1;
  }
  radb::Rng rng(7);
  std::vector<radb::Row> rows;
  for (int64_t i = 0; i < 4000; ++i) {
    rows.push_back({Value::Int(i), Value::FromVector(
                                       radb::la::RandomVector(rng, 40))});
  }
  if (auto s = db.BulkInsert("x_vm", std::move(rows)); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 1. A service: admission caps how many queries run at once and how
  //    much memory their budgets may claim in total.
  radb::service::ServiceConfig service_config;
  service_config.admission.max_concurrent_queries = 4;
  service_config.admission.global_memory_budget_bytes = 256u << 20;
  radb::service::SessionManager manager(&db, service_config);

  // 2. Concurrent sessions: three clients compute the same Gram
  //    matrix while a fourth interleaves short scans. Results are
  //    bit-identical to running each query alone.
  const char* kGram =
      "SELECT SUM(outer_product(x.value, x.value)) FROM x_vm AS x";
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      auto session = manager.CreateSession();
      auto rs = session->Execute(kGram);
      if (!rs.ok()) errors.fetch_add(1);
    });
  }
  clients.emplace_back([&] {
    auto session = manager.CreateSession();
    for (int i = 0; i < 5; ++i) {
      auto rs = session->Execute("SELECT COUNT(*) FROM x_vm");
      if (!rs.ok()) errors.fetch_add(1);
    }
  });
  for (auto& t : clients) t.join();
  std::printf("concurrent phase: %d error(s) across 4 sessions\n",
              errors.load());

  // 3. Deadlines: the clock starts at submission and covers admission
  //    queue wait. A 1 ms deadline on the heavy Gram query fires
  //    mid-execution and the call returns DeadlineExceeded.
  {
    auto session = manager.CreateSession();
    QueryOptions opts;
    opts.deadline_ms = 1;
    auto rs = session->Execute(kGram, opts);
    std::printf("deadline_ms=1  -> %s\n",
                rs.ok() ? "ok (machine too fast!)"
                        : rs.status().ToString().c_str());
  }

  // 4. Cancellation: query sequence numbers are handed out before
  //    execution starts, so another thread can cancel a running (or
  //    even not-yet-started) query. The executor notices at row-batch
  //    granularity and unwinds, releasing spill files and memory.
  {
    auto session = manager.CreateSession();
    const uint64_t seq = session->next_query_seq();
    std::thread canceller([&session, seq] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      session->Cancel(seq);
    });
    auto rs = session->Execute(kGram);
    canceller.join();
    std::printf("Cancel(seq=%llu) -> %s\n",
                static_cast<unsigned long long>(seq),
                rs.ok() ? "ok (finished before the cancel)"
                        : rs.status().ToString().c_str());
  }

  // 5. The service counters tell the story.
  auto* m = db.metrics_registry();
  std::printf("admitted=%llu queued=%llu cancelled=%llu rejected=%llu\n",
              static_cast<unsigned long long>(
                  m->counter("service.queries_admitted")->value()),
              static_cast<unsigned long long>(
                  m->counter("service.queries_queued")->value()),
              static_cast<unsigned long long>(
                  m->counter("service.queries_cancelled")->value()),
              static_cast<unsigned long long>(
                  m->counter("service.queries_rejected")->value()));
  return errors.load() == 0 ? 0 : 1;
}
