// k-means clustering with the data living in the database: each Lloyd
// iteration assigns points to the nearest centroid and recomputes the
// centroids — all through vector-typed SQL. The assignment uses
// argmin over per-centroid distances packed into a vector with
// VECTORIZE + labeled scalars (§3.3), and the centroid update is a
// grouped SUM of vectors divided by COUNT (§3.2).
#include <cstdio>
#include <iostream>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "la/random.h"

namespace {

constexpr size_t kPointsPerCluster = 300;
constexpr size_t kD = 6;
constexpr size_t kK = 4;
constexpr int kIters = 12;

int Fail(const radb::Status& s) {
  std::cerr << "error: " << s << "\n";
  return 1;
}

}  // namespace

int main() {
  using radb::Value;
  radb::Rng rng(33);

  // Well-separated synthetic clusters.
  std::vector<radb::la::Vector> true_centers;
  for (size_t c = 0; c < kK; ++c) {
    radb::la::Vector center = radb::la::RandomVector(rng, kD, -10, 10);
    true_centers.push_back(center);
  }

  radb::Database db;
  if (auto s = db.Execute("CREATE TABLE pts (id INTEGER, x VECTOR[6]); "
                             "CREATE TABLE centroids (cid INTEGER, "
                             "c VECTOR[6])");
      !s.ok()) {
    return Fail(s.status());
  }
  std::vector<radb::Row> rows;
  for (size_t c = 0; c < kK; ++c) {
    for (size_t i = 0; i < kPointsPerCluster; ++i) {
      radb::la::Vector x = true_centers[c];
      for (size_t j = 0; j < kD; ++j) x[j] += rng.Uniform(-0.5, 0.5);
      rows.push_back({Value::Int(static_cast<int64_t>(rows.size())),
                      Value::FromVector(std::move(x))});
    }
  }
  if (auto s = db.BulkInsert("pts", std::move(rows)); !s.ok()) {
    return Fail(s);
  }
  // Initialize centroids from the first point of each cluster.
  std::vector<radb::Row> init;
  for (size_t c = 0; c < kK; ++c) {
    init.push_back({Value::Int(static_cast<int64_t>(c)),
                    Value::FromVector(true_centers[c])});
  }
  // Perturb so the example actually has to converge.
  for (radb::Row& r : init) {
    radb::la::Vector v = r[1].vector();
    for (size_t j = 0; j < kD; ++j) v[j] += rng.Uniform(-2, 2);
    r[1] = Value::FromVector(std::move(v));
  }
  if (auto s = db.BulkInsert("centroids", std::move(init)); !s.ok()) {
    return Fail(s);
  }

  std::printf("k-means, k=%zu, %zu points, %d Lloyd iterations in SQL:\n",
              kK, kK * kPointsPerCluster, kIters);
  for (int iter = 0; iter < kIters; ++iter) {
    // Assignment: pack the k distances of each point into a vector
    // indexed by centroid id, then take argmin (§3.3 labels at work).
    // Update: grouped element-wise SUM / COUNT.
    auto step = db.Execute(
        "CREATE VIEW assign (id, x, cluster) AS "
        "  SELECT a.id, a.x, argmin_vector(a.dists) FROM "
        "  (SELECT p.id AS id, p.x AS x, "
        "          VECTORIZE(label_scalar(inner_product(p.x - k.c, "
        "                                               p.x - k.c), "
        "                                 k.cid)) AS dists "
        "   FROM pts AS p, centroids AS k GROUP BY p.id, p.x) AS a; "
        "CREATE TABLE centroids_next AS "
        "  SELECT cluster AS cid, SUM(x) / COUNT(x) AS c FROM assign "
        "  GROUP BY cluster; "
        "DROP VIEW assign; "
        "DROP TABLE centroids; "
        "CREATE TABLE centroids AS SELECT cid, c FROM centroids_next; "
        "DROP TABLE centroids_next");
    if (!step.ok()) return Fail(step.status());
  }

  // Inspect the result: every learned centroid should sit within the
  // noise radius of one true center.
  auto rs = db.Execute("SELECT cid, c FROM centroids ORDER BY cid");
  if (!rs.ok()) return Fail(rs.status());
  double worst = 0;
  for (size_t r = 0; r < rs->last().num_rows(); ++r) {
    auto cid_cell = rs->last().Get(r, 0);
    auto c_cell = rs->last().Get(r, 1);
    if (!cid_cell.ok()) return Fail(cid_cell.status());
    if (!c_cell.ok()) return Fail(c_cell.status());
    const radb::la::Vector& c = c_cell->vector();
    double best = 1e300;
    size_t best_true = 0;
    for (size_t t = 0; t < kK; ++t) {
      const double d = c.MaxAbsDiff(true_centers[t]);
      if (d < best) {
        best = d;
        best_true = t;
      }
    }
    worst = std::max(worst, best);
    std::printf("  centroid %lld -> true center %zu, max coord error %.4f\n",
                static_cast<long long>(cid_cell->AsInt().value()),
                best_true, best);
  }
  std::printf("worst centroid error: %.4f (noise half-width is 0.5)\n",
              worst);
  return worst < 0.5 ? 0 : 1;
}
