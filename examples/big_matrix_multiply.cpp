// Distributed multiplication of matrices that are "too big for one
// machine" (paper §3.4): store them relationally as tiles and let the
// database's join + GROUP BY machinery do the distributed multiply.
#include <cstdio>
#include <iostream>

#include "api/database.h"
#include "common/rng.h"
#include "la/random.h"
#include "la/tiled.h"

namespace {

constexpr size_t kSide = 480;  // logical matrix is kSide x kSide
constexpr size_t kTile = 120;  // stored as 4 x 4 grid of tiles

int Fail(const radb::Status& s) {
  std::cerr << "error: " << s << "\n";
  return 1;
}

}  // namespace

int main() {
  using radb::Value;
  radb::Rng rng(11);
  radb::la::Matrix a = radb::la::RandomMatrix(rng, kSide, kSide);
  radb::la::Matrix b = radb::la::RandomMatrix(rng, kSide, kSide);

  radb::Database db;
  const std::string tile_type =
      "MATRIX[" + std::to_string(kTile) + "][" + std::to_string(kTile) + "]";
  if (auto s = db.Execute(
          "CREATE TABLE bigMatrix (tileRow INTEGER, tileCol INTEGER, mat " +
          tile_type +
          ");"
          "CREATE TABLE anotherBigMat (tileRow INTEGER, tileCol INTEGER, "
          "mat " +
          tile_type + ")");
      !s.ok()) {
    return Fail(s.status());
  }

  auto load = [&](const char* table, const radb::la::Matrix& m) {
    std::vector<radb::Row> rows;
    for (radb::la::Tile& t : radb::la::SplitIntoTiles(m, kTile, kTile)) {
      rows.push_back({Value::Int(static_cast<int64_t>(t.tile_row)),
                      Value::Int(static_cast<int64_t>(t.tile_col)),
                      Value::FromMatrix(std::move(t.mat))});
    }
    return db.BulkInsert(table, std::move(rows));
  };
  if (auto s = load("bigMatrix", a); !s.ok()) return Fail(s);
  if (auto s = load("anotherBigMat", b); !s.ok()) return Fail(s);

  // The §3.4 query, verbatim.
  const char* kQuery =
      "SELECT lhs.tileRow, rhs.tileCol, "
      "SUM(matrix_multiply(lhs.mat, rhs.mat)) "
      "FROM bigMatrix AS lhs, anotherBigMat AS rhs "
      "WHERE lhs.tileCol = rhs.tileRow "
      "GROUP BY lhs.tileRow, rhs.tileCol";

  auto explain = db.Explain(kQuery);
  if (explain.ok()) std::printf("plan:\n%s\n", explain->c_str());

  auto rs = db.Execute(kQuery);
  if (!rs.ok()) return Fail(rs.status());

  // Reassemble and verify against a dense multiply, reading cells
  // through the bounds-checked accessor.
  std::vector<radb::la::Tile> tiles;
  for (size_t r = 0; r < rs->last().num_rows(); ++r) {
    auto tr = rs->last().Get(r, 0);
    auto tc = rs->last().Get(r, 1);
    auto mat = rs->last().Get(r, 2);
    if (!tr.ok()) return Fail(tr.status());
    if (!tc.ok()) return Fail(tc.status());
    if (!mat.ok()) return Fail(mat.status());
    tiles.push_back(radb::la::Tile{
        static_cast<size_t>(tr->AsInt().value()),
        static_cast<size_t>(tc->AsInt().value()), mat->matrix()});
  }
  auto assembled = radb::la::AssembleTiles(tiles);
  if (!assembled.ok()) return Fail(assembled.status());
  auto expected = radb::la::Multiply(a, b);

  std::printf("multiplied two %zux%zu matrices as %zu tiles each\n", kSide,
              kSide, (kSide / kTile) * (kSide / kTile));
  std::printf("result tiles: %zu, max |SQL - dense| = %.3g\n",
              rs->last().num_rows(), assembled->MaxAbsDiff(*expected));
  std::printf("\nexecution metrics:\n%s",
              db.last_metrics().ToString().c_str());
  return 0;
}
