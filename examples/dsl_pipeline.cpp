// The architecture the paper proposes in §1: a math-like DSL on top of
// the extended SQL. The DSL re-associates matrix-multiply chains (a
// transformation the SQL optimizer cannot do, as the paper notes) and
// then compiles to one SELECT against the relational engine.
#include <cstdio>
#include <iostream>

#include "common/rng.h"
#include "dsl/expr.h"
#include "la/random.h"

int main() {
  using radb::Value;
  using radb::dsl::Expr;
  radb::Rng rng(5);

  radb::Database db;
  // A skewed chain: u (400x5) * v (5x300) * w (300x8).
  auto status = db.Execute(
      "CREATE TABLE u (mat MATRIX[400][5]);"
      "CREATE TABLE v (mat MATRIX[5][300]);"
      "CREATE TABLE w (mat MATRIX[300][8])");
  if (!status.ok()) {
    std::cerr << status.status() << "\n";
    return 1;
  }
  radb::la::Matrix u = radb::la::RandomMatrix(rng, 400, 5);
  radb::la::Matrix v = radb::la::RandomMatrix(rng, 5, 300);
  radb::la::Matrix w = radb::la::RandomMatrix(rng, 300, 8);
  (void)db.BulkInsert("u", {{Value::FromMatrix(u)}});
  (void)db.BulkInsert("v", {{Value::FromMatrix(v)}});
  (void)db.BulkInsert("w", {{Value::FromMatrix(w)}});

  Expr chain = Expr::Ref("u", "mat") * Expr::Ref("v", "mat") *
               Expr::Ref("w", "mat");

  auto sql = chain.ToSql(db.catalog());
  auto cost = chain.MultiplyCost(db.catalog());
  if (!sql.ok() || !cost.ok()) {
    std::cerr << sql.status() << "\n";
    return 1;
  }
  std::printf("DSL expression:  u * v * w\n");
  std::printf("emitted SQL:     %s\n", sql->c_str());
  std::printf("multiply cost:   %.0f scalar multiplications "
              "(left-to-right would be %.0f)\n\n",
              *cost,
              400.0 * 5 * 300 + 400.0 * 300 * 8);

  auto result = chain.Eval(&db);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  auto uv = radb::la::Multiply(u, v);
  auto uvw = radb::la::Multiply(*uv, w);
  std::printf("result: %zux%zu, max |DSL - dense| = %.3g\n",
              result->rows(), result->cols(),
              result->MaxAbsDiff(*uvw));

  // The normal-equation estimator from the paper, written as math:
  //   beta_hat = (XᵀX)⁻¹ Xᵀ y
  (void)db.Execute("CREATE TABLE x (mat MATRIX[200][6]);"
                      "CREATE TABLE y (mat MATRIX[200][1])");
  radb::la::Matrix x = radb::la::RandomMatrix(rng, 200, 6);
  radb::la::Matrix y = radb::la::RandomMatrix(rng, 200, 1);
  (void)db.BulkInsert("x", {{Value::FromMatrix(x)}});
  (void)db.BulkInsert("y", {{Value::FromMatrix(y)}});
  Expr xe = Expr::Ref("x", "mat");
  Expr beta = (xe.T() * xe).Inv() * xe.T() * Expr::Ref("y", "mat");
  auto beta_sql = beta.ToSql(db.catalog());
  auto beta_val = beta.Eval(&db);
  if (!beta_sql.ok() || !beta_val.ok()) {
    std::cerr << beta_sql.status() << beta_val.status() << "\n";
    return 1;
  }
  std::printf("\nbeta_hat = (X'X)^-1 X'y compiles to:\n  %s\n",
              beta_sql->c_str());
  std::printf("beta_hat is %zux%zu\n", beta_val->rows(),
              beta_val->cols());
  return 0;
}
