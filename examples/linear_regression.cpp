// Least-squares linear regression in SQL, three ways (paper §3.2-3.3):
// vectors + aggregates, whole-matrix, and blocked — all against a
// direct in-memory solve.
#include <cstdio>
#include <iostream>

#include "api/database.h"
#include "common/rng.h"
#include "la/random.h"

namespace {

constexpr size_t kN = 2000;
constexpr size_t kD = 12;

int Fail(const radb::Status& s) {
  std::cerr << "error: " << s << "\n";
  return 1;
}

}  // namespace

int main() {
  using radb::Value;
  radb::Rng rng(42);

  // Synthetic regression problem with known coefficients.
  radb::la::Vector beta_true = radb::la::RandomVector(rng, kD);
  radb::la::Matrix x = radb::la::RandomMatrix(rng, kN, kD);
  radb::la::Vector y(kN);
  for (size_t i = 0; i < kN; ++i) {
    auto dot = radb::la::InnerProduct(x.Row(i), beta_true);
    y[i] = *dot + rng.Uniform(-0.01, 0.01);  // small noise
  }

  radb::Database db;
  auto ddl = db.Execute(
      "CREATE TABLE xv (i INTEGER, x_i VECTOR[12]);"
      "CREATE TABLE y (i INTEGER, y_i DOUBLE);"
      "CREATE TABLE xm (mat MATRIX[][]); CREATE TABLE yv (vec VECTOR[])");
  if (!ddl.ok()) return Fail(ddl.status());

  std::vector<radb::Row> xrows, yrows;
  for (size_t i = 0; i < kN; ++i) {
    xrows.push_back({Value::Int(static_cast<int64_t>(i)),
                     Value::FromVector(x.Row(i))});
    yrows.push_back({Value::Int(static_cast<int64_t>(i)),
                     Value::Double(y[i])});
  }
  if (auto s = db.BulkInsert("xv", std::move(xrows)); !s.ok()) return Fail(s);
  if (auto s = db.BulkInsert("y", std::move(yrows)); !s.ok()) return Fail(s);
  if (auto s = db.BulkInsert("xm", {{Value::FromMatrix(x)}}); !s.ok()) {
    return Fail(s);
  }
  if (auto s = db.BulkInsert("yv", {{Value::FromVector(y)}}); !s.ok()) {
    return Fail(s);
  }

  // Coding 1: data points as vectors (paper §3.2).
  auto rs1 = db.Execute(
      "SELECT matrix_vector_multiply("
      "  matrix_inverse(SUM(outer_product(xv.x_i, xv.x_i))), "
      "  SUM(xv.x_i * y.y_i)) "
      "FROM xv, y WHERE xv.i = y.i");
  if (!rs1.ok()) return Fail(rs1.status());
  auto beta1 = rs1->last().ScalarVector();
  if (!beta1.ok()) return Fail(beta1.status());

  // Coding 2: the whole matrix in one tuple (paper §3.3).
  auto rs2 = db.Execute(
      "SELECT matrix_vector_multiply("
      "  matrix_inverse(matrix_multiply(trans_matrix(mat), mat)), "
      "  matrix_vector_multiply(trans_matrix(mat), vec)) "
      "FROM xm, yv");
  if (!rs2.ok()) return Fail(rs2.status());
  auto beta2 = rs2->last().ScalarVector();
  if (!beta2.ok()) return Fail(beta2.status());

  // Coding 3: blocked — vectors grouped into matrices of 500 rows.
  auto blocked = db.Execute(
      "CREATE TABLE block_index (mi INTEGER);"
      "INSERT INTO block_index VALUES (0), (1), (2), (3);"
      "CREATE VIEW mlx (mi, m) AS "
      "  SELECT ind.mi, ROWMATRIX(label_vector(x.x_i, x.i - ind.mi * 500)) "
      "  FROM xv AS x, block_index AS ind WHERE x.i / 500 = ind.mi "
      "  GROUP BY ind.mi;"
      "CREATE VIEW yb (mi, v) AS "
      "  SELECT ind.mi, VECTORIZE(label_scalar(y.y_i, y.i - ind.mi * 500)) "
      "  FROM y, block_index AS ind WHERE y.i / 500 = ind.mi "
      "  GROUP BY ind.mi;"
      "SELECT matrix_vector_multiply(matrix_inverse(g.gm), c.cv) "
      "FROM (SELECT SUM(matrix_multiply(trans_matrix(m.m), m.m)) AS gm "
      "      FROM mlx AS m) AS g, "
      "     (SELECT SUM(matrix_vector_multiply(trans_matrix(m.m), yv.v)) "
      "      AS cv FROM mlx AS m, yb AS yv WHERE m.mi = yv.mi) AS c");
  if (!blocked.ok()) return Fail(blocked.status());
  auto beta3 = blocked->last().ScalarVector();
  if (!beta3.ok()) return Fail(beta3.status());

  std::printf("%-22s %-12s %-12s %-12s %-12s\n", "coefficient", "true",
              "vector-SQL", "matrix-SQL", "block-SQL");
  for (size_t j = 0; j < kD; ++j) {
    std::printf("beta[%zu]%*s %11.6f %12.6f %12.6f %12.6f\n", j,
                j < 10 ? 15 : 14, "", beta_true[j], (*beta1)[j],
                (*beta2)[j], (*beta3)[j]);
  }
  std::printf("\nmax |vector-SQL - matrix-SQL| = %.3g\n",
              beta1->MaxAbsDiff(*beta2));
  std::printf("max |vector-SQL - block-SQL|  = %.3g\n",
              beta1->MaxAbsDiff(*beta3));
  std::printf("max |vector-SQL - true|       = %.3g (noise-limited)\n",
              beta1->MaxAbsDiff(beta_true));
  return 0;
}
