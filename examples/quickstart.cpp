// Quickstart: create tables with VECTOR/MATRIX columns, load data, and
// run linear algebra in plain SQL. Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "api/database.h"

int main() {
  radb::Database db;

  // 1. LA types are just column types (paper §3.1).
  auto status = db.Execute(
      "CREATE TABLE m (mat MATRIX[3][3], vec VECTOR[3]);"
      "CREATE TABLE y (i INTEGER, y_i DOUBLE);"
      "INSERT INTO y VALUES (0, 1.5), (1, 2.5), (2, 3.5)");
  if (!status.ok()) {
    std::cerr << status.status() << "\n";
    return 1;
  }

  // 2. Load a matrix and a vector through the bulk API.
  radb::la::Matrix a(3, 3, {2, 0, 0, 0, 3, 0, 0, 0, 4});
  radb::la::Vector v(std::vector<double>{1, 1, 1});
  if (auto s = db.BulkInsert(
          "m", {{radb::Value::FromMatrix(a), radb::Value::FromVector(v)}});
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 3. Built-in LA functions compose inside SQL, fully type-checked
  //    (a MATRIX[3][3] times a VECTOR[3] yields a VECTOR[3]).
  auto rs = db.Execute(
      "SELECT matrix_vector_multiply(mat, vec) AS mv, "
      "       diag(mat) AS d, trans_matrix(mat) AS mt FROM m");
  if (!rs.ok()) {
    std::cerr << rs.status() << "\n";
    return 1;
  }
  std::cout << "matrix-vector product and diagonal:\n"
            << rs->last().ToString() << "\n";

  // 4. Known size mismatches are caught at compile time (§3.1)...
  (void)db.Execute("CREATE TABLE m4 (vec4 VECTOR[4])");
  auto compile_err = db.Execute(
      "SELECT matrix_vector_multiply(m.mat, m4.vec4) FROM m, m4");
  std::cout << "MATRIX[3][3] x VECTOR[4] fails to compile:\n  "
            << compile_err.status() << "\n";
  // ...while unknown sizes compile and are validated at runtime:
  auto runtime_err = db.Execute(
      "SELECT matrix_vector_multiply(mat, ones_vector(4)) FROM m");
  std::cout << "MATRIX[3][3] x ones_vector(4) compiles, then at runtime:\n  "
            << runtime_err.status() << "\n\n";

  // 5. VECTORIZE assembles normalized rows into a vector (§3.3).
  auto vec = db.Execute("SELECT VECTORIZE(label_scalar(y_i, i)) FROM y");
  if (!vec.ok()) {
    std::cerr << vec.status() << "\n";
    return 1;
  }
  std::cout << "VECTORIZE(y) = " << vec->last().rows[0][0].ToString() << "\n";

  // 6. The optimizer understands LA sizes; EXPLAIN shows the plan.
  auto explain = db.Explain(
      "SELECT SUM(outer_product(vec, vec)) FROM m");
  if (explain.ok()) {
    std::cout << "\nEXPLAIN SELECT SUM(outer_product(vec, vec)) FROM m:\n"
              << *explain;
  }

  // 7. Per-query execution options: a memory budget makes large
  //    intermediates spill to disk (results stay bit-identical), and
  //    the bounds-checked Get() reads cells without UB on bad indices.
  auto budgeted = db.Execute("SELECT SUM(y_i) AS total FROM y",
                             radb::QueryOptions{
                                 .memory_budget_bytes = 16u << 20,
                             });
  if (!budgeted.ok()) {
    std::cerr << budgeted.status() << "\n";
    return 1;
  }
  auto total = budgeted->last().Get(0, 0);
  if (total.ok()) {
    std::cout << "\nSUM(y) under a 16 MB budget = " << total->ToString()
              << " (spilled " << db.last_spill_bytes() << " bytes)\n";
  }
  return 0;
}
