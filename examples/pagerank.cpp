// PageRank by power iteration over a link matrix that is "too big for
// one machine": stored relationally as tiles (paper §3.4) and
// multiplied with a join + GROUP BY every iteration. The rank vector
// is itself a tiled one-column matrix, so each step is pure SQL:
//
//   r <- 0.85 * M r + 0.15/n
//
// with the teleport term applied through scalar broadcast (§3.2).
#include <cstdio>
#include <iostream>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "la/tiled.h"

namespace {

constexpr size_t kNodes = 240;
constexpr size_t kTile = 60;
constexpr double kDamping = 0.85;
constexpr int kIters = 40;

int Fail(const radb::Status& s) {
  std::cerr << "error: " << s << "\n";
  return 1;
}

}  // namespace

int main() {
  using radb::Value;
  radb::Rng rng(17);

  // Random graph; every node gets >= 1 out-edge (no dangling nodes).
  // M is column-stochastic: M[i][j] = 1/outdeg(j) for edge j -> i.
  std::vector<std::vector<size_t>> out_edges(kNodes);
  for (size_t j = 0; j < kNodes; ++j) {
    const size_t degree = 1 + rng.NextBelow(5);
    for (size_t e = 0; e < degree; ++e) {
      out_edges[j].push_back(rng.NextBelow(kNodes));
    }
  }
  radb::la::Matrix link(kNodes, kNodes);
  for (size_t j = 0; j < kNodes; ++j) {
    const double w = 1.0 / static_cast<double>(out_edges[j].size());
    for (size_t i : out_edges[j]) link.At(i, j) += w;
  }

  radb::Database db;
  const std::string tile_t =
      "MATRIX[" + std::to_string(kTile) + "][" + std::to_string(kTile) + "]";
  const std::string rank_t =
      "MATRIX[" + std::to_string(kTile) + "][1]";
  if (auto s = db.Execute(
          "CREATE TABLE link (tileRow INTEGER, tileCol INTEGER, mat " +
          tile_t + "); CREATE TABLE rank (tileRow INTEGER, mat " + rank_t +
          ")");
      !s.ok()) {
    return Fail(s.status());
  }
  std::vector<radb::Row> tiles;
  for (radb::la::Tile& t : radb::la::SplitIntoTiles(link, kTile, kTile)) {
    tiles.push_back({Value::Int(static_cast<int64_t>(t.tile_row)),
                     Value::Int(static_cast<int64_t>(t.tile_col)),
                     Value::FromMatrix(std::move(t.mat))});
  }
  if (auto s = db.BulkInsert("link", std::move(tiles)); !s.ok()) {
    return Fail(s);
  }
  std::vector<radb::Row> rank_tiles;
  for (size_t tr = 0; tr < kNodes / kTile; ++tr) {
    rank_tiles.push_back(
        {Value::Int(static_cast<int64_t>(tr)),
         Value::FromMatrix(radb::la::Matrix(kTile, 1, 1.0 / kNodes))});
  }
  if (auto s = db.BulkInsert("rank", std::move(rank_tiles)); !s.ok()) {
    return Fail(s);
  }

  const std::string teleport = std::to_string((1.0 - kDamping) / kNodes);
  for (int iter = 0; iter < kIters; ++iter) {
    auto step = db.Execute(
        "CREATE TABLE rank_next AS "
        "SELECT m.tileRow, SUM(matrix_multiply(m.mat, r.mat)) * " +
        std::to_string(kDamping) + " + " + teleport +
        " AS mat "
        "FROM link AS m, rank AS r WHERE m.tileCol = r.tileRow "
        "GROUP BY m.tileRow; "
        "DROP TABLE rank; "
        "CREATE TABLE rank AS SELECT tileRow, mat FROM rank_next; "
        "DROP TABLE rank_next");
    if (!step.ok()) return Fail(step.status());
  }

  // Gather the distributed rank vector.
  auto rs = db.Execute("SELECT tileRow, mat FROM rank ORDER BY tileRow");
  if (!rs.ok()) return Fail(rs.status());
  std::vector<double> rank(kNodes);
  for (size_t r = 0; r < rs->last().num_rows(); ++r) {
    auto tr_cell = rs->last().Get(r, 0);
    auto m_cell = rs->last().Get(r, 1);
    if (!tr_cell.ok()) return Fail(tr_cell.status());
    if (!m_cell.ok()) return Fail(m_cell.status());
    const size_t tr = static_cast<size_t>(tr_cell->AsInt().value());
    const radb::la::Matrix& m = m_cell->matrix();
    for (size_t i = 0; i < m.rows(); ++i) rank[tr * kTile + i] = m.At(i, 0);
  }

  // Dense reference power iteration.
  std::vector<double> ref(kNodes, 1.0 / kNodes);
  for (int iter = 0; iter < kIters; ++iter) {
    std::vector<double> next(kNodes, (1.0 - kDamping) / kNodes);
    for (size_t i = 0; i < kNodes; ++i) {
      double acc = 0;
      for (size_t j = 0; j < kNodes; ++j) acc += link.At(i, j) * ref[j];
      next[i] += kDamping * acc;
    }
    ref = std::move(next);
  }
  double max_diff = 0, total = 0;
  size_t best = 0;
  for (size_t i = 0; i < kNodes; ++i) {
    max_diff = std::max(max_diff, std::abs(rank[i] - ref[i]));
    total += rank[i];
    if (rank[i] > rank[best]) best = i;
  }
  std::printf("PageRank over %zu nodes (%d iterations of tiled SQL):\n",
              kNodes, kIters);
  std::printf("  sum of ranks        = %.6f (should be ~1)\n", total);
  std::printf("  top-ranked node     = %zu (score %.5f)\n", best,
              rank[best]);
  std::printf("  max |SQL - dense|   = %.3g\n", max_diff);
  return max_diff < 1e-12 ? 0 : 1;
}
