file(REMOVE_RECURSE
  "CMakeFiles/table_optimizer.dir/table_optimizer.cc.o"
  "CMakeFiles/table_optimizer.dir/table_optimizer.cc.o.d"
  "table_optimizer"
  "table_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
