# Empty compiler generated dependencies file for table_optimizer.
# This may be replaced when dependencies are built.
