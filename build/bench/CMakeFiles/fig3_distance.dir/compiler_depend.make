# Empty compiler generated dependencies file for fig3_distance.
# This may be replaced when dependencies are built.
