file(REMOVE_RECURSE
  "CMakeFiles/fig2_linreg.dir/fig2_linreg.cc.o"
  "CMakeFiles/fig2_linreg.dir/fig2_linreg.cc.o.d"
  "fig2_linreg"
  "fig2_linreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_linreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
