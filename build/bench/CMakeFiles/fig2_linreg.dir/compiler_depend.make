# Empty compiler generated dependencies file for fig2_linreg.
# This may be replaced when dependencies are built.
