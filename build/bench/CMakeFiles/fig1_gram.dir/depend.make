# Empty dependencies file for fig1_gram.
# This may be replaced when dependencies are built.
