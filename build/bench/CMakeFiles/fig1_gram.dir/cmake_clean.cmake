file(REMOVE_RECURSE
  "CMakeFiles/fig1_gram.dir/fig1_gram.cc.o"
  "CMakeFiles/fig1_gram.dir/fig1_gram.cc.o.d"
  "fig1_gram"
  "fig1_gram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_gram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
