file(REMOVE_RECURSE
  "CMakeFiles/ablation_workers.dir/ablation_workers.cc.o"
  "CMakeFiles/ablation_workers.dir/ablation_workers.cc.o.d"
  "ablation_workers"
  "ablation_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
