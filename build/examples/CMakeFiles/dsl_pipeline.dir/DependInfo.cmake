
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dsl_pipeline.cpp" "examples/CMakeFiles/dsl_pipeline.dir/dsl_pipeline.cpp.o" "gcc" "examples/CMakeFiles/dsl_pipeline.dir/dsl_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsl/CMakeFiles/radb_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/radb_api.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/radb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/binder/CMakeFiles/radb_binder.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/radb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/radb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/binder/CMakeFiles/radb_binder_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/radb_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/radb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/radb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/radb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/radb_la.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/radb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
