# Empty dependencies file for dsl_pipeline.
# This may be replaced when dependencies are built.
