file(REMOVE_RECURSE
  "CMakeFiles/dsl_pipeline.dir/dsl_pipeline.cpp.o"
  "CMakeFiles/dsl_pipeline.dir/dsl_pipeline.cpp.o.d"
  "dsl_pipeline"
  "dsl_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
