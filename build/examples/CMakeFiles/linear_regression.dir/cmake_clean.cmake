file(REMOVE_RECURSE
  "CMakeFiles/linear_regression.dir/linear_regression.cpp.o"
  "CMakeFiles/linear_regression.dir/linear_regression.cpp.o.d"
  "linear_regression"
  "linear_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
