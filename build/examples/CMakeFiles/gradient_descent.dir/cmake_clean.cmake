file(REMOVE_RECURSE
  "CMakeFiles/gradient_descent.dir/gradient_descent.cpp.o"
  "CMakeFiles/gradient_descent.dir/gradient_descent.cpp.o.d"
  "gradient_descent"
  "gradient_descent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradient_descent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
