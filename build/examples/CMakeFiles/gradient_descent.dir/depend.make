# Empty dependencies file for gradient_descent.
# This may be replaced when dependencies are built.
