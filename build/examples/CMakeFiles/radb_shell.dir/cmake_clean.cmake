file(REMOVE_RECURSE
  "CMakeFiles/radb_shell.dir/radb_shell.cpp.o"
  "CMakeFiles/radb_shell.dir/radb_shell.cpp.o.d"
  "radb_shell"
  "radb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
