# Empty dependencies file for radb_shell.
# This may be replaced when dependencies are built.
