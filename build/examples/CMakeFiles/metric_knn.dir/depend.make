# Empty dependencies file for metric_knn.
# This may be replaced when dependencies are built.
