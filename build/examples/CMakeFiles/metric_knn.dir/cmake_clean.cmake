file(REMOVE_RECURSE
  "CMakeFiles/metric_knn.dir/metric_knn.cpp.o"
  "CMakeFiles/metric_knn.dir/metric_knn.cpp.o.d"
  "metric_knn"
  "metric_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
