# Empty dependencies file for big_matrix_multiply.
# This may be replaced when dependencies are built.
