file(REMOVE_RECURSE
  "CMakeFiles/big_matrix_multiply.dir/big_matrix_multiply.cpp.o"
  "CMakeFiles/big_matrix_multiply.dir/big_matrix_multiply.cpp.o.d"
  "big_matrix_multiply"
  "big_matrix_multiply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/big_matrix_multiply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
