# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/tiled_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/signature_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_basic_test[1]_include.cmake")
include("/root/repo/build/tests/sql_la_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/binder_test[1]_include.cmake")
include("/root/repo/build/tests/builtins_test[1]_include.cmake")
include("/root/repo/build/tests/sql_agg_test[1]_include.cmake")
include("/root/repo/build/tests/parser_fuzz_test[1]_include.cmake")
