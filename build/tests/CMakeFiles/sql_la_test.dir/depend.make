# Empty dependencies file for sql_la_test.
# This may be replaced when dependencies are built.
