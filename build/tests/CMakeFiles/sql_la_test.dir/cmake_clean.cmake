file(REMOVE_RECURSE
  "CMakeFiles/sql_la_test.dir/sql_la_test.cc.o"
  "CMakeFiles/sql_la_test.dir/sql_la_test.cc.o.d"
  "sql_la_test"
  "sql_la_test.pdb"
  "sql_la_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_la_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
