# Empty compiler generated dependencies file for tiled_test.
# This may be replaced when dependencies are built.
