file(REMOVE_RECURSE
  "CMakeFiles/tiled_test.dir/tiled_test.cc.o"
  "CMakeFiles/tiled_test.dir/tiled_test.cc.o.d"
  "tiled_test"
  "tiled_test.pdb"
  "tiled_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
