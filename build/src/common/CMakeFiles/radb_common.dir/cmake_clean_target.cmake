file(REMOVE_RECURSE
  "libradb_common.a"
)
