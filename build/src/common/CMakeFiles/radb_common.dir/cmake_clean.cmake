file(REMOVE_RECURSE
  "CMakeFiles/radb_common.dir/status.cc.o"
  "CMakeFiles/radb_common.dir/status.cc.o.d"
  "CMakeFiles/radb_common.dir/string_util.cc.o"
  "CMakeFiles/radb_common.dir/string_util.cc.o.d"
  "libradb_common.a"
  "libradb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
