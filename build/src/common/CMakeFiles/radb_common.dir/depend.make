# Empty dependencies file for radb_common.
# This may be replaced when dependencies are built.
