file(REMOVE_RECURSE
  "CMakeFiles/radb_la.dir/matrix.cc.o"
  "CMakeFiles/radb_la.dir/matrix.cc.o.d"
  "CMakeFiles/radb_la.dir/random.cc.o"
  "CMakeFiles/radb_la.dir/random.cc.o.d"
  "CMakeFiles/radb_la.dir/tiled.cc.o"
  "CMakeFiles/radb_la.dir/tiled.cc.o.d"
  "CMakeFiles/radb_la.dir/vector.cc.o"
  "CMakeFiles/radb_la.dir/vector.cc.o.d"
  "libradb_la.a"
  "libradb_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
