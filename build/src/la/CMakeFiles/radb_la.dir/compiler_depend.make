# Empty compiler generated dependencies file for radb_la.
# This may be replaced when dependencies are built.
