file(REMOVE_RECURSE
  "libradb_la.a"
)
