file(REMOVE_RECURSE
  "libradb_optimizer.a"
)
