file(REMOVE_RECURSE
  "CMakeFiles/radb_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/radb_optimizer.dir/optimizer.cc.o.d"
  "libradb_optimizer.a"
  "libradb_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
