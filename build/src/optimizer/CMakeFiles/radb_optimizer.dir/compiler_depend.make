# Empty compiler generated dependencies file for radb_optimizer.
# This may be replaced when dependencies are built.
