# Empty dependencies file for radb_parser.
# This may be replaced when dependencies are built.
