file(REMOVE_RECURSE
  "CMakeFiles/radb_parser.dir/ast.cc.o"
  "CMakeFiles/radb_parser.dir/ast.cc.o.d"
  "CMakeFiles/radb_parser.dir/lexer.cc.o"
  "CMakeFiles/radb_parser.dir/lexer.cc.o.d"
  "CMakeFiles/radb_parser.dir/parser.cc.o"
  "CMakeFiles/radb_parser.dir/parser.cc.o.d"
  "libradb_parser.a"
  "libradb_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
