file(REMOVE_RECURSE
  "libradb_parser.a"
)
