# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("la")
subdirs("types")
subdirs("catalog")
subdirs("storage")
subdirs("parser")
subdirs("binder")
subdirs("plan")
subdirs("optimizer")
subdirs("dist")
subdirs("exec")
subdirs("api")
subdirs("dsl")
subdirs("engines")
subdirs("workloads")
