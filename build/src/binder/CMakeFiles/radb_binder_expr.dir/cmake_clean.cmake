file(REMOVE_RECURSE
  "CMakeFiles/radb_binder_expr.dir/bound_expr.cc.o"
  "CMakeFiles/radb_binder_expr.dir/bound_expr.cc.o.d"
  "libradb_binder_expr.a"
  "libradb_binder_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_binder_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
