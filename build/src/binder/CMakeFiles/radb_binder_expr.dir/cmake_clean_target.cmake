file(REMOVE_RECURSE
  "libradb_binder_expr.a"
)
