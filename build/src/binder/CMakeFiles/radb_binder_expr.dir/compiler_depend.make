# Empty compiler generated dependencies file for radb_binder_expr.
# This may be replaced when dependencies are built.
