file(REMOVE_RECURSE
  "CMakeFiles/radb_binder.dir/binder.cc.o"
  "CMakeFiles/radb_binder.dir/binder.cc.o.d"
  "libradb_binder.a"
  "libradb_binder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
