# Empty dependencies file for radb_binder.
# This may be replaced when dependencies are built.
