file(REMOVE_RECURSE
  "libradb_binder.a"
)
