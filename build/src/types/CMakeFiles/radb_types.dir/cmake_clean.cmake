file(REMOVE_RECURSE
  "CMakeFiles/radb_types.dir/data_type.cc.o"
  "CMakeFiles/radb_types.dir/data_type.cc.o.d"
  "CMakeFiles/radb_types.dir/schema.cc.o"
  "CMakeFiles/radb_types.dir/schema.cc.o.d"
  "CMakeFiles/radb_types.dir/signature.cc.o"
  "CMakeFiles/radb_types.dir/signature.cc.o.d"
  "CMakeFiles/radb_types.dir/value.cc.o"
  "CMakeFiles/radb_types.dir/value.cc.o.d"
  "CMakeFiles/radb_types.dir/value_ops.cc.o"
  "CMakeFiles/radb_types.dir/value_ops.cc.o.d"
  "libradb_types.a"
  "libradb_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
