file(REMOVE_RECURSE
  "libradb_types.a"
)
