# Empty dependencies file for radb_types.
# This may be replaced when dependencies are built.
