file(REMOVE_RECURSE
  "CMakeFiles/radb_dsl.dir/expr.cc.o"
  "CMakeFiles/radb_dsl.dir/expr.cc.o.d"
  "libradb_dsl.a"
  "libradb_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
