# Empty dependencies file for radb_dsl.
# This may be replaced when dependencies are built.
