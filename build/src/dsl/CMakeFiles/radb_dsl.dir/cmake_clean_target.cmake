file(REMOVE_RECURSE
  "libradb_dsl.a"
)
