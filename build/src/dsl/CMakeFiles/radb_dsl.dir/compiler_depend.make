# Empty compiler generated dependencies file for radb_dsl.
# This may be replaced when dependencies are built.
