file(REMOVE_RECURSE
  "libradb_spark.a"
)
