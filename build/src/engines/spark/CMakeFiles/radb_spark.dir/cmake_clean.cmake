file(REMOVE_RECURSE
  "CMakeFiles/radb_spark.dir/block_matrix.cc.o"
  "CMakeFiles/radb_spark.dir/block_matrix.cc.o.d"
  "libradb_spark.a"
  "libradb_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
