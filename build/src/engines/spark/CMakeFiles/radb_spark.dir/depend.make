# Empty dependencies file for radb_spark.
# This may be replaced when dependencies are built.
