# Empty compiler generated dependencies file for radb_spark.
# This may be replaced when dependencies are built.
