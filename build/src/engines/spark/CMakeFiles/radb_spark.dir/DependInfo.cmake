
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engines/spark/block_matrix.cc" "src/engines/spark/CMakeFiles/radb_spark.dir/block_matrix.cc.o" "gcc" "src/engines/spark/CMakeFiles/radb_spark.dir/block_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/radb_la.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/radb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
