file(REMOVE_RECURSE
  "CMakeFiles/radb_systemml.dir/dml.cc.o"
  "CMakeFiles/radb_systemml.dir/dml.cc.o.d"
  "libradb_systemml.a"
  "libradb_systemml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_systemml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
