# Empty compiler generated dependencies file for radb_systemml.
# This may be replaced when dependencies are built.
