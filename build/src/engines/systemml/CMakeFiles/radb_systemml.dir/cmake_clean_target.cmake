file(REMOVE_RECURSE
  "libradb_systemml.a"
)
