file(REMOVE_RECURSE
  "libradb_scidb.a"
)
