# Empty compiler generated dependencies file for radb_scidb.
# This may be replaced when dependencies are built.
