file(REMOVE_RECURSE
  "CMakeFiles/radb_scidb.dir/array.cc.o"
  "CMakeFiles/radb_scidb.dir/array.cc.o.d"
  "libradb_scidb.a"
  "libradb_scidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_scidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
