file(REMOVE_RECURSE
  "libradb_dist.a"
)
