file(REMOVE_RECURSE
  "CMakeFiles/radb_dist.dir/metrics.cc.o"
  "CMakeFiles/radb_dist.dir/metrics.cc.o.d"
  "libradb_dist.a"
  "libradb_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
