# Empty dependencies file for radb_dist.
# This may be replaced when dependencies are built.
