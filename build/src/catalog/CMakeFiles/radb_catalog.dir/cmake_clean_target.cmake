file(REMOVE_RECURSE
  "libradb_catalog.a"
)
