file(REMOVE_RECURSE
  "CMakeFiles/radb_catalog.dir/aggregate.cc.o"
  "CMakeFiles/radb_catalog.dir/aggregate.cc.o.d"
  "CMakeFiles/radb_catalog.dir/catalog.cc.o"
  "CMakeFiles/radb_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/radb_catalog.dir/function_registry.cc.o"
  "CMakeFiles/radb_catalog.dir/function_registry.cc.o.d"
  "libradb_catalog.a"
  "libradb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
