# Empty dependencies file for radb_catalog.
# This may be replaced when dependencies are built.
