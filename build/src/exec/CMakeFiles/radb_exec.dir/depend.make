# Empty dependencies file for radb_exec.
# This may be replaced when dependencies are built.
