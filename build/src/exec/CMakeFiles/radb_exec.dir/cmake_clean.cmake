file(REMOVE_RECURSE
  "CMakeFiles/radb_exec.dir/executor.cc.o"
  "CMakeFiles/radb_exec.dir/executor.cc.o.d"
  "CMakeFiles/radb_exec.dir/expr_eval.cc.o"
  "CMakeFiles/radb_exec.dir/expr_eval.cc.o.d"
  "libradb_exec.a"
  "libradb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
