
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/radb_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/radb_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/expr_eval.cc" "src/exec/CMakeFiles/radb_exec.dir/expr_eval.cc.o" "gcc" "src/exec/CMakeFiles/radb_exec.dir/expr_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/radb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/radb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/binder/CMakeFiles/radb_binder_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/radb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/radb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/radb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/radb_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
