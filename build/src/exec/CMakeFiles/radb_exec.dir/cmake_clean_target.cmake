file(REMOVE_RECURSE
  "libradb_exec.a"
)
