# Empty compiler generated dependencies file for radb_plan.
# This may be replaced when dependencies are built.
