file(REMOVE_RECURSE
  "CMakeFiles/radb_plan.dir/logical_plan.cc.o"
  "CMakeFiles/radb_plan.dir/logical_plan.cc.o.d"
  "libradb_plan.a"
  "libradb_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
