file(REMOVE_RECURSE
  "libradb_plan.a"
)
