file(REMOVE_RECURSE
  "libradb_storage.a"
)
