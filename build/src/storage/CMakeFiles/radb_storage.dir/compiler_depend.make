# Empty compiler generated dependencies file for radb_storage.
# This may be replaced when dependencies are built.
