file(REMOVE_RECURSE
  "CMakeFiles/radb_storage.dir/csv.cc.o"
  "CMakeFiles/radb_storage.dir/csv.cc.o.d"
  "CMakeFiles/radb_storage.dir/serialize.cc.o"
  "CMakeFiles/radb_storage.dir/serialize.cc.o.d"
  "CMakeFiles/radb_storage.dir/table.cc.o"
  "CMakeFiles/radb_storage.dir/table.cc.o.d"
  "libradb_storage.a"
  "libradb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
