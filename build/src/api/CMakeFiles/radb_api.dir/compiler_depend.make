# Empty compiler generated dependencies file for radb_api.
# This may be replaced when dependencies are built.
