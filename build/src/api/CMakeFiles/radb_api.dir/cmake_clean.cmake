file(REMOVE_RECURSE
  "CMakeFiles/radb_api.dir/database.cc.o"
  "CMakeFiles/radb_api.dir/database.cc.o.d"
  "libradb_api.a"
  "libradb_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
