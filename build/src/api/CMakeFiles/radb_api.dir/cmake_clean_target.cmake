file(REMOVE_RECURSE
  "libradb_api.a"
)
