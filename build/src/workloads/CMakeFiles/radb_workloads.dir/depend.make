# Empty dependencies file for radb_workloads.
# This may be replaced when dependencies are built.
