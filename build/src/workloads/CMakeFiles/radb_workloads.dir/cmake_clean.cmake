file(REMOVE_RECURSE
  "CMakeFiles/radb_workloads.dir/computations.cc.o"
  "CMakeFiles/radb_workloads.dir/computations.cc.o.d"
  "CMakeFiles/radb_workloads.dir/computations_engines.cc.o"
  "CMakeFiles/radb_workloads.dir/computations_engines.cc.o.d"
  "CMakeFiles/radb_workloads.dir/datagen.cc.o"
  "CMakeFiles/radb_workloads.dir/datagen.cc.o.d"
  "libradb_workloads.a"
  "libradb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
