file(REMOVE_RECURSE
  "libradb_workloads.a"
)
