// Prints Figures 1, 2 and 3 of the paper as tables in the paper's own
// format (platform rows x dimensionality columns, HH:MM:SS-style
// cells, "Fail" entries, local-mode stars), plus the §5 geometric-mean
// summary. This is the one-shot harness; the per-cell google-benchmark
// binaries (fig1_gram etc.) expose the same measurements with
// counters.
//
// Cells show the measured wall time of this in-process reproduction —
// compare *shapes* with the paper, not absolute values (see
// EXPERIMENTS.md).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::RunOutcome;
using workloads::SqlWorkload;

struct Cell {
  bool ok = false;
  bool failed = false;        // the paper's "Fail"
  bool local_mode = false;    // the paper's star
  bool skipped = false;       // exceeds bench time budget
  double seconds = 0.0;
};

std::string Render(const Cell& c) {
  if (c.failed) return "Fail";
  if (c.skipped) return "(skip)";
  if (!c.ok) return "error";
  std::string out = FormatHms(c.seconds);
  if (c.local_mode) out += "*";
  return out;
}

void PrintTable(const char* title,
                const std::vector<std::pair<std::string, std::vector<Cell>>>&
                    rows) {
  std::printf("\n%s\n", title);
  std::printf("%-16s %12s %12s %12s\n", "Platform", "10 dims", "100 dims",
              "1000 dims");
  for (const auto& [name, cells] : rows) {
    std::printf("%-16s %12s %12s %12s\n", name.c_str(),
                Render(cells[0]).c_str(), Render(cells[1]).c_str(),
                Render(cells[2]).c_str());
  }
}

Cell FromOutcome(const Result<RunOutcome>& out, bool local_mode = false) {
  Cell c;
  if (!out.ok()) return c;
  c.ok = true;
  c.failed = out->failed;
  c.local_mode = local_mode;
  c.seconds = out->wall_seconds;
  return c;
}

constexpr size_t kDims[3] = {10, 100, 1000};

}  // namespace

int Run() {
  // ---------------- Figure 1: Gram matrix ----------------
  std::vector<std::pair<std::string, std::vector<Cell>>> gram(6);
  gram[0].first = "Tuple SQL";
  gram[1].first = "Vector SQL";
  gram[2].first = "Block SQL";
  gram[3].first = "SystemML";
  gram[4].first = "Spark mllib";
  gram[5].first = "SciDB";
  for (auto& row : gram) row.second.resize(3);
  for (int i = 0; i < 3; ++i) {
    const size_t d = kDims[i];
    const size_t n = GramPointsFor(d);
    const Dataset data = GenerateDataset(kSeed, n, d);
    {
      SqlWorkload wl(kWorkers);
      if (wl.LoadTuple(data).ok()) {
        gram[0].second[i] = FromOutcome(wl.GramTuple());
      }
    }
    {
      SqlWorkload wl(kWorkers);
      if (wl.LoadVector(data).ok()) {
        gram[1].second[i] = FromOutcome(wl.GramVector());
      }
    }
    {
      SqlWorkload wl(kWorkers);
      if (wl.LoadVector(data).ok()) {
        gram[2].second[i] = FromOutcome(wl.GramBlock(BlockFor(n)));
      }
    }
    const systemml::DmlConfig dml = SystemMlConfigFor(n);
    const bool local =
        8 * n * d <= dml.local_threshold_bytes;  // X fits locally
    gram[3].second[i] = FromOutcome(workloads::GramSystemML(data, dml),
                                    local);
    gram[4].second[i] = FromOutcome(workloads::GramSpark(data, kWorkers));
    gram[5].second[i] =
        FromOutcome(workloads::GramSciDB(data, kWorkers, ChunkFor(n)));
  }
  PrintTable("Figure 1: Gram matrix computation", gram);

  // ---------------- Figure 2: Linear regression ----------------
  std::vector<std::pair<std::string, std::vector<Cell>>> reg = gram;
  for (auto& row : reg) row.second.assign(3, Cell{});
  for (int i = 0; i < 3; ++i) {
    const size_t d = kDims[i];
    const size_t n = LinRegPointsFor(d);
    const Dataset data = GenerateDataset(kSeed, n, d);
    if (d < 1000) {
      SqlWorkload wl(kWorkers);
      if (wl.LoadTuple(data).ok()) {
        reg[0].second[i] = FromOutcome(wl.LinRegTuple());
      }
    } else {
      reg[0].second[i].skipped = true;  // see fig2_linreg.cc
    }
    {
      SqlWorkload wl(kWorkers);
      if (wl.LoadVector(data).ok()) {
        reg[1].second[i] = FromOutcome(wl.LinRegVector());
      }
    }
    {
      SqlWorkload wl(kWorkers);
      if (wl.LoadVector(data).ok()) {
        reg[2].second[i] = FromOutcome(wl.LinRegBlock(BlockFor(n)));
      }
    }
    const systemml::DmlConfig dml = SystemMlConfigFor(n);
    const bool local = 8 * n * d <= dml.local_threshold_bytes;
    reg[3].second[i] =
        FromOutcome(workloads::LinRegSystemML(data, dml), local);
    reg[4].second[i] = FromOutcome(workloads::LinRegSpark(data, kWorkers));
    reg[5].second[i] =
        FromOutcome(workloads::LinRegSciDB(data, kWorkers, ChunkFor(n)));
  }
  PrintTable("Figure 2: Linear regression", reg);

  // ---------------- Figure 3: Distance computation ----------------
  std::vector<std::pair<std::string, std::vector<Cell>>> dist = gram;
  for (auto& row : dist) row.second.assign(3, Cell{});
  for (int i = 0; i < 3; ++i) {
    const size_t d = kDims[i];
    const size_t n = DistancePointsFor(d);
    const Dataset data = GenerateDataset(kSeed, n, d);
    {
      SqlWorkload wl(kWorkers);
      if (wl.LoadTuple(data).ok()) {
        dist[0].second[i] = FromOutcome(wl.DistanceTuple(1'000'000));
      }
    }
    {
      SqlWorkload wl(kWorkers);
      if (wl.LoadVector(data).ok()) {
        dist[1].second[i] = FromOutcome(wl.DistanceVector());
      }
    }
    {
      SqlWorkload wl(kWorkers);
      if (wl.LoadVector(data).ok()) {
        dist[2].second[i] =
            FromOutcome(wl.DistanceBlock(DistanceBlockFor(n)));
      }
    }
    dist[3].second[i] = FromOutcome(
        workloads::DistanceSystemML(data, SystemMlConfigFor(n)));
    dist[4].second[i] = FromOutcome(
        workloads::DistanceSpark(data, kWorkers, DistanceBlockFor(n)));
    dist[5].second[i] =
        FromOutcome(workloads::DistanceSciDB(data, kWorkers, ChunkFor(n)));
  }
  PrintTable("Figure 3: Distance computation", dist);

  // ---------------- §5 geometric means over the 1000-dim column -----
  std::printf("\nGeometric mean over the three 1000-dim tasks "
              "(paper: SimSQL 5:07, SystemML 6:05, SciDB 4:41):\n");
  auto geo = [&](const Cell& a, const Cell& b, const Cell& c) -> double {
    if (!a.ok || !b.ok || !c.ok || a.failed || b.failed || c.failed) {
      return -1.0;
    }
    return std::cbrt(a.seconds * b.seconds * c.seconds);
  };
  struct GeoRow {
    const char* name;
    double value;
  };
  const GeoRow rows[] = {
      {"Block SQL", geo(gram[2].second[2], reg[2].second[2],
                        dist[2].second[2])},
      {"SystemML", geo(gram[3].second[2], reg[3].second[2],
                       dist[3].second[2])},
      {"SciDB", geo(gram[5].second[2], reg[5].second[2],
                    dist[5].second[2])},
  };
  for (const GeoRow& r : rows) {
    if (r.value < 0) {
      std::printf("  %-12s n/a\n", r.name);
    } else {
      std::printf("  %-12s %s\n", r.name, FormatHms(r.value).c_str());
    }
  }
  std::printf("\n(* = SystemML-style local mode, as in the paper's "
              "starred cells)\n");
  return 0;
}

}  // namespace radb::bench

int main() { return radb::bench::Run(); }
