// Ablation: concurrent query service. A closed-loop multi-session
// stress driver (standalone, like fuzz_queries — not a Google
// benchmark): N sessions on one Database each run a mixed
// Gram / linear-regression / short-scan workload back to back, and
// EVERY result is cross-checked bit-for-bit against single-session
// execution of the same query — the determinism contract must survive
// admission, fair scheduling, and interleaved execution. Sweeps
// N in {1, 2, 4, 8} on the default 8-thread pool, plus an
// {8 sessions, 16-thread pool} point: the PR 6 phase attribution
// concluded the 4→8-session flatline is pool capacity, not
// scheduling, so doubling Config::num_threads should move the qps
// ceiling where a scheduler fix would not. A final {8 sessions,
// caches on} point re-runs the workload with the plan/result caches
// enabled and asserts every warm hit is bit-identical to the
// caches-off cold-miss oracle (the fingerprint covers column
// metadata as well as row bytes). Emits
// BENCH_concurrency.json with per-point throughput plus queue-wait
// and end-to-end latency percentiles from the service histograms.
//
// Usage:
//   ablation_concurrency [--quick] [--per-session N]
//
// --quick shrinks the dataset and per-session query count (the ctest
// `concurrency` smoke configuration).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "la/random.h"
#include "obs/json.h"
#include "service/session.h"
#include "storage/serialize.h"

namespace {

using namespace radb;
using service::SessionManager;

constexpr size_t kWorkers = 8;
constexpr size_t kThreads = 8;
constexpr uint64_t kSeed = 20170419;  // ICDE 2017

struct Args {
  size_t dims = 40;
  size_t rows = 1500;
  size_t per_session = 6;  // closed-loop queries per session
  bool quick = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
      args.dims = 16;
      args.rows = 300;
      args.per_session = 3;
    } else if (std::strcmp(argv[i], "--per-session") == 0 && i + 1 < argc) {
      args.per_session = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--per-session N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.per_session == 0) args.per_session = 1;
  return args;
}

/// The mixed workload: a heavy Gram aggregate, the paper's §3.2
/// linear-regression solve, and a short scan — so the fair scheduler
/// has to multiplex long LA work with latency-sensitive queries.
std::vector<std::string> WorkloadQueries() {
  return {
      // Gram matrix (Figure 1 vector coding).
      "SELECT SUM(outer_product(x.value, x.value)) FROM x_vm AS x",
      // Linear regression (§3.2 code, verbatim shape).
      "SELECT matrix_vector_multiply("
      "  matrix_inverse(SUM(outer_product(x.x_i, x.x_i))), "
      "  SUM(x.x_i * y.y_i)) "
      "FROM (SELECT id AS i, value AS x_i FROM x_vm) AS x, y "
      "WHERE x.i = y.i",
      // Short scan: must not be starved behind the LA queries.
      "SELECT COUNT(*), SUM(y.y_i) FROM y WHERE y.y_i > 0.0",
  };
}

Status LoadDataset(Database* db, size_t n, size_t d) {
  RADB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE x_vm (id INTEGER, value VECTOR[" +
                  std::to_string(d) + "])")
          .status());
  RADB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE y (i INTEGER, y_i DOUBLE)").status());
  Rng rng(kSeed);
  std::vector<Row> xs, ys;
  for (size_t i = 0; i < n; ++i) {
    xs.push_back({Value::Int(static_cast<int64_t>(i)),
                  Value::FromVector(la::RandomVector(rng, d))});
    ys.push_back({Value::Int(static_cast<int64_t>(i)),
                  Value::Double(rng.NextDouble() * 2.0 - 1.0)});
  }
  RADB_RETURN_NOT_OK(db->BulkInsert("x_vm", std::move(xs)));
  return db->BulkInsert("y", std::move(ys));
}

/// Serialized bytes of the whole visible result: column names and
/// types first, then every row. A cache hit replays stored column
/// metadata as well as rows, so the fingerprint must cover both — the
/// old rows-only fingerprint would have called a hit with mangled
/// column names or types "identical".
std::string Fingerprint(const ResultSet& rs) {
  std::ostringstream os(std::ios::binary);
  for (const SlotInfo& c : rs.columns) {
    os << c.name << '\0' << c.type.ToString() << '\0';
  }
  for (const Row& row : rs.rows) WriteRowBinary(os, row);
  return os.str();
}

Database::Config MakeConfig(size_t threads = kThreads, bool caches = false) {
  Database::Config config;
  config.num_workers = kWorkers;
  config.num_threads = threads;
  config.obs.enable_metrics = true;
  // The contention sweep runs caches-off so its numbers keep measuring
  // admission/scheduling, not cache residency; the dedicated
  // caches-on point flips this to assert warm hits stay bit-identical.
  config.cache.enable_plan_cache = caches;
  config.cache.enable_result_cache = caches;
  // Large enough that no sweep point evicts a record before the
  // post-run radb_query_phases rollup reads it.
  config.telemetry.query_log_capacity = 8192;
  return config;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepEntry {
  size_t sessions = 0;
  size_t threads = kThreads;  // Config::num_threads at this point
  bool caches = false;        // plan + result caches enabled
  uint64_t result_hits = 0, plan_hits = 0;
  size_t queries = 0;
  size_t mismatches = 0;
  size_t errors = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;           // end-to-end seconds
  double queue_p50 = 0.0, queue_p95 = 0.0, queue_p99 = 0.0;
  uint64_t admitted = 0, queued = 0;
  /// Where the time went, summed across every session query at this
  /// sweep point: radb_query_phases rolled up through SQL. Index is
  /// obs::QueryPhase.
  uint64_t phase_micros[obs::kNumQueryPhases] = {};
  /// Catalog-latch and thread-pool contention distributions (seconds).
  double latch_read_p50 = 0.0, latch_read_p95 = 0.0, latch_read_p99 = 0.0;
  double latch_write_p95 = 0.0;
  double region_wait_p50 = 0.0, region_wait_p95 = 0.0,
         region_wait_p99 = 0.0;
};

/// Rolls up the per-phase time of every session-issued query at this
/// sweep point, read back through the system tables themselves
/// (session_id > 0 excludes the dataset-loading DDL/DML, which runs
/// through Database::Execute directly).
Status RollupPhases(Database* db, SweepEntry* entry) {
  auto rs = db->Execute(
      "SELECT phase, SUM(micros) AS total FROM radb_query_phases "
      "WHERE session_id > 0 GROUP BY phase");
  if (!rs.ok()) return rs.status();
  const ResultSet& result = rs->last();
  for (size_t r = 0; r < result.num_rows(); ++r) {
    const std::string& phase = result.at(r, 0).string_value();
    for (size_t p = 0; p < obs::kNumQueryPhases; ++p) {
      if (phase == obs::QueryPhaseName(static_cast<obs::QueryPhase>(p))) {
        const Value& total = result.at(r, 1);
        entry->phase_micros[p] = static_cast<uint64_t>(
            total.kind() == TypeKind::kInteger ? total.int_value()
                                               : total.double_value());
      }
    }
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const std::vector<std::string> queries = WorkloadQueries();

  // Single-session reference fingerprints: the oracle every
  // concurrent result must match bit for bit.
  Database ref_db(MakeConfig());
  if (Status s = LoadDataset(&ref_db, args.rows, args.dims); !s.ok()) {
    std::fprintf(stderr, "reference load failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::vector<std::string> want;
  for (const auto& q : queries) {
    auto rs = ref_db.Execute(q);
    if (!rs.ok() || !rs->has_results()) {
      std::fprintf(stderr, "reference query failed: %s\n",
                   rs.ok() ? "no result set" : rs.status().ToString().c_str());
      return 1;
    }
    want.push_back(Fingerprint(rs->last()));
  }

  std::vector<SweepEntry> entries;
  size_t total_mismatches = 0;
  size_t total_errors = 0;
  // (sessions, pool threads, caches): the 1→8-session sweep on the
  // default 8-thread pool, then 8 sessions against a 16-thread pool —
  // the capacity experiment the PR 6 saturation diagnosis called for —
  // and finally 8 sessions with the plan/result caches enabled, where
  // every warm hit must still fingerprint-match the caches-off
  // cold-miss oracle computed above.
  struct Point {
    size_t sessions;
    size_t threads;
    bool caches;
  };
  const Point sweep[] = {{1, kThreads, false}, {2, kThreads, false},
                         {4, kThreads, false}, {8, kThreads, false},
                         {8, 2 * kThreads, false}, {8, kThreads, true}};
  for (const auto& [sessions, threads, caches] : sweep) {
    // Fresh Database per sweep point so the service histograms cover
    // exactly this window (SessionManager resolves instrument pointers
    // at construction, so clearing a live registry is not an option).
    Database db(MakeConfig(threads, caches));
    if (Status s = LoadDataset(&db, args.rows, args.dims); !s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    SessionManager manager(&db);

    SweepEntry entry;
    entry.sessions = sessions;
    entry.threads = threads;
    entry.caches = caches;
    entry.queries = sessions * args.per_session;
    std::atomic<size_t> mismatches{0};
    std::atomic<size_t> errors{0};
    std::vector<std::thread> session_threads;
    const double start = NowSeconds();
    for (size_t s = 0; s < sessions; ++s) {
      session_threads.emplace_back([&, s] {
        auto session = manager.CreateSession();
        // Closed loop: each session issues its next query as soon as
        // the previous one returns; sessions start at staggered
        // offsets so the mix stays mixed.
        for (size_t i = 0; i < args.per_session; ++i) {
          const size_t qi = (s + i) % queries.size();
          auto got = session->Execute(queries[qi]);
          if (!got.ok() || !got->has_results()) {
            errors.fetch_add(1);
          } else if (Fingerprint(got->last()) != want[qi]) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : session_threads) t.join();
    entry.wall_seconds = NowSeconds() - start;
    entry.mismatches = mismatches.load();
    entry.errors = errors.load();
    entry.qps = entry.wall_seconds > 0.0
                    ? static_cast<double>(entry.queries) / entry.wall_seconds
                    : 0.0;
    obs::MetricsRegistry* metrics = db.metrics_registry();
    obs::Histogram* lat = metrics->histogram("service.query_seconds");
    obs::Histogram* qw = metrics->histogram("service.queue_wait_seconds");
    entry.p50 = lat->Percentile(0.5);
    entry.p95 = lat->Percentile(0.95);
    entry.p99 = lat->Percentile(0.99);
    entry.queue_p50 = qw->Percentile(0.5);
    entry.queue_p95 = qw->Percentile(0.95);
    entry.queue_p99 = qw->Percentile(0.99);
    entry.admitted = metrics->counter("service.queries_admitted")->value();
    entry.queued = metrics->counter("service.queries_queued")->value();
    entry.result_hits = metrics->counter("cache.result_hits")->value();
    entry.plan_hits = metrics->counter("cache.plan_hits")->value();
    if (caches && entry.result_hits == 0) {
      // A caches-on point that never hits proves nothing about warm
      // correctness — treat it as a bench failure, not a quiet pass.
      std::fprintf(stderr,
                   "FAIL: caches-on sweep point recorded zero result-cache "
                   "hits\n");
      return 1;
    }
    obs::Histogram* lr = metrics->histogram("service.latch_wait_read_seconds");
    obs::Histogram* lw = metrics->histogram("service.latch_wait_write_seconds");
    obs::Histogram* rw = metrics->histogram("pool.region_wait_seconds");
    entry.latch_read_p50 = lr->Percentile(0.5);
    entry.latch_read_p95 = lr->Percentile(0.95);
    entry.latch_read_p99 = lr->Percentile(0.99);
    entry.latch_write_p95 = lw->Percentile(0.95);
    entry.region_wait_p50 = rw->Percentile(0.5);
    entry.region_wait_p95 = rw->Percentile(0.95);
    entry.region_wait_p99 = rw->Percentile(0.99);
    if (Status s = RollupPhases(&db, &entry); !s.ok()) {
      std::fprintf(stderr, "phase rollup failed: %s\n", s.ToString().c_str());
      return 1;
    }
    total_mismatches += entry.mismatches;
    total_errors += entry.errors;
    entries.push_back(entry);
    std::printf(
        "sessions=%zu  threads=%zu  caches=%s  queries=%zu  wall=%.3fs  "
        "qps=%.2f  p50=%.4fs p95=%.4fs p99=%.4fs  queue_p95=%.4fs  "
        "result_hits=%llu plan_hits=%llu  mismatches=%zu errors=%zu\n",
        entry.sessions, entry.threads, entry.caches ? "on" : "off",
        entry.queries, entry.wall_seconds, entry.qps, entry.p50, entry.p95,
        entry.p99, entry.queue_p95,
        static_cast<unsigned long long>(entry.result_hits),
        static_cast<unsigned long long>(entry.plan_hits), entry.mismatches,
        entry.errors);
    std::printf("  phases(ms):");
    for (size_t p = 0; p < obs::kNumQueryPhases; ++p) {
      std::printf(" %s=%.1f",
                  obs::QueryPhaseName(static_cast<obs::QueryPhase>(p)),
                  static_cast<double>(entry.phase_micros[p]) / 1000.0);
    }
    std::printf("  latch_read_p95=%.4fs region_wait_p95=%.4fs\n",
                entry.latch_read_p95, entry.region_wait_p95);
  }

  std::ofstream os("BENCH_concurrency.json", std::ios::trunc);
  os << "{\"figure\":\"concurrency\",\"workers\":" << kWorkers
     << ",\"threads\":" << kThreads
     << ",\"rows\":" << args.rows << ",\"dims\":" << args.dims
     << ",\"per_session\":" << args.per_session << ",\"entries\":[\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    const SweepEntry& e = entries[i];
    os << "{\"label\":\"sessions=" << e.sessions << ",threads=" << e.threads
       << ",caches=" << (e.caches ? "on" : "off") << "\""
       << ",\"sessions\":" << e.sessions << ",\"threads\":" << e.threads
       << ",\"caches\":" << (e.caches ? "true" : "false")
       << ",\"cache_result_hits\":" << e.result_hits
       << ",\"cache_plan_hits\":" << e.plan_hits
       << ",\"queries\":" << e.queries
       << ",\"wall_seconds\":" << obs::JsonNumber(e.wall_seconds)
       << ",\"qps\":" << obs::JsonNumber(e.qps)
       << ",\"latency_p50\":" << obs::JsonNumber(e.p50)
       << ",\"latency_p95\":" << obs::JsonNumber(e.p95)
       << ",\"latency_p99\":" << obs::JsonNumber(e.p99)
       << ",\"queue_wait_p50\":" << obs::JsonNumber(e.queue_p50)
       << ",\"queue_wait_p95\":" << obs::JsonNumber(e.queue_p95)
       << ",\"queue_wait_p99\":" << obs::JsonNumber(e.queue_p99)
       << ",\"admitted\":" << e.admitted << ",\"queued\":" << e.queued
       << ",\"phase_micros\":{";
    for (size_t p = 0; p < obs::kNumQueryPhases; ++p) {
      os << (p == 0 ? "" : ",") << "\""
         << obs::QueryPhaseName(static_cast<obs::QueryPhase>(p))
         << "\":" << e.phase_micros[p];
    }
    os << "}"
       << ",\"latch_read_p50\":" << obs::JsonNumber(e.latch_read_p50)
       << ",\"latch_read_p95\":" << obs::JsonNumber(e.latch_read_p95)
       << ",\"latch_read_p99\":" << obs::JsonNumber(e.latch_read_p99)
       << ",\"latch_write_p95\":" << obs::JsonNumber(e.latch_write_p95)
       << ",\"region_wait_p50\":" << obs::JsonNumber(e.region_wait_p50)
       << ",\"region_wait_p95\":" << obs::JsonNumber(e.region_wait_p95)
       << ",\"region_wait_p99\":" << obs::JsonNumber(e.region_wait_p99)
       << ",\"mismatches\":" << e.mismatches << ",\"errors\":" << e.errors
       << "}" << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "]}\n";

  if (total_mismatches + total_errors > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu mismatched / %zu errored results vs the "
                 "single-session oracle\n",
                 total_mismatches, total_errors);
    return 1;
  }
  std::printf("all concurrent results bit-identical to single-session "
              "execution\n");
  return 0;
}
