// Differential query fuzzer (standalone driver, not a Google
// benchmark). Generates seeded random catalogs and queries, runs each
// query through every StandardConfigs() engine configuration plus the
// brute-force reference evaluator, and fails loudly (exit 1) on any
// divergence — after shrinking it to a minimal repro suitable for
// pinning in src/testing/regression_seeds.h.
//
// Usage:
//   fuzz_queries [--queries N] [--seed S] [--queries-per-catalog K]
//                [--sessions M] [--ddl-churn R]
//
// Every run starts by replaying the pinned regression seeds.
// With --sessions M > 1, a third phase replays generated query
// batches across M concurrent service sessions on one Database and
// requires every result to be bit-identical to serial execution of
// the same query (the concurrency determinism contract).
// With --ddl-churn R > 0, a fourth phase runs R DDL-interleaved
// cache-differential rounds: the same hot-query/churn stream on a
// caches-on and a caches-off database, which must agree on every
// statement (the stale-cache contract; see RunCacheDiffRounds).
// With --reopen R > 0, a fifth phase runs R persistence rounds: a
// generated catalog is loaded into a Database::Open store, a query
// batch is executed, the database is closed and reopened from disk,
// and every query must return bit-identical rows after the restart
// (the durability contract, with zero re-ingest).

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"

#include "obs/metrics_registry.h"
#include "testing/catalog_gen.h"
#include "testing/concurrent_differ.h"
#include "testing/differ.h"
#include "testing/query_gen.h"
#include "testing/regression_seeds.h"

namespace {

struct Args {
  uint64_t queries = 600;
  uint64_t seed = 1;
  uint64_t queries_per_catalog = 25;
  uint64_t sessions = 1;   // > 1 enables the concurrent phase
  uint64_t ddl_churn = 0;  // > 0 enables the cache-differential phase
  uint64_t reopen = 0;     // > 0 enables the persistence phase
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto want = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        return argv[++i];
      }
      return nullptr;
    };
    if (const char* v = want("--queries")) {
      args.queries = std::strtoull(v, nullptr, 10);
    } else if (const char* v = want("--seed")) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = want("--queries-per-catalog")) {
      args.queries_per_catalog = std::strtoull(v, nullptr, 10);
    } else if (const char* v = want("--sessions")) {
      args.sessions = std::strtoull(v, nullptr, 10);
    } else if (const char* v = want("--ddl-churn")) {
      args.ddl_churn = std::strtoull(v, nullptr, 10);
    } else if (const char* v = want("--reopen")) {
      args.reopen = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--queries N] [--seed S] "
                   "[--queries-per-catalog K] [--sessions M] "
                   "[--ddl-churn R] [--reopen R]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.queries_per_catalog == 0) args.queries_per_catalog = 1;
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radb;
  using namespace radb::testing;

  const Args args = ParseArgs(argc, argv);

  // The fuzzer's own metrics registry; per-config plans_considered is
  // folded in from each Differ before it is destroyed.
  obs::MetricsRegistry metrics;
  uint64_t queries_run = 0;
  uint64_t divergences = 0;

  auto note_plans = [&](const Differ& differ) {
    const std::vector<FuzzConfig> configs = StandardConfigs();
    const std::vector<uint64_t> plans = differ.PlansConsidered();
    for (size_t i = 0; i < plans.size(); ++i) {
      metrics.counter("fuzz.plans_considered." + configs[i].name)
          ->Add(plans[i]);
    }
  };

  auto diverge = [&](const DiffOutcome& outcome, const CatalogSpec& catalog,
                     const QuerySpec& query) {
    ++divergences;
    metrics.counter("fuzz.divergences")->Add(1);
    std::fprintf(stderr, "%s\n", outcome.report.c_str());
    std::fprintf(stderr, "shrinking...\n");
    const Repro repro = Shrink(catalog, query);
    std::fprintf(stderr, "%s\n", ReproReport(repro).c_str());
  };

  // ---- Phase 1: pinned regression seeds. ----
  for (size_t i = 0; i < kNumRegressionSeeds; ++i) {
    const RegressionSeed& seed = kRegressionSeeds[i];
    const CatalogSpec catalog = GenerateCatalog(seed.catalog_seed);
    Differ differ(catalog);
    if (!differ.init_status().ok()) {
      std::fprintf(stderr, "regression seed %zu: catalog load failed: %s\n",
                   i, differ.init_status().message().c_str());
      return 1;
    }
    const DiffOutcome outcome = differ.RunOne(seed.sql);
    ++queries_run;
    metrics.counter("fuzz.queries_run")->Add(1);
    note_plans(differ);
    if (outcome.diverged) {
      ++divergences;
      metrics.counter("fuzz.divergences")->Add(1);
      std::fprintf(stderr, "regression seed %zu diverged:\n%s\n", i,
                   outcome.report.c_str());
    }
  }

  // ---- Phase 2: random catalogs x random queries. ----
  Rng meta_rng(args.seed);
  uint64_t remaining = args.queries;
  uint64_t catalog_idx = 0;
  while (remaining > 0) {
    const uint64_t catalog_seed =
        args.seed * 1000003ULL + catalog_idx++;
    const CatalogSpec catalog = GenerateCatalog(catalog_seed);
    Differ differ(catalog);
    if (!differ.init_status().ok()) {
      std::fprintf(stderr, "catalog seed %llu: load failed: %s\n",
                   static_cast<unsigned long long>(catalog_seed),
                   differ.init_status().message().c_str());
      return 1;
    }
    const uint64_t batch =
        remaining < args.queries_per_catalog ? remaining
                                             : args.queries_per_catalog;
    Rng rng(catalog_seed ^ 0xd1b54a32d192ed03ULL);
    for (uint64_t i = 0; i < batch; ++i) {
      // ~1 in 8 queries targets the radb_ system tables (compared in
      // shape mode — see Differ::RunOne); the rest are value-compared
      // against the reference evaluator as before.
      const bool system = rng.NextBelow(8) == 0;
      const QuerySpec query = system ? GenerateSystemTableQuery(catalog, &rng)
                                     : GenerateQuery(catalog, &rng);
      const DiffOutcome outcome = differ.RunOne(query.ToSql());
      ++queries_run;
      metrics.counter("fuzz.queries_run")->Add(1);
      if (system) metrics.counter("fuzz.system_queries_run")->Add(1);
      if (outcome.diverged) diverge(outcome, catalog, query);
    }
    note_plans(differ);
    remaining -= batch;
    if (catalog_idx % 4 == 0 || remaining == 0) {
      std::fprintf(stderr, "  ... %llu/%llu queries, %llu divergence(s)\n",
                   static_cast<unsigned long long>(queries_run),
                   static_cast<unsigned long long>(args.queries +
                                                   kNumRegressionSeeds),
                   static_cast<unsigned long long>(divergences));
    }
  }

  // ---- Phase 3: concurrent sessions vs the serial oracle. ----
  if (args.sessions > 1) {
    // Reuse a slice of the generated stream: a few catalogs, each
    // with a batch big enough to keep all sessions busy.
    const uint64_t rounds = 3;
    const uint64_t batch = args.sessions * 6;
    for (uint64_t round = 0; round < rounds; ++round) {
      const uint64_t catalog_seed =
          args.seed * 7000003ULL + round;
      const CatalogSpec catalog = GenerateCatalog(catalog_seed);
      Rng rng(catalog_seed ^ 0x9e3779b97f4a7c15ULL);
      std::vector<std::string> sqls;
      for (uint64_t i = 0; i < batch; ++i) {
        sqls.push_back(GenerateQuery(catalog, &rng).ToSql());
      }
      const ConcurrentDiffOutcome outcome =
          RunConcurrentRound(catalog, sqls, args.sessions);
      queries_run += outcome.queries_run;
      metrics.counter("fuzz.concurrent_queries_run")
          ->Add(outcome.queries_run);
      if (outcome.diverged) {
        ++divergences;
        metrics.counter("fuzz.divergences")->Add(1);
        std::fprintf(stderr, "%s\n", outcome.report.c_str());
      }
      std::fprintf(stderr,
                   "  ... concurrent round %llu/%llu: %zu queries x %llu "
                   "sessions, %s\n",
                   static_cast<unsigned long long>(round + 1),
                   static_cast<unsigned long long>(rounds),
                   outcome.queries_run,
                   static_cast<unsigned long long>(args.sessions),
                   outcome.diverged ? "DIVERGED" : "ok");
    }
  }

  // ---- Phase 4: DDL-interleaved cache differential. ----
  if (args.ddl_churn > 0) {
    // Several catalogs, splitting the round budget: catalog variety
    // matters as much as stream length for cache-keying bugs.
    const uint64_t catalogs = args.ddl_churn < 100 ? 1 : 4;
    const uint64_t per_catalog = (args.ddl_churn + catalogs - 1) / catalogs;
    for (uint64_t c = 0; c < catalogs; ++c) {
      const uint64_t catalog_seed = args.seed * 9000011ULL + c;
      const CatalogSpec catalog = GenerateCatalog(catalog_seed);
      const CacheDiffOutcome outcome =
          RunCacheDiffRounds(catalog, args.seed + c, per_catalog);
      queries_run += outcome.statements_run;
      metrics.counter("fuzz.cache_diff_statements")
          ->Add(outcome.statements_run);
      if (outcome.diverged) {
        ++divergences;
        metrics.counter("fuzz.divergences")->Add(1);
        std::fprintf(stderr, "%s\n", outcome.report.c_str());
      }
      std::fprintf(stderr,
                   "  ... cache-diff catalog %llu/%llu: %zu statements, %s\n",
                   static_cast<unsigned long long>(c + 1),
                   static_cast<unsigned long long>(catalogs),
                   outcome.statements_run,
                   outcome.diverged ? "DIVERGED" : "ok");
    }
  }

  // ---- Phase 5: persistence — close, reopen, compare. ----
  if (args.reopen > 0) {
    namespace fs = std::filesystem;
    auto run_rows = [](Database& db,
                       const std::string& sql) -> Result<RowSet> {
      Result<ScriptResult> script = db.Execute(sql);
      if (!script.ok()) return script.status();
      if (!script->has_results()) return RowSet{};
      return Normalized(script->result_sets.back().rows);
    };
    for (uint64_t round = 0; round < args.reopen; ++round) {
      const uint64_t catalog_seed = args.seed * 11000027ULL + round;
      const CatalogSpec catalog = GenerateCatalog(catalog_seed);
      std::string dir = "/tmp/radb_fuzz_reopen_XXXXXX";
      if (::mkdtemp(dir.data()) == nullptr) {
        std::fprintf(stderr, "reopen round %llu: mkdtemp failed\n",
                     static_cast<unsigned long long>(round));
        return 1;
      }
      Database::Config config;
      config.num_workers = 8;
      config.num_threads = 1;
      std::vector<std::string> sqls;
      {
        Rng rng(catalog_seed ^ 0x2545f4914f6cdd1dULL);
        for (int i = 0; i < 12; ++i) {
          sqls.push_back(GenerateQuery(catalog, &rng).ToSql());
        }
      }
      std::vector<Result<RowSet>> before;
      {
        auto db = Database::Open(dir, config);
        if (!db.ok()) {
          std::fprintf(stderr, "reopen round %llu: open failed: %s\n",
                       static_cast<unsigned long long>(round),
                       db.status().message().c_str());
          return 1;
        }
        const Status load = LoadCatalog(catalog, db->get());
        if (!load.ok()) {
          std::fprintf(stderr, "reopen round %llu: load failed: %s\n",
                       static_cast<unsigned long long>(round),
                       load.message().c_str());
          return 1;
        }
        for (const std::string& sql : sqls) {
          before.push_back(run_rows(**db, sql));
          ++queries_run;
          metrics.counter("fuzz.reopen_queries_run")->Add(1);
        }
        const Status close = (*db)->Close();
        if (!close.ok()) {
          std::fprintf(stderr, "reopen round %llu: close failed: %s\n",
                       static_cast<unsigned long long>(round),
                       close.message().c_str());
          return 1;
        }
      }
      {
        // Reopen from disk: NO LoadCatalog — recovery alone must
        // reproduce every result bit-identically.
        auto db = Database::Open(dir, config);
        if (!db.ok()) {
          std::fprintf(stderr, "reopen round %llu: reopen failed: %s\n",
                       static_cast<unsigned long long>(round),
                       db.status().message().c_str());
          return 1;
        }
        for (size_t i = 0; i < sqls.size(); ++i) {
          const Result<RowSet> after = run_rows(**db, sqls[i]);
          const bool same =
              before[i].ok() == after.ok() &&
              (!before[i].ok()
                   ? before[i].status().code() == after.status().code()
                   : SameCells(*before[i], *after));
          if (!same) {
            ++divergences;
            metrics.counter("fuzz.divergences")->Add(1);
            std::fprintf(stderr,
                         "REOPEN DIVERGENCE (catalog seed %llu) on:\n  %s\n",
                         static_cast<unsigned long long>(catalog_seed),
                         sqls[i].c_str());
          }
        }
      }
      std::error_code ec;
      fs::remove_all(dir, ec);
      std::fprintf(stderr, "  ... reopen round %llu/%llu: %zu queries\n",
                   static_cast<unsigned long long>(round + 1),
                   static_cast<unsigned long long>(args.reopen),
                   sqls.size());
    }
  }

  std::printf("%s\n", metrics.ToJson().c_str());
  std::printf("fuzz: %llu queries x %zu configs, %llu divergence(s)\n",
              static_cast<unsigned long long>(queries_run),
              StandardConfigs().size(),
              static_cast<unsigned long long>(divergences));
  return divergences == 0 ? 0 : 1;
}
