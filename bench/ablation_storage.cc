// Ablation: the persistent store (pager + buffer pool + B+ tree
// indexes) behind Database::Open. A standalone driver (no
// Google-benchmark harness, like ablation_cache). One tiles table of
// >= 1M rows is loaded into a persistent database and an in-memory
// oracle, then four phases:
//
//   full_scan — K point/slice lookups on the persistent database
//               with NO index: every probe is a full scan.
//   indexed   — CREATE INDEX tile_idx ON tiles (tr, tc), replay the
//               same probes. Every result is fingerprint-checked
//               bit-for-bit against the oracle; the full run FAILS
//               unless the indexed phase is >= 5x faster (the PR
//               acceptance gate).
//   reopen    — Close() then Open() the same directory. The store
//               must come back from checkpointed page files with
//               ZERO replayed WAL statements (no re-ingest), index
//               intact and still chosen by the optimizer.
//   small_pool— the reopened database gets a buffer pool far smaller
//               than the table, so scans stream segments through it
//               (evictions must be > 0). Aggregate scans and indexed
//               probes are fingerprint-checked against the all-in-RAM
//               oracle: larger-than-memory must be bit-identical.
//
// Emits BENCH_storage.json with per-phase wall/qps, the lookup
// speedup, reopen cost, and buffer-pool counters.
//
// Usage:
//   ablation_storage [--quick] [--rows N] [--lookups K]
//
// --quick shrinks the table and probe counts (the ctest `storage`
// smoke configuration); it keeps every correctness assertion but
// skips the 5x speedup gate, which is meaningless at toy sizes.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "obs/json.h"
#include "storage/serialize.h"

namespace {

using namespace radb;

constexpr uint64_t kSeed = 20170419;  // ICDE 2017

struct Args {
  size_t rows = 1'000'000;
  size_t lookups = 32;  // probes per lookup phase
  bool quick = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
      args.rows = 20'000;
      args.lookups = 8;
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      args.rows = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--lookups") == 0 && i + 1 < argc) {
      args.lookups = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--rows N] [--lookups K]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.rows == 0) args.rows = 1;
  if (args.lookups == 0) args.lookups = 1;
  return args;
}

/// Tile grid: row i lands at (tr, tc) = (i / kGridCols, i % kGridCols).
/// Values live on a 0.25 grid so parallel SUMs are exact in binary
/// floating point — aggregation order cannot matter, which is what
/// lets "bit-identical" hold across partitioned scans.
constexpr int64_t kGridCols = 1000;

double TileValue(size_t i) { return 0.25 * static_cast<double>(i % 16); }

Status LoadTiles(Database* db, size_t n) {
  RADB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE tiles (tr INTEGER, tc INTEGER, val DOUBLE)")
          .status());
  // Chunked bulk loads keep the staging vector small at 1M+ rows.
  constexpr size_t kChunk = 100'000;
  std::vector<Row> rows;
  rows.reserve(std::min(n, kChunk));
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i) / kGridCols),
                    Value::Int(static_cast<int64_t>(i) % kGridCols),
                    Value::Double(TileValue(i))});
    if (rows.size() == kChunk) {
      RADB_RETURN_NOT_OK(db->BulkInsert("tiles", std::move(rows)));
      rows.clear();
    }
  }
  if (!rows.empty()) RADB_RETURN_NOT_OK(db->BulkInsert("tiles", std::move(rows)));
  return Status::OK();
}

/// The probe pool: point lookups and row slices on (tr, tc), plus a
/// banded aggregate. Every query either returns one row or carries an
/// ORDER BY, so fingerprints are order-stable across engines.
std::vector<std::string> LookupQueries(const Args& args) {
  const int64_t max_tr =
      static_cast<int64_t>(args.rows - 1) / kGridCols;
  std::vector<std::string> queries;
  Rng rng(kSeed ^ 0xa5a5a5a5ULL);
  for (size_t i = 0; i < args.lookups; ++i) {
    const int64_t tr = static_cast<int64_t>(rng.NextBelow(
        static_cast<uint64_t>(max_tr + 1)));
    const int64_t tc = static_cast<int64_t>(rng.NextBelow(kGridCols));
    switch (i % 3) {
      case 0:  // point lookup
        queries.push_back("SELECT tr, tc, val FROM tiles WHERE tr = " +
                          std::to_string(tr) + " AND tc = " +
                          std::to_string(tc));
        break;
      case 1:  // row slice, bounded
        queries.push_back("SELECT tc, val FROM tiles WHERE tr = " +
                          std::to_string(tr) + " AND tc >= " +
                          std::to_string(tc / 2) + " AND tc <= " +
                          std::to_string(tc / 2 + 16) + " ORDER BY tc");
        break;
      default:  // banded aggregate over one tile row
        queries.push_back("SELECT COUNT(*), SUM(val) FROM tiles WHERE tr = " +
                          std::to_string(tr));
        break;
    }
  }
  return queries;
}

/// Whole-table aggregates for the small-pool streaming phase: each
/// one walks every segment, so a 1M-row table grinds through the
/// tiny buffer pool end to end.
std::vector<std::string> ScanQueries(const Args& args) {
  const int64_t max_tr =
      static_cast<int64_t>(args.rows - 1) / kGridCols;
  return {
      "SELECT COUNT(*), SUM(val) FROM tiles",
      "SELECT COUNT(*), SUM(val) FROM tiles WHERE tc < " +
          std::to_string(kGridCols / 2),
      "SELECT COUNT(*) FROM tiles WHERE val > 1.0",
      "SELECT COUNT(*), SUM(val) FROM tiles WHERE tr >= " +
          std::to_string(max_tr / 2),
  };
}

/// Column metadata + row bytes (same contract as ablation_cache):
/// "bit-identical" covers schema as well as cell payloads.
std::string Fingerprint(const ResultSet& rs) {
  std::ostringstream os(std::ios::binary);
  for (const SlotInfo& c : rs.columns) {
    os << c.name << '\0' << c.type.ToString() << '\0';
  }
  for (const Row& row : rs.rows) WriteRowBinary(os, row);
  return os.str();
}

Database::Config MakeConfig() {
  Database::Config config;
  config.num_workers = 8;
  config.num_threads = 0;
  config.obs.enable_metrics = true;
  return config;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PhaseStats {
  std::string phase;
  size_t queries = 0;
  size_t mismatches = 0;
  size_t errors = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
};

void PrintPhase(const PhaseStats& p) {
  std::printf("%-10s queries=%-4zu wall=%8.3fs  qps=%10.1f  mismatches=%zu "
              "errors=%zu\n",
              p.phase.c_str(), p.queries, p.wall_seconds, p.qps, p.mismatches,
              p.errors);
}

/// Replays `queries`, fingerprint-checking each against `want`.
PhaseStats RunPhase(const std::string& name, Database* db,
                    const std::vector<std::string>& queries,
                    const std::vector<std::string>& want) {
  PhaseStats p;
  p.phase = name;
  const double start = NowSeconds();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto rs = db->Execute(queries[i]);
    ++p.queries;
    if (!rs.ok() || !rs->has_results()) {
      ++p.errors;
      if (!rs.ok()) {
        std::fprintf(stderr, "[%s] %s\n", name.c_str(),
                     rs.status().ToString().c_str());
      }
    } else if (Fingerprint(rs->last()) != want[i]) {
      ++p.mismatches;
      std::fprintf(stderr, "[%s] result diverged from oracle: %s\n",
                   name.c_str(), queries[i].c_str());
    }
  }
  p.wall_seconds = NowSeconds() - start;
  p.qps = p.wall_seconds > 0.0
              ? static_cast<double>(p.queries) / p.wall_seconds
              : 0.0;
  PrintPhase(p);
  return p;
}

/// Oracle answers from the all-in-RAM database.
std::vector<std::string> OracleFingerprints(
    Database* db, const std::vector<std::string>& queries, size_t* errors) {
  std::vector<std::string> want;
  for (const std::string& q : queries) {
    auto rs = db->Execute(q);
    if (!rs.ok() || !rs->has_results()) {
      ++*errors;
      want.push_back("");
      std::fprintf(stderr, "oracle query failed: %s\n", q.c_str());
    } else {
      want.push_back(Fingerprint(rs->last()));
    }
  }
  return want;
}

/// EXPLAIN must name the index — a silent fallback to full scans
/// would still pass the fingerprint checks, so plan shape is asserted
/// separately.
bool PlanUsesIndex(Database* db, const std::string& query) {
  auto rs = db->Execute("EXPLAIN " + query);
  if (!rs.ok() || !rs->has_results()) return false;
  for (const Row& row : rs->last().rows) {
    for (const Value& v : row) {
      if (v.ToString().find("tile_idx") != std::string::npos) return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const std::vector<std::string> lookups = LookupQueries(args);
  const std::vector<std::string> scans = ScanQueries(args);

  namespace fs = std::filesystem;
  char tmpl[] = "/tmp/radb_bench_storage_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string dir = tmpl;

  size_t mismatches = 0, errors = 0;
  std::vector<PhaseStats> entries;

  // The all-in-RAM oracle: same data, no index, no store.
  auto oracle = Database::InMemory(MakeConfig());
  if (!oracle.ok()) {
    std::fprintf(stderr, "oracle open failed: %s\n",
                 oracle.status().ToString().c_str());
    return 1;
  }
  if (Status s = LoadTiles(oracle->get(), args.rows); !s.ok()) {
    std::fprintf(stderr, "oracle load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::vector<std::string> want_lookups =
      OracleFingerprints(oracle->get(), lookups, &errors);
  const std::vector<std::string> want_scans =
      OracleFingerprints(oracle->get(), scans, &errors);

  // Persistent database, comfortable buffer pool: load + checkpoint.
  auto db = Database::Open(dir, MakeConfig());
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  const double load_start = NowSeconds();
  if (Status s = LoadTiles(db->get(), args.rows); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = (*db)->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double load_seconds = NowSeconds() - load_start;
  std::printf("loaded %zu rows into %s in %.3fs\n", args.rows, dir.c_str(),
              load_seconds);

  // full_scan: every probe walks the whole table.
  entries.push_back(RunPhase("full_scan", db->get(), lookups, want_lookups));

  // indexed: same probes through the B+ tree.
  if (auto rs = (*db)->Execute("CREATE INDEX tile_idx ON tiles (tr, tc)");
      !rs.ok()) {
    std::fprintf(stderr, "CREATE INDEX failed: %s\n",
                 rs.status().ToString().c_str());
    return 1;
  }
  if (!PlanUsesIndex(db->get(), lookups[0])) {
    std::fprintf(stderr, "FAIL: EXPLAIN does not mention tile_idx after "
                         "CREATE INDEX — optimizer never picked the index\n");
    return 1;
  }
  entries.push_back(RunPhase("indexed", db->get(), lookups, want_lookups));
  const double speedup =
      entries[1].wall_seconds > 0.0
          ? entries[0].wall_seconds / entries[1].wall_seconds
          : 0.0;

  // reopen: close, then come back from page files alone — zero WAL
  // replay means zero re-ingest.
  if (Status s = (*db)->Close(); !s.ok()) {
    std::fprintf(stderr, "close failed: %s\n", s.ToString().c_str());
    return 1;
  }
  db->reset();
  Database::Config small = MakeConfig();
  // A pool a fraction of the table's footprint: scans must stream.
  small.storage.buffer_pool_bytes = args.quick ? (64u << 10) : (1u << 20);
  small.storage.segment_bytes = 16u << 10;
  const double reopen_start = NowSeconds();
  auto reopened = Database::Open(dir, small);
  const double reopen_seconds = NowSeconds() - reopen_start;
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  const storage::TableStore::Stats recovery =
      (*reopened)->table_store()->GetStats();
  PhaseStats reopen;
  reopen.phase = "reopen";
  reopen.queries = 0;
  reopen.wall_seconds = reopen_seconds;
  PrintPhase(reopen);
  std::printf("reopen: replayed_statements=%llu recovered=%s pool=%zuB\n",
              static_cast<unsigned long long>(recovery.replayed_statements),
              recovery.recovered ? "true" : "false",
              small.storage.buffer_pool_bytes);
  entries.push_back(reopen);
  if (!PlanUsesIndex(reopened->get(), lookups[0])) {
    std::fprintf(stderr,
                 "FAIL: tile_idx not chosen by the optimizer after reopen\n");
    return 1;
  }

  // small_pool: whole-table aggregates + indexed probes streaming
  // through a pool far smaller than the table.
  PhaseStats pool_scans =
      RunPhase("small_pool", reopened->get(), scans, want_scans);
  PhaseStats pool_lookups =
      RunPhase("pool_probe", reopened->get(), lookups, want_lookups);
  const storage::BufferPool::Stats pool =
      (*reopened)->table_store()->pool()->GetStats();
  std::printf("buffer pool: budget=%zuB cached=%zuB entries=%zu hits=%llu "
              "misses=%llu evictions=%llu\n",
              pool.budget_bytes, pool.cached_bytes, pool.entries,
              static_cast<unsigned long long>(pool.hits),
              static_cast<unsigned long long>(pool.misses),
              static_cast<unsigned long long>(pool.evictions));
  entries.push_back(pool_scans);
  entries.push_back(pool_lookups);

  (void)(*reopened)->Close();
  reopened->reset();
  std::error_code ec;
  fs::remove_all(dir, ec);

  for (const PhaseStats& p : entries) {
    mismatches += p.mismatches;
    errors += p.errors;
  }

  std::ofstream os("BENCH_storage.json", std::ios::trunc);
  os << "{\"figure\":\"storage\",\"rows\":" << args.rows
     << ",\"lookups\":" << args.lookups
     << ",\"load_seconds\":" << obs::JsonNumber(load_seconds)
     << ",\"lookup_speedup\":" << obs::JsonNumber(speedup)
     << ",\"reopen_seconds\":" << obs::JsonNumber(reopen_seconds)
     << ",\"replayed_statements\":" << recovery.replayed_statements
     << ",\"pool_budget_bytes\":" << small.storage.buffer_pool_bytes
     << ",\"pool_evictions\":" << pool.evictions
     << ",\"mismatches\":" << mismatches << ",\"errors\":" << errors
     << ",\"entries\":[\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    const PhaseStats& p = entries[i];
    os << "{\"phase\":\"" << p.phase << "\",\"queries\":" << p.queries
       << ",\"wall_seconds\":" << obs::JsonNumber(p.wall_seconds)
       << ",\"qps\":" << obs::JsonNumber(p.qps)
       << ",\"mismatches\":" << p.mismatches << ",\"errors\":" << p.errors
       << "}" << (i + 1 == entries.size() ? "\n" : ",\n");
  }
  os << "]}\n";

  std::printf("indexed lookup speedup over full scan: %.2fx\n", speedup);
  if (mismatches + errors > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu mismatched / %zu errored results — persistent "
                 "execution diverged from the in-RAM oracle\n",
                 mismatches, errors);
    return 1;
  }
  if (recovery.replayed_statements != 0) {
    std::fprintf(stderr,
                 "FAIL: reopen replayed %llu WAL statements — a clean close "
                 "must come back from page files with zero re-ingest\n",
                 static_cast<unsigned long long>(
                     recovery.replayed_statements));
    return 1;
  }
  if (pool.evictions == 0) {
    std::fprintf(stderr, "FAIL: zero buffer-pool evictions — the workload "
                         "never outgrew the pool, so the larger-than-RAM "
                         "claim was not exercised\n");
    return 1;
  }
  if (!args.quick && speedup < 5.0) {
    std::fprintf(stderr, "FAIL: indexed speedup %.2fx < 5x acceptance "
                         "threshold\n",
                 speedup);
    return 1;
  }
  std::printf("all results bit-identical across full scans, index scans, "
              "restart, and larger-than-pool streaming\n");
  return 0;
}
