#ifndef RADB_BENCH_BENCH_UTIL_H_
#define RADB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "workloads/computations.h"
#include "workloads/datagen.h"

namespace radb::bench {

/// Simulated cluster width, standing in for the paper's 10 machines.
constexpr size_t kWorkers = 8;
constexpr uint64_t kSeed = 20170419;  // ICDE 2017

/// Point counts per dimensionality, scaled down from the paper's 10^6
/// (Gram/regression) and 10^5 (distance) totals so each cell finishes
/// in seconds on a laptop. The tuple-based coding still blows up by
/// orders of magnitude at 1000 dims, which is the figure's story.
inline size_t GramPointsFor(size_t dims) {
  switch (dims) {
    case 10:
      return 1000;
    case 100:
      return 400;
    default:
      return 40;
  }
}

/// Linear regression needs n > d for a non-singular XᵀX (the paper
/// has n = 10^6 >> d everywhere).
inline size_t LinRegPointsFor(size_t dims) {
  switch (dims) {
    case 10:
      return 1000;
    case 100:
      return 400;
    default:
      return 1100;
  }
}

inline size_t DistancePointsFor(size_t dims) {
  // The paper keeps the same point count at every dimensionality
  // (10^4 per machine) and always has n >> d is false only at d=1000;
  // we keep n fixed so the n^2 pair phase dominates like it does at
  // production scale.
  (void)dims;
  return 1000;
}

/// Distance uses two fat blocks (paper: 100 blocks of 1000 points);
/// fewer blocks amortize the per-pair A*Bᵀ multiply of the §5 code.
inline size_t DistanceBlockFor(size_t n) { return n / 2; }

/// Block size for the blocked SQL coding (the paper groups 1000
/// points; we scale with n and keep block | n for the distance path).
inline size_t BlockFor(size_t n) { return n / 4; }

/// SystemML-style configuration: square blocks plus the hybrid
/// local/distributed threshold. 128 KiB reproduces the paper's
/// footnote shape: 10-dim datasets run in local mode (starred in
/// Fig. 1/2), the larger ones distribute.
inline systemml::DmlConfig SystemMlConfigFor(size_t n) {
  systemml::DmlConfig config;
  config.num_workers = kWorkers;
  config.block_size = BlockFor(n);
  config.local_threshold_bytes = 128u << 10;
  return config;
}

/// SciDB-style chunk (paper: 1000; scaled with n).
inline size_t ChunkFor(size_t n) { return BlockFor(n); }

/// Network model for the simulated-cluster runtime: the paper's EC2
/// m2.4xlarge machines (2009-era) have ~1 Gbit NICs, i.e. ~125 MiB/s
/// per worker of shuffle bandwidth.
constexpr double kShuffleBytesPerSecond = 125.0 * 1024 * 1024;

/// Estimated runtime on a real shared-nothing cluster: the slowest
/// worker per stage plus the time to push the shuffled bytes through
/// the per-worker NICs. In-process execution hides data movement
/// (shuffles are shared-pointer swaps), so this derived number is
/// what the paper's wall-clock figures correspond to.
inline double ClusterSeconds(const workloads::RunOutcome& out) {
  return out.simulated_seconds +
         static_cast<double>(out.bytes_shuffled) /
             (kShuffleBytesPerSecond * kWorkers);
}

/// Attaches the standard counters to a benchmark iteration.
inline void ReportOutcome(benchmark::State& state,
                          const workloads::RunOutcome& out) {
  state.SetIterationTime(out.wall_seconds);
  state.counters["sim_s"] = out.simulated_seconds;
  state.counters["cluster_s"] = ClusterSeconds(out);
  state.counters["shuffledMB"] =
      static_cast<double>(out.bytes_shuffled) / (1024.0 * 1024.0);
}

/// Collects one JSON record per (figure, label) and writes each figure
/// to `BENCH_<figure>.json` in the working directory when the process
/// exits — the machine-readable twin of the stdout tables. Repeated
/// iterations of the same benchmark overwrite their record, so the
/// file holds the last (post-warmup) run.
class BenchJsonRegistry {
 public:
  static BenchJsonRegistry& Instance() {
    static BenchJsonRegistry registry;
    return registry;
  }

  void Record(const std::string& figure, const std::string& label,
              const workloads::RunOutcome& out) {
    std::ostringstream os;
    os << "{\"label\":\"" << obs::JsonEscape(label) << "\""
       << ",\"failed\":" << (out.failed ? "true" : "false")
       << ",\"num_threads\":" << out.num_threads
       << ",\"wall_seconds\":" << obs::JsonNumber(out.wall_seconds)
       << ",\"simulated_seconds\":" << obs::JsonNumber(out.simulated_seconds)
       << ",\"cluster_seconds\":" << obs::JsonNumber(ClusterSeconds(out))
       << ",\"bytes_shuffled\":" << out.bytes_shuffled
       << ",\"spill_bytes\":" << out.spill_bytes
       << ",\"peak_tracked_bytes\":" << out.peak_tracked_bytes
       << ",\"metrics\":" << out.metrics.ToJson() << "}";
    auto& entries = figures_[figure];
    for (auto& [l, json] : entries) {
      if (l == label) {
        json = os.str();
        return;
      }
    }
    entries.emplace_back(label, os.str());
  }

  ~BenchJsonRegistry() {
    for (const auto& [figure, entries] : figures_) {
      std::ofstream os("BENCH_" + figure + ".json", std::ios::trunc);
      if (!os) continue;
      os << "{\"figure\":\"" << obs::JsonEscape(figure) << "\""
         << ",\"workers\":" << kWorkers << ",\"entries\":[\n";
      for (size_t i = 0; i < entries.size(); ++i) {
        os << entries[i].second << (i + 1 < entries.size() ? ",\n" : "\n");
      }
      os << "]}\n";
    }
  }

 private:
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      figures_;
};

/// ReportOutcome plus a record in the figure's BENCH_*.json.
inline void ReportOutcome(benchmark::State& state,
                          const workloads::RunOutcome& out,
                          const std::string& figure,
                          const std::string& label) {
  ReportOutcome(state, out);
  BenchJsonRegistry::Instance().Record(figure, label, out);
}

}  // namespace radb::bench

#endif  // RADB_BENCH_BENCH_UTIL_H_
