// Ablation: how the blocked SQL coding responds to block size — the
// "key choice regarding the blocking or chunking of the matrices" the
// paper (§1) says its minimalist approach leaves to the programmer.
// Small blocks re-introduce per-tuple overhead; one huge block loses
// all parallelism (skew -> number of workers).
#include "bench/bench_util.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::ReferenceGram;
using workloads::SqlWorkload;

constexpr size_t kN = 800;
constexpr size_t kD = 200;

void BM_Ablation_GramBlockSize(benchmark::State& state) {
  const size_t block = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, kN, kD);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.GramBlock(block);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    if (out->gram.MaxAbsDiff(ReferenceGram(data)) > 1e-6) {
      state.SkipWithError("gram mismatch");
      break;
    }
    ReportOutcome(state, *out);
    // Skew of the *partial* (compute) aggregation stage: with few
    // blocks most workers idle (the paper's §5 observation at 100
    // blocks / 80 cores, in miniature). The final merge of a scalar
    // aggregate is a single-worker stage by design and is excluded.
    double max_skew = 1.0;
    for (const auto& op : out->metrics.operators) {
      if (op.name.find("Aggregate(partial)") != std::string::npos) {
        max_skew = std::max(max_skew, op.Skew());
      }
    }
    state.counters["agg_skew"] = max_skew;
    state.counters["blocks"] =
        static_cast<double>((kN + block - 1) / block);
  }
}

BENCHMARK(BM_Ablation_GramBlockSize)
    ->Arg(10)    // 80 tiny blocks
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)   // 8 blocks = 1 per worker
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)   // single block: no parallelism
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_DistanceBlockSize(benchmark::State& state) {
  const size_t block = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, kN, 50);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.DistanceBlock(block);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    auto expected = workloads::ReferenceDistance(data);
    if (!expected.ok() || out->distance.point_id != expected->point_id) {
      state.SkipWithError("distance mismatch");
      break;
    }
    ReportOutcome(state, *out);
    state.counters["blocks"] = static_cast<double>(kN / block);
  }
}

BENCHMARK(BM_Ablation_DistanceBlockSize)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
