// Figure 4: per-operator breakdown of the Gram computation at 1000
// dims, tuple-based vs vector-based, on a half-size cluster (the paper
// uses 5 of its 10 machines). The paper's headline finding: in the
// tuple-based coding it is the *aggregation*, not the join, that
// dominates — a tiny fixed cost per tuple multiplied by ~n·d² tuples.
#include <cstdio>

#include "bench/bench_util.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::SqlWorkload;

constexpr size_t kHalfWorkers = kWorkers / 2;
constexpr size_t kDims = 1000;

struct Breakdown {
  double scan = 0, join = 0, aggregate = 0, other = 0, total = 0;
};

Breakdown Decompose(const QueryMetrics& m) {
  Breakdown b;
  for (const OperatorMetrics& op : m.operators) {
    const double t = op.TotalSeconds();
    b.total += t;
    if (op.name.find("Join") != std::string::npos) {
      b.join += t;
    } else if (op.name.find("Aggregate") != std::string::npos) {
      b.aggregate += t;
    } else if (op.name.find("Scan") != std::string::npos) {
      b.scan += t;
    } else {
      b.other += t;
    }
  }
  return b;
}

void PrintBreakdown(const char* label, const Breakdown& b) {
  std::printf("%-18s scan %8.3fs | join %8.3fs | aggregate %8.3fs | "
              "other %8.3fs | total %8.3fs\n",
              label, b.scan, b.join, b.aggregate, b.other, b.total);
}

void BM_Fig4_TupleGramBreakdown(benchmark::State& state) {
  const Dataset data =
      GenerateDataset(kSeed, GramPointsFor(kDims) / 2, kDims);
  for (auto _ : state) {
    SqlWorkload wl(kHalfWorkers);
    if (!wl.LoadTuple(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.GramTuple();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    const Breakdown b = Decompose(out->metrics);
    PrintBreakdown("tuple-based:", b);
    BenchJsonRegistry::Instance().Record("fig4_breakdown", "tuple_gram",
                                         *out);
    state.SetIterationTime(out->wall_seconds);
    state.counters["join_s"] = b.join;
    state.counters["agg_s"] = b.aggregate;
    state.counters["agg_share"] =
        b.total > 0 ? b.aggregate / b.total : 0.0;
  }
}

void BM_Fig4_VectorGramBreakdown(benchmark::State& state) {
  const Dataset data =
      GenerateDataset(kSeed, GramPointsFor(kDims) / 2, kDims);
  for (auto _ : state) {
    SqlWorkload wl(kHalfWorkers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.GramVector();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    const Breakdown b = Decompose(out->metrics);
    PrintBreakdown("vector-based:", b);
    BenchJsonRegistry::Instance().Record("fig4_breakdown", "vector_gram",
                                         *out);
    state.SetIterationTime(out->wall_seconds);
    state.counters["join_s"] = b.join;
    state.counters["agg_s"] = b.aggregate;
    state.counters["agg_share"] =
        b.total > 0 ? b.aggregate / b.total : 0.0;
  }
}

BENCHMARK(BM_Fig4_TupleGramBreakdown)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig4_VectorGramBreakdown)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
