// Ablation: plan/result caching for hot repeated traffic. A
// standalone closed-loop driver (no Google-benchmark harness, like
// ablation_concurrency): 8 sessions replay a small pool of
// deterministic read-only queries back to back against one Database,
// once with the plan + result caches enabled and once with both off.
// Three phases per mode:
//
//   cold  — single session, each hot query once (fills the caches in
//           the caches-on run);
//   warm  — the hit-heavy steady state: N sessions x per-session
//           closed loop over the hot pool. EVERY result — cache hit
//           or not — is fingerprint-checked bit-for-bit against a
//           caches-off cold-miss oracle;
//   churn — DDL/DML interleaving: each round mutates the catalog
//           (INSERT into a scanned table, or CREATE/DROP of a scratch
//           table) on BOTH the caches-on and caches-off databases,
//           then replays the hot pool on each and cross-checks the
//           two row-for-row. Measures how invalidation storms erode
//           the hit rate without ever serving stale rows.
//
// Emits BENCH_cache.json with per-phase qps, cache hit counters, and
// the warm-phase speedup. In the full configuration the driver FAILS
// unless warm caches-on qps is >= 5x warm caches-off qps (the PR
// acceptance gate) and every fingerprint matched.
//
// Usage:
//   ablation_cache [--quick] [--per-session N] [--churn-rounds R]
//
// --quick shrinks the dataset and loop counts (the ctest `cache`
// smoke configuration); it keeps the correctness assertions but skips
// the 5x throughput gate, which is meaningless at toy sizes.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "la/random.h"
#include "obs/json.h"
#include "service/session.h"
#include "storage/serialize.h"

namespace {

using namespace radb;
using service::SessionManager;

constexpr size_t kSessions = 8;
constexpr uint64_t kSeed = 20170419;  // ICDE 2017

struct Args {
  size_t dims = 32;
  size_t rows = 1500;
  size_t per_session = 40;  // warm-phase closed-loop queries/session
  size_t churn_rounds = 20;
  bool quick = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
      args.dims = 16;
      args.rows = 300;
      args.per_session = 6;
      args.churn_rounds = 4;
    } else if (std::strcmp(argv[i], "--per-session") == 0 && i + 1 < argc) {
      args.per_session = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--churn-rounds") == 0 && i + 1 < argc) {
      args.churn_rounds = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--per-session N] [--churn-rounds R]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.per_session == 0) args.per_session = 1;
  return args;
}

/// The hot pool: repeated-traffic read-only statements, all
/// deterministic and result-cacheable (no radb_* scans). The two LA
/// queries make a cold execution expensive enough that a warm result
/// hit is a different regime, not a rounding error.
std::vector<std::string> HotQueries() {
  return {
      // Gram matrix (Figure 1 vector coding).
      "SELECT SUM(outer_product(x.value, x.value)) FROM x_vm AS x",
      // Linear regression (§3.2 code, verbatim shape).
      "SELECT matrix_vector_multiply("
      "  matrix_inverse(SUM(outer_product(x.x_i, x.x_i))), "
      "  SUM(x.x_i * y.y_i)) "
      "FROM (SELECT id AS i, value AS x_i FROM x_vm) AS x, y "
      "WHERE x.i = y.i",
      // Scalar aggregate scan.
      "SELECT COUNT(*), SUM(y.y_i) FROM y WHERE y.y_i > 0.0",
      // Ordered top-of-table probe.
      "SELECT y.i, y.y_i FROM y WHERE y.i < 32 ORDER BY y.i",
      // Trivial count — the latency floor.
      "SELECT COUNT(*) FROM x_vm",
  };
}

Status LoadDataset(Database* db, size_t n, size_t d) {
  RADB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE x_vm (id INTEGER, value VECTOR[" +
                  std::to_string(d) + "])")
          .status());
  RADB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE y (i INTEGER, y_i DOUBLE)").status());
  Rng rng(kSeed);
  std::vector<Row> xs, ys;
  for (size_t i = 0; i < n; ++i) {
    xs.push_back({Value::Int(static_cast<int64_t>(i)),
                  Value::FromVector(la::RandomVector(rng, d))});
    ys.push_back({Value::Int(static_cast<int64_t>(i)),
                  Value::Double(rng.NextDouble() * 2.0 - 1.0)});
  }
  RADB_RETURN_NOT_OK(db->BulkInsert("x_vm", std::move(xs)));
  return db->BulkInsert("y", std::move(ys));
}

/// Column metadata + row bytes, same contract as ablation_concurrency:
/// a cached result replays stored columns as well as rows, so both
/// must be covered for "bit-identical" to mean anything.
std::string Fingerprint(const ResultSet& rs) {
  std::ostringstream os(std::ios::binary);
  for (const SlotInfo& c : rs.columns) {
    os << c.name << '\0' << c.type.ToString() << '\0';
  }
  for (const Row& row : rs.rows) WriteRowBinary(os, row);
  return os.str();
}

Database::Config MakeConfig(bool caches) {
  Database::Config config;
  config.num_workers = 8;
  config.num_threads = 8;
  config.obs.enable_metrics = true;
  config.cache.enable_plan_cache = caches;
  config.cache.enable_result_cache = caches;
  config.telemetry.query_log_capacity = 8192;
  return config;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PhaseStats {
  std::string phase;
  bool caches = false;
  size_t queries = 0;
  size_t mismatches = 0;
  size_t errors = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  uint64_t result_hits = 0;  // delta over this phase
  uint64_t plan_hits = 0;
};

struct CacheCounters {
  uint64_t result_hits = 0, plan_hits = 0;
};

CacheCounters ReadCounters(Database* db) {
  obs::MetricsRegistry* m = db->metrics_registry();
  return {m->counter("cache.result_hits")->value(),
          m->counter("cache.plan_hits")->value()};
}

void FinishPhase(Database* db, const CacheCounters& before, double start,
                 PhaseStats* p) {
  p->wall_seconds = NowSeconds() - start;
  p->qps = p->wall_seconds > 0.0
               ? static_cast<double>(p->queries) / p->wall_seconds
               : 0.0;
  const CacheCounters after = ReadCounters(db);
  p->result_hits = after.result_hits - before.result_hits;
  p->plan_hits = after.plan_hits - before.plan_hits;
  std::printf("%-5s caches=%-3s  queries=%-5zu wall=%.3fs  qps=%9.1f  "
              "result_hits=%llu plan_hits=%llu  mismatches=%zu errors=%zu\n",
              p->phase.c_str(), p->caches ? "on" : "off", p->queries,
              p->wall_seconds, p->qps,
              static_cast<unsigned long long>(p->result_hits),
              static_cast<unsigned long long>(p->plan_hits), p->mismatches,
              p->errors);
}

/// cold: one session, each hot query once, results recorded (the
/// caches-off run's outputs double as the cold-miss oracle).
PhaseStats RunCold(Database* db, SessionManager* manager,
                   const std::vector<std::string>& queries, bool caches,
                   std::vector<std::string>* got_fingerprints) {
  PhaseStats p;
  p.phase = "cold";
  p.caches = caches;
  const CacheCounters before = ReadCounters(db);
  const double start = NowSeconds();
  auto session = manager->CreateSession();
  for (const std::string& q : queries) {
    auto rs = session->Execute(q);
    ++p.queries;
    if (!rs.ok() || !rs->has_results()) {
      ++p.errors;
      got_fingerprints->push_back("");
    } else {
      got_fingerprints->push_back(Fingerprint(rs->last()));
    }
  }
  FinishPhase(db, before, start, &p);
  return p;
}

/// warm: the hit-heavy steady state. Every result must match the
/// cold-miss oracle fingerprints bit for bit.
PhaseStats RunWarm(Database* db, SessionManager* manager,
                   const std::vector<std::string>& queries,
                   const std::vector<std::string>& want, bool caches,
                   size_t sessions, size_t per_session) {
  PhaseStats p;
  p.phase = "warm";
  p.caches = caches;
  p.queries = sessions * per_session;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> errors{0};
  const CacheCounters before = ReadCounters(db);
  const double start = NowSeconds();
  std::vector<std::thread> threads;
  for (size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      auto session = manager->CreateSession();
      for (size_t i = 0; i < per_session; ++i) {
        const size_t qi = (s + i) % queries.size();
        auto rs = session->Execute(queries[qi]);
        if (!rs.ok() || !rs->has_results()) {
          errors.fetch_add(1);
        } else if (Fingerprint(rs->last()) != want[qi]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  p.mismatches = mismatches.load();
  p.errors = errors.load();
  FinishPhase(db, before, start, &p);
  return p;
}

/// churn: mutate BOTH databases in lockstep, then replay the hot pool
/// on each and cross-check row for row. The caches-on side must
/// invalidate, never serve pre-mutation rows.
struct ChurnOutcome {
  PhaseStats on;   // timed replay on the caches-on database
  PhaseStats off;  // same replay on the caches-off reference
};

ChurnOutcome RunChurn(Database* on_db, SessionManager* on_mgr,
                      Database* off_db, SessionManager* off_mgr,
                      const std::vector<std::string>& queries,
                      size_t rounds) {
  ChurnOutcome out;
  out.on.phase = out.off.phase = "churn";
  out.on.caches = true;
  out.off.caches = false;
  const CacheCounters on_before = ReadCounters(on_db);
  const CacheCounters off_before = ReadCounters(off_db);
  auto on_session = on_mgr->CreateSession();
  auto off_session = off_mgr->CreateSession();
  double on_wall = 0.0, off_wall = 0.0;
  bool scratch_exists = false;
  for (size_t r = 0; r < rounds; ++r) {
    // The mutation: every round invalidates something a hot query
    // depends on, alternating DML against a scanned table with DDL
    // creating/dropping a scratch table.
    std::string ddl;
    if (r % 2 == 0) {
      ddl = "INSERT INTO y VALUES (" + std::to_string(1000000 + r) + ", " +
            std::to_string(0.25 * static_cast<double>(r % 8)) + ")";
    } else if (!scratch_exists) {
      ddl = "CREATE TABLE churn_scratch (k INTEGER)";
      scratch_exists = true;
    } else {
      ddl = "DROP TABLE churn_scratch";
      scratch_exists = false;
    }
    for (Database* db : {on_db, off_db}) {
      auto rs = db->Execute(ddl);
      if (!rs.ok()) {
        ++out.on.errors;
        std::fprintf(stderr, "churn mutation failed: %s\n",
                     rs.status().ToString().c_str());
        return out;
      }
    }
    for (const std::string& q : queries) {
      double t0 = NowSeconds();
      auto on_rs = on_session->Execute(q);
      on_wall += NowSeconds() - t0;
      t0 = NowSeconds();
      auto off_rs = off_session->Execute(q);
      off_wall += NowSeconds() - t0;
      ++out.on.queries;
      ++out.off.queries;
      if (!on_rs.ok() || !off_rs.ok() || !on_rs->has_results() ||
          !off_rs->has_results()) {
        ++out.on.errors;
      } else if (Fingerprint(on_rs->last()) != Fingerprint(off_rs->last())) {
        ++out.on.mismatches;
      }
    }
  }
  out.on.wall_seconds = on_wall;
  out.off.wall_seconds = off_wall;
  out.on.qps = on_wall > 0.0
                   ? static_cast<double>(out.on.queries) / on_wall
                   : 0.0;
  out.off.qps = off_wall > 0.0
                    ? static_cast<double>(out.off.queries) / off_wall
                    : 0.0;
  const CacheCounters on_after = ReadCounters(on_db);
  const CacheCounters off_after = ReadCounters(off_db);
  out.on.result_hits = on_after.result_hits - on_before.result_hits;
  out.on.plan_hits = on_after.plan_hits - on_before.plan_hits;
  out.off.result_hits = off_after.result_hits - off_before.result_hits;
  out.off.plan_hits = off_after.plan_hits - off_before.plan_hits;
  for (const PhaseStats* p : {&out.on, &out.off}) {
    std::printf("%-5s caches=%-3s  queries=%-5zu wall=%.3fs  qps=%9.1f  "
                "result_hits=%llu plan_hits=%llu  mismatches=%zu errors=%zu\n",
                p->phase.c_str(), p->caches ? "on" : "off", p->queries,
                p->wall_seconds, p->qps,
                static_cast<unsigned long long>(p->result_hits),
                static_cast<unsigned long long>(p->plan_hits), p->mismatches,
                p->errors);
  }
  return out;
}

void EmitEntry(std::ofstream& os, const PhaseStats& p, bool last) {
  os << "{\"phase\":\"" << p.phase << "\",\"caches\":"
     << (p.caches ? "true" : "false") << ",\"queries\":" << p.queries
     << ",\"wall_seconds\":" << obs::JsonNumber(p.wall_seconds)
     << ",\"qps\":" << obs::JsonNumber(p.qps)
     << ",\"result_hits\":" << p.result_hits
     << ",\"plan_hits\":" << p.plan_hits
     << ",\"mismatches\":" << p.mismatches << ",\"errors\":" << p.errors
     << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const std::vector<std::string> queries = HotQueries();

  // Two identically-loaded databases: caches on vs off. The off run's
  // cold pass is the cold-miss oracle every cache hit is held to.
  Database on_db(MakeConfig(/*caches=*/true));
  Database off_db(MakeConfig(/*caches=*/false));
  for (Database* db : {&on_db, &off_db}) {
    if (Status s = LoadDataset(db, args.rows, args.dims); !s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  SessionManager on_mgr(&on_db);
  SessionManager off_mgr(&off_db);

  std::vector<PhaseStats> entries;

  // cold — caches-off first: its outputs are the oracle.
  std::vector<std::string> want, on_cold;
  entries.push_back(RunCold(&off_db, &off_mgr, queries, false, &want));
  entries.push_back(RunCold(&on_db, &on_mgr, queries, true, &on_cold));
  size_t cold_mismatches = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (on_cold[i] != want[i]) ++cold_mismatches;
  }
  entries[1].mismatches += cold_mismatches;

  // warm — the hit-heavy steady state, both modes, against the
  // cold-miss oracle.
  PhaseStats warm_off = RunWarm(&off_db, &off_mgr, queries, want, false,
                                kSessions, args.per_session);
  PhaseStats warm_on = RunWarm(&on_db, &on_mgr, queries, want, true,
                               kSessions, args.per_session);
  entries.push_back(warm_off);
  entries.push_back(warm_on);

  // churn — DDL/DML interleaving in lockstep on both databases.
  ChurnOutcome churn = RunChurn(&on_db, &on_mgr, &off_db, &off_mgr, queries,
                                args.churn_rounds);
  entries.push_back(churn.off);
  entries.push_back(churn.on);

  const double speedup =
      warm_off.qps > 0.0 ? warm_on.qps / warm_off.qps : 0.0;
  size_t mismatches = 0, errors = 0;
  for (const PhaseStats& p : entries) {
    mismatches += p.mismatches;
    errors += p.errors;
  }

  std::ofstream os("BENCH_cache.json", std::ios::trunc);
  os << "{\"figure\":\"cache\",\"rows\":" << args.rows
     << ",\"dims\":" << args.dims << ",\"sessions\":" << kSessions
     << ",\"per_session\":" << args.per_session
     << ",\"churn_rounds\":" << args.churn_rounds
     << ",\"warm_speedup\":" << obs::JsonNumber(speedup)
     << ",\"mismatches\":" << mismatches << ",\"errors\":" << errors
     << ",\"entries\":[\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    EmitEntry(os, entries[i], i + 1 == entries.size());
  }
  os << "]}\n";

  std::printf("warm speedup (caches on vs off, %zu sessions): %.2fx\n",
              kSessions, speedup);
  if (mismatches + errors > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu mismatched / %zu errored results — a cache hit "
                 "diverged from cold-miss execution\n",
                 mismatches, errors);
    return 1;
  }
  if (warm_on.result_hits == 0) {
    std::fprintf(stderr, "FAIL: warm caches-on phase recorded zero result "
                         "hits — the workload never exercised the cache\n");
    return 1;
  }
  if (!args.quick && speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: warm speedup %.2fx < 5x acceptance threshold\n",
                 speedup);
    return 1;
  }
  std::printf("all results bit-identical across cache hits, cold misses, "
              "and DDL churn\n");
  return 0;
}
