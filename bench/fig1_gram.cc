// Figure 1: Gram matrix computation (G = XᵀX) across platforms and
// dimensionalities {10, 100, 1000}. Reproduces the paper's table
// shape: tuple-based SQL collapses at high dims, vector-based wins at
// low dims (blocking time is charged to the blocked coding), blocked
// SQL and the special-purpose engines converge at 1000 dims.
#include "bench/bench_util.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::ReferenceGram;
using workloads::RunOutcome;
using workloads::SqlWorkload;

void CheckGram(benchmark::State& state, const Dataset& data,
               const RunOutcome& out) {
  if (out.gram.MaxAbsDiff(ReferenceGram(data)) > 1e-6) {
    state.SkipWithError("gram result mismatch");
  }
}

void BM_Gram_TupleSimSQL(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, GramPointsFor(d), d);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadTuple(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.GramTuple();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckGram(state, data, *out);
    ReportOutcome(state, *out, "fig1_gram",
                  "tuple_simsql/" + std::to_string(d));
  }
}

void BM_Gram_VectorSimSQL(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, GramPointsFor(d), d);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.GramVector();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckGram(state, data, *out);
    ReportOutcome(state, *out, "fig1_gram",
                  "vector_simsql/" + std::to_string(d));
  }
}

void BM_Gram_BlockSimSQL(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = GramPointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.GramBlock(BlockFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckGram(state, data, *out);
    ReportOutcome(state, *out, "fig1_gram",
                  "block_simsql/" + std::to_string(d));
  }
}

void BM_Gram_SystemML(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = GramPointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    auto out = workloads::GramSystemML(data, SystemMlConfigFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckGram(state, data, *out);
    ReportOutcome(state, *out, "fig1_gram",
                  "system_m_l/" + std::to_string(d));
  }
}

void BM_Gram_SciDB(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = GramPointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    auto out = workloads::GramSciDB(data, kWorkers, ChunkFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckGram(state, data, *out);
    ReportOutcome(state, *out, "fig1_gram",
                  "sci_d_b/" + std::to_string(d));
  }
}

void BM_Gram_SparkMllib(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, GramPointsFor(d), d);
  for (auto _ : state) {
    auto out = workloads::GramSpark(data, kWorkers);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckGram(state, data, *out);
    ReportOutcome(state, *out, "fig1_gram",
                  "spark_mllib/" + std::to_string(d));
  }
}

#define GRAM_BENCH(fn)                                           \
  BENCHMARK(fn)                                                  \
      ->Arg(10)                                                  \
      ->Arg(100)                                                 \
      ->Arg(1000)                                                \
      ->UseManualTime()                                          \
      ->Iterations(1)                                            \
      ->Unit(benchmark::kMillisecond)

GRAM_BENCH(BM_Gram_TupleSimSQL);
GRAM_BENCH(BM_Gram_VectorSimSQL);
GRAM_BENCH(BM_Gram_BlockSimSQL);
GRAM_BENCH(BM_Gram_SystemML);
GRAM_BENCH(BM_Gram_SciDB);
GRAM_BENCH(BM_Gram_SparkMllib);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
