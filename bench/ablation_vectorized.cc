// Ablation: vectorized columnar execution (DESIGN.md §13). Sweeps
// {row engine, batch engine at vectorized_batch_rows 256/1024/4096}
// over the Figure 1 Gram computation. The tuple coding is the
// interesting case: its self-join explodes to n·d² rows that feed a
// scalar GROUP BY / SUM(x1.value * x2.value) aggregate — exactly the
// pipeline the batch engine takes over (the join itself stays on the
// row engine as the pipeline boundary). The vector coding's
// SUM(outer_product(...)) is LA-typed, so it must fall back to the
// row engine untouched — swept here as the fallback-parity check.
// Every run is cross-checked bit-for-bit against the row engine's
// result (exact equality, the §13 identity contract, not a
// tolerance). Emits BENCH_vectorized.json.
#include "bench/bench_util.h"

#include "la/matrix.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::SqlWorkload;

Database::Config ConfigFor(bool vectorized, size_t batch_rows) {
  Database::Config config;
  config.num_workers = kWorkers;
  config.num_threads = kWorkers;
  config.enable_vectorized = vectorized;
  config.vectorized_batch_rows = batch_rows;
  return config;
}

// Row-engine reference Gram per dimensionality, computed once; every
// batch-engine run must match it exactly.
const la::Matrix& ReferenceGramTuple(size_t dims) {
  static std::map<size_t, la::Matrix>* refs = new std::map<size_t, la::Matrix>;
  auto it = refs->find(dims);
  if (it == refs->end()) {
    const Dataset data = GenerateDataset(kSeed, GramPointsFor(dims), dims);
    SqlWorkload wl(ConfigFor(false, 1024));
    la::Matrix gram;
    if (wl.LoadTuple(data).ok()) {
      auto out = wl.GramTuple();
      if (out.ok()) gram = std::move(out->gram);
    }
    it = refs->emplace(dims, std::move(gram)).first;
  }
  return it->second;
}

const la::Matrix& ReferenceGramVector(size_t dims) {
  static std::map<size_t, la::Matrix>* refs = new std::map<size_t, la::Matrix>;
  auto it = refs->find(dims);
  if (it == refs->end()) {
    const Dataset data = GenerateDataset(kSeed, GramPointsFor(dims), dims);
    SqlWorkload wl(ConfigFor(false, 1024));
    la::Matrix gram;
    if (wl.LoadVector(data).ok()) {
      auto out = wl.GramVector();
      if (out.ok()) gram = std::move(out->gram);
    }
    it = refs->emplace(dims, std::move(gram)).first;
  }
  return it->second;
}

std::string Label(const char* coding, size_t dims, bool vectorized,
                  size_t batch_rows) {
  std::string label = std::string(coding) + " d=" + std::to_string(dims);
  if (vectorized) {
    label += " batch=" + std::to_string(batch_rows);
  } else {
    label += " row";
  }
  return label;
}

/// One sweep cell: run the coding under the given engine, cross-check
/// against the row reference, report into BENCH_vectorized.json.
void RunCell(benchmark::State& state, const char* coding, bool vectorized) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const size_t batch_rows = static_cast<size_t>(state.range(1));
  const bool tuple = std::string(coding) == "tuple";
  const Dataset data = GenerateDataset(kSeed, GramPointsFor(dims), dims);
  const la::Matrix& ref =
      tuple ? ReferenceGramTuple(dims) : ReferenceGramVector(dims);
  for (auto _ : state) {
    SqlWorkload wl(ConfigFor(vectorized, batch_rows));
    Status load = tuple ? wl.LoadTuple(data) : wl.LoadVector(data);
    if (!load.ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = tuple ? wl.GramTuple() : wl.GramVector();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    if (out->gram.MaxAbsDiff(ref) != 0.0) {
      state.SkipWithError("batch result differs from row engine");
      break;
    }
    ReportOutcome(state, *out, "vectorized",
                  Label(coding, dims, vectorized, batch_rows));
    state.counters["batch_rows"] =
        vectorized ? static_cast<double>(batch_rows) : 0.0;
  }
}

void BM_Ablation_GramTupleRow(benchmark::State& state) {
  RunCell(state, "tuple", /*vectorized=*/false);
}

void BM_Ablation_GramTupleBatch(benchmark::State& state) {
  RunCell(state, "tuple", /*vectorized=*/true);
}

void BM_Ablation_GramVectorRow(benchmark::State& state) {
  RunCell(state, "vector", /*vectorized=*/false);
}

// The LA-typed aggregate is not batch-capable: this cell measures the
// fallback overhead (should be none) and proves identity through it.
void BM_Ablation_GramVectorBatchFallback(benchmark::State& state) {
  RunCell(state, "vector", /*vectorized=*/true);
}

BENCHMARK(BM_Ablation_GramTupleRow)
    ->Args({10, 0})
    ->Args({100, 0})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Ablation_GramTupleBatch)
    ->Args({10, 256})
    ->Args({10, 1024})
    ->Args({10, 4096})
    ->Args({100, 256})
    ->Args({100, 1024})
    ->Args({100, 4096})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Ablation_GramVectorRow)
    ->Args({100, 0})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Ablation_GramVectorBatchFallback)
    ->Args({100, 1024})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
