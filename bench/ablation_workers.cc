// Ablation: simulated cluster width. Reproduces the paper's §5
// load-balancing observation: with randomized hash partitioning, a
// fixed number of coarse work units (100 blocked matrices on 80
// cores) leaves some workers with 4-5 units while most finish early —
// visible here as the skew (max/mean worker time) growing with the
// worker count while the simulated parallel time stops improving.
#include "bench/bench_util.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::SqlWorkload;

constexpr size_t kN = 800;
constexpr size_t kD = 100;
constexpr size_t kBlock = 50;  // 16 work units, like 100 blocks / 80 cores

void BM_Ablation_WorkersGramBlock(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, kN, kD);
  for (auto _ : state) {
    SqlWorkload wl(workers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.GramBlock(kBlock);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    ReportOutcome(state, *out);
    double max_skew = 1.0;
    for (const auto& op : out->metrics.operators) {
      if (op.name.find("Aggregate(partial)") != std::string::npos) {
        max_skew = std::max(max_skew, op.Skew());
      }
    }
    state.counters["partial_skew"] = max_skew;
    state.counters["workers"] = static_cast<double>(workers);
  }
}

BENCHMARK(BM_Ablation_WorkersGramBlock)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_WorkersGramVector(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, kN, kD);
  for (auto _ : state) {
    SqlWorkload wl(workers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.GramVector();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    ReportOutcome(state, *out);
    // One fine-grained unit per point: skew stays near 1 at any width
    // — the contrast with the blocked run above.
    double max_skew = 1.0;
    for (const auto& op : out->metrics.operators) {
      if (op.name.find("Aggregate(partial)") != std::string::npos) {
        max_skew = std::max(max_skew, op.Skew());
      }
    }
    state.counters["partial_skew"] = max_skew;
    state.counters["workers"] = static_cast<double>(workers);
  }
}

BENCHMARK(BM_Ablation_WorkersGramVector)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
