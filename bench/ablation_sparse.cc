// Ablation: sparse CSR kernels vs the dense kernels across a density
// sweep. A standalone driver (no Google-benchmark harness, like
// ablation_cache/ablation_storage): for each density in {0.001, 0.01,
// 0.1, 0.5} it draws square matrices with Bernoulli(density) nonzero
// cells on the exact 0.5-grid (so every product and partial sum is
// representable and "bit-identical" is a meaningful assertion), then
// times three kernels dense-vs-CSR:
//
//   spgemm — la::Multiply(A, B)        vs sparse::SpGemm(A, B)
//   gram   — la::TransposeSelfMultiply vs sparse::SpTransposeSelfMultiply
//   spmv   — la::MatrixVectorMultiply  vs sparse::SpMV
//
// EVERY sparse result is densified and compared cell-for-cell,
// EXACTLY (==, no epsilon), against the dense kernel's output — the
// same bit-identity contract the plus-times kernels promise in
// src/la/sparse/sparse.h. A min-plus SpGemm-vs-DenseMultiply
// cross-check rides along at each density so the semiring path is
// exercised too.
//
// Emits BENCH_sparse.json with per-(kernel, density) wall times and
// speedups. In the full configuration the driver FAILS unless every
// comparison matched and, at each density <= 0.01, the CSR spgemm and
// spmv kernels beat their dense counterparts by >= 5x (the PR
// acceptance gate).
//
// Usage:
//   ablation_sparse [--quick] [--dim N]
//
// --quick shrinks the matrices (the ctest `sparse` smoke
// configuration); it keeps the bit-identity assertions but skips the
// 5x throughput gate, which is meaningless at toy sizes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"
#include "la/sparse/sparse.h"
#include "la/vector.h"
#include "obs/json.h"

namespace {

using namespace radb;
namespace sp = radb::la::sparse;

constexpr uint64_t kSeed = 20170419;  // ICDE 2017
constexpr double kDensities[] = {0.001, 0.01, 0.1, 0.5};
constexpr double kGateDensity = 0.01;  // gate applies at densities <= this
constexpr double kGateSpeedup = 5.0;

struct Args {
  size_t dim = 512;
  bool quick = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
      args.dim = 96;
    } else if (std::strcmp(argv[i], "--dim") == 0 && i + 1 < argc) {
      args.dim = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--dim N]\n", argv[0]);
      std::exit(2);
    }
  }
  if (args.dim < 4) args.dim = 4;
  return args;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-call seconds: repeats `fn` until >= min_wall total (or
/// max_reps), so microsecond-scale sparse calls at density 0.001 get a
/// stable average instead of one noisy timer read.
template <typename Fn>
double TimePerCall(Fn&& fn, double min_wall = 0.02, size_t max_reps = 4096) {
  size_t reps = 0;
  const double start = NowSeconds();
  double elapsed = 0.0;
  while (reps < max_reps && (reps == 0 || elapsed < min_wall)) {
    fn();
    ++reps;
    elapsed = NowSeconds() - start;
  }
  return elapsed / static_cast<double>(reps);
}

/// Bernoulli(density) cells on the exact grid 0.5 * {±1..±4}, 0
/// excluded — the same generator family as the fuzzer's sparse
/// columns, so sums/products are exact in double and the min-plus
/// cross-check sees strictly positive magnitudes where it needs them.
la::Matrix RandomSparseDense(Rng* rng, size_t n, double density) {
  la::Matrix m(n, n);
  const uint64_t inv = static_cast<uint64_t>(1.0 / density + 0.5);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      if (rng->NextBelow(inv) != 0) continue;
      const uint64_t i = rng->NextBelow(8);
      m.At(r, c) = i < 4 ? (static_cast<double>(i) - 4.0) * 0.5
                         : (static_cast<double>(i) - 3.0) * 0.5;
    }
  }
  return m;
}

/// Edge-weight variant for the min-plus cross-check: strictly positive
/// grid 0.5 * {1..8} (a 0.0 cell must mean "no entry", never a weight).
la::Matrix RandomPositiveSparseDense(Rng* rng, size_t n, double density) {
  la::Matrix m(n, n);
  const uint64_t inv = static_cast<uint64_t>(1.0 / density + 0.5);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      if (rng->NextBelow(inv) != 0) continue;
      m.At(r, c) = 0.5 * static_cast<double>(rng->NextBelow(8) + 1);
    }
  }
  return m;
}

size_t CountMismatches(const la::Matrix& got, const la::Matrix& want) {
  if (got.rows() != want.rows() || got.cols() != want.cols()) return SIZE_MAX;
  size_t bad = 0;
  for (size_t r = 0; r < got.rows(); ++r) {
    for (size_t c = 0; c < got.cols(); ++c) {
      if (got.At(r, c) != want.At(r, c)) ++bad;  // exact, no epsilon
    }
  }
  return bad;
}

struct CellStats {
  std::string kernel;
  double density = 0.0;
  size_t nnz = 0;
  double dense_seconds = 0.0;
  double sparse_seconds = 0.0;
  double speedup = 0.0;
  size_t mismatches = 0;
};

void PrintCell(const CellStats& c) {
  std::printf("%-7s d=%-6g nnz=%-8zu dense=%10.3gs  sparse=%10.3gs  "
              "speedup=%8.2fx  mismatches=%zu\n",
              c.kernel.c_str(), c.density, c.nnz, c.dense_seconds,
              c.sparse_seconds, c.speedup, c.mismatches);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const size_t n = args.dim;
  std::vector<CellStats> cells;
  size_t total_mismatches = 0;
  std::vector<std::string> gate_failures;
  const sp::Semiring& pt = sp::PlusTimes();

  for (double density : kDensities) {
    Rng rng(kSeed + static_cast<uint64_t>(density * 1e6));
    const la::Matrix a = RandomSparseDense(&rng, n, density);
    const la::Matrix b = RandomSparseDense(&rng, n, density);
    const sp::CsrMatrix sa = sp::CsrMatrix::FromDense(a);
    const sp::CsrMatrix sb = sp::CsrMatrix::FromDense(b);
    std::vector<double> xs(n);
    for (double& v : xs) {
      v = 0.5 * static_cast<double>(rng.NextBelow(8) + 1);
    }
    const la::Vector x(std::move(xs));

    // spgemm: A * B, plus-times.
    {
      CellStats c{"spgemm", density, sa.nnz() + sb.nnz()};
      auto want = la::Multiply(a, b);
      auto got = sp::SpGemm(sa, sb, pt);
      if (!want.ok() || !got.ok()) {
        std::fprintf(stderr, "spgemm failed at d=%g\n", density);
        return 1;
      }
      c.mismatches = CountMismatches(got->ToDense(), *want);
      c.dense_seconds = TimePerCall([&] { (void)la::Multiply(a, b); });
      c.sparse_seconds = TimePerCall([&] { (void)sp::SpGemm(sa, sb, pt); });
      c.speedup = c.sparse_seconds > 0.0 ? c.dense_seconds / c.sparse_seconds
                                         : 0.0;
      cells.push_back(c);
    }

    // gram: Aᵀ * A, plus-times.
    {
      CellStats c{"gram", density, sa.nnz()};
      const la::Matrix want = la::TransposeSelfMultiply(a);
      const la::Matrix got = sp::SpTransposeSelfMultiply(sa, pt);
      c.mismatches = CountMismatches(got, want);
      c.dense_seconds =
          TimePerCall([&] { (void)la::TransposeSelfMultiply(a); });
      c.sparse_seconds =
          TimePerCall([&] { (void)sp::SpTransposeSelfMultiply(sa, pt); });
      c.speedup = c.sparse_seconds > 0.0 ? c.dense_seconds / c.sparse_seconds
                                         : 0.0;
      cells.push_back(c);
    }

    // spmv: A * x, plus-times. Vector compare is exact too.
    {
      CellStats c{"spmv", density, sa.nnz()};
      auto want = la::MatrixVectorMultiply(a, x);
      auto got = sp::SpMV(sa, x, pt);
      if (!want.ok() || !got.ok()) {
        std::fprintf(stderr, "spmv failed at d=%g\n", density);
        return 1;
      }
      for (size_t i = 0; i < n; ++i) {
        if ((*got)[i] != (*want)[i]) ++c.mismatches;
      }
      c.dense_seconds =
          TimePerCall([&] { (void)la::MatrixVectorMultiply(a, x); });
      c.sparse_seconds = TimePerCall([&] { (void)sp::SpMV(sa, x, pt); });
      c.speedup = c.sparse_seconds > 0.0 ? c.dense_seconds / c.sparse_seconds
                                         : 0.0;
      cells.push_back(c);
    }

    // Semiring cross-check (correctness only, not timed for the gate):
    // min-plus SpGemm over strictly positive weights must match the
    // dense semiring oracle exactly.
    {
      Rng wrng(kSeed ^ 0x5eed);
      const la::Matrix pa = RandomPositiveSparseDense(&wrng, n, density);
      const la::Matrix pb = RandomPositiveSparseDense(&wrng, n, density);
      auto sr = sp::SemiringByName("min_plus");
      auto want = sp::DenseMultiply(pa, pb, *sr);
      auto got = sp::SpGemm(sp::CsrMatrix::FromDense(pa),
                            sp::CsrMatrix::FromDense(pb), *sr);
      if (!want.ok() || !got.ok()) {
        std::fprintf(stderr, "min_plus spgemm failed at d=%g\n", density);
        return 1;
      }
      CellStats c{"minplus", density,
                  sp::DenseNnz(pa) + sp::DenseNnz(pb)};
      c.mismatches = CountMismatches(got->ToDense(), *want);
      cells.push_back(c);
    }

    for (size_t i = cells.size() - 4; i < cells.size(); ++i) {
      PrintCell(cells[i]);
      total_mismatches += cells[i].mismatches;
      const CellStats& c = cells[i];
      const bool gated = c.kernel == "spgemm" || c.kernel == "spmv";
      if (!args.quick && gated && density <= kGateDensity &&
          c.speedup < kGateSpeedup) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s at d=%g: %.2fx < %.0fx",
                      c.kernel.c_str(), density, c.speedup, kGateSpeedup);
        gate_failures.push_back(buf);
      }
    }
  }

  std::ofstream os("BENCH_sparse.json", std::ios::trunc);
  os << "{\"figure\":\"sparse\",\"dim\":" << n
     << ",\"gate_density\":" << obs::JsonNumber(kGateDensity)
     << ",\"gate_speedup\":" << obs::JsonNumber(kGateSpeedup)
     << ",\"mismatches\":" << total_mismatches << ",\"entries\":[\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellStats& c = cells[i];
    os << "{\"kernel\":\"" << c.kernel << "\",\"density\":"
       << obs::JsonNumber(c.density) << ",\"nnz\":" << c.nnz
       << ",\"dense_seconds\":" << obs::JsonNumber(c.dense_seconds)
       << ",\"sparse_seconds\":" << obs::JsonNumber(c.sparse_seconds)
       << ",\"speedup\":" << obs::JsonNumber(c.speedup)
       << ",\"mismatches\":" << c.mismatches << "}"
       << (i + 1 == cells.size() ? "\n" : ",\n");
  }
  os << "]}\n";

  if (total_mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu cells diverged from the dense kernels — the "
                 "bit-identity contract is broken\n",
                 total_mismatches);
    return 1;
  }
  for (const std::string& g : gate_failures) {
    std::fprintf(stderr, "FAIL: speedup gate: %s\n", g.c_str());
  }
  if (!gate_failures.empty()) return 1;
  std::printf("all sparse results bit-identical to the dense kernels%s\n",
              args.quick ? " (gate skipped in --quick)"
                         : "; >=5x gate held at d<=0.01");
  return 0;
}
