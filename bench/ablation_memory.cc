// Ablation: per-query memory budget. Sweeps
// Config::memory_budget_bytes over the Figure 1 Gram computation
// (vector and blocked codings) with cluster width held fixed, so the
// only variable is how much operator state may stay resident before
// buffers spill to disk (the 16 MB cell additionally runs at 1 and 8
// threads). Every budgeted run is
// cross-checked bit-for-bit against the unbudgeted reference: spill
// and replay must change peak memory only, never results. At the
// tightest setting the run is additionally required to have actually
// spilled — otherwise the sweep proves nothing. Emits
// BENCH_memory.json.
//
// Dataset sizes differ per coding on purpose. The vector coding's
// aggregate state is one d×d accumulator, so pressure comes from the
// ~20 MB of scanned vector rows and the 16 MB budget forces the scan
// buffers to spill. The blocked coding's ROWMATRIX grouping state is
// unspillable and roughly the size of the dataset, so its data must
// *fit* in 16 MB; spill pressure comes instead from the join/scan
// row buffers that are live at the same time as the growing state.
#include "bench/bench_util.h"

#include "la/matrix.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::SqlWorkload;

constexpr size_t kD = 100;
// ~830 bytes per vector row: 24k rows ≈ 19.8 MB of scanned state,
// comfortably past the 16 MB budget.
constexpr size_t kNVector = 24000;
// ~10 MB of rows → ~10 MB of unspillable ROWMATRIX state, leaving
// headroom under 16 MB while the buffered join around it spills.
constexpr size_t kNBlock = 12000;
constexpr size_t kBlock = 1500;  // 8 blocks of 1500×100

Database::Config ConfigFor(size_t budget_mb, size_t threads) {
  Database::Config config;
  config.num_workers = kWorkers;
  config.num_threads = threads;
  config.memory_budget_bytes = budget_mb << 20;  // 0 = unlimited
  return config;
}

// Unbudgeted reference results, computed once and compared against
// every budgeted run (exact equality — the spill-replay determinism
// contract, not a tolerance).
const la::Matrix& ReferenceGramVector(const Dataset& data) {
  static const la::Matrix* ref = [&] {
    SqlWorkload wl(ConfigFor(0, 8));
    if (!wl.LoadVector(data).ok()) return new la::Matrix();
    auto out = wl.GramVector();
    return new la::Matrix(out.ok() ? out->gram : la::Matrix());
  }();
  return *ref;
}

const la::Matrix& ReferenceGramBlock(const Dataset& data) {
  static const la::Matrix* ref = [&] {
    SqlWorkload wl(ConfigFor(0, 8));
    if (!wl.LoadVector(data).ok()) return new la::Matrix();
    auto out = wl.GramBlock(kBlock);
    return new la::Matrix(out.ok() ? out->gram : la::Matrix());
  }();
  return *ref;
}

void RunSweep(benchmark::State& state, bool blocked) {
  const size_t budget_mb = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  const Dataset data =
      GenerateDataset(kSeed, blocked ? kNBlock : kNVector, kD);
  const la::Matrix& ref =
      blocked ? ReferenceGramBlock(data) : ReferenceGramVector(data);
  for (auto _ : state) {
    SqlWorkload wl(ConfigFor(budget_mb, threads));
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = blocked ? wl.GramBlock(kBlock) : wl.GramVector();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    if (out->gram.MaxAbsDiff(ref) != 0.0) {
      state.SkipWithError("result differs from unbudgeted reference");
      break;
    }
    if (budget_mb == 16 && out->spill_bytes == 0) {
      state.SkipWithError("16MB budget run did not spill");
      break;
    }
    const std::string coding = blocked ? "block" : "vector";
    const std::string label =
        (budget_mb == 0 ? "unlimited" : std::to_string(budget_mb) + "MB") +
        " threads=" + std::to_string(threads);
    ReportOutcome(state, *out, "memory", coding + " budget=" + label);
    state.counters["budget_mb"] = static_cast<double>(budget_mb);
    state.counters["spillMB"] =
        static_cast<double>(out->spill_bytes) / (1024.0 * 1024.0);
    state.counters["peakMB"] =
        static_cast<double>(out->peak_tracked_bytes) / (1024.0 * 1024.0);
  }
}

void BM_Ablation_MemoryGramVector(benchmark::State& state) {
  RunSweep(state, /*blocked=*/false);
}

void BM_Ablation_MemoryGramBlock(benchmark::State& state) {
  RunSweep(state, /*blocked=*/true);
}

// Args are {budget in MB (0 = unlimited), threads}. The tightest
// budget also runs single-threaded: bit-identity must hold at any
// budget AND any thread count, against the same 8-thread reference.
BENCHMARK(BM_Ablation_MemoryGramVector)
    ->Args({0, 8})
    ->Args({256, 8})
    ->Args({64, 8})
    ->Args({16, 8})
    ->Args({16, 1})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Ablation_MemoryGramBlock)
    ->Args({0, 8})
    ->Args({256, 8})
    ->Args({64, 8})
    ->Args({16, 8})
    ->Args({16, 1})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
