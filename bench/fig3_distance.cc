// Figure 3: the distance computation — for each point x_i, the minimum
// of d²_A(x_i, x') = x_iᵀ A x' over x' ≠ x_i, then the point with the
// maximal minimum. The tuple-based coding "Fails" (paper Figure 3):
// at the paper's production scale its pre-aggregation intermediate is
// ~n²·d ≈ 10^13 tuples, which we model with a tuple budget.
#include "bench/bench_util.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::ReferenceDistance;
using workloads::RunOutcome;
using workloads::SqlWorkload;

/// Budget chosen so the tuple coding fails at every dimensionality,
/// exactly as in the paper's Figure 3 (see EXPERIMENTS.md; a
/// correctness-scale run of the same SQL lives in workloads_test).
constexpr size_t kTupleBudget = 1'000'000;

void CheckDistance(benchmark::State& state, const Dataset& data,
                   const RunOutcome& out) {
  auto expected = ReferenceDistance(data);
  if (!expected.ok() || out.distance.point_id != expected->point_id ||
      std::abs(out.distance.value - expected->value) > 1e-6) {
    state.SkipWithError("distance result mismatch");
  }
}

void BM_Distance_TupleSimSQL(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, DistancePointsFor(d), d);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadTuple(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.DistanceTuple(kTupleBudget);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    if (out->failed) {
      // The paper's "Fail" row: report it as a skipped cell.
      state.SkipWithError(("Fail: " + out->fail_reason).c_str());
      break;
    }
    CheckDistance(state, data, *out);
    ReportOutcome(state, *out, "fig3_distance",
                  "tuple_simsql/" + std::to_string(d));
  }
}

void BM_Distance_VectorSimSQL(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, DistancePointsFor(d), d);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.DistanceVector();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckDistance(state, data, *out);
    ReportOutcome(state, *out, "fig3_distance",
                  "vector_simsql/" + std::to_string(d));
  }
}

void BM_Distance_BlockSimSQL(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = DistancePointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.DistanceBlock(DistanceBlockFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckDistance(state, data, *out);
    ReportOutcome(state, *out, "fig3_distance",
                  "block_simsql/" + std::to_string(d));
  }
}

void BM_Distance_SystemML(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = DistancePointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    auto out = workloads::DistanceSystemML(data, SystemMlConfigFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckDistance(state, data, *out);
    ReportOutcome(state, *out, "fig3_distance",
                  "system_m_l/" + std::to_string(d));
  }
}

void BM_Distance_SciDB(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = DistancePointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    auto out = workloads::DistanceSciDB(data, kWorkers, ChunkFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckDistance(state, data, *out);
    ReportOutcome(state, *out, "fig3_distance",
                  "sci_d_b/" + std::to_string(d));
  }
}

void BM_Distance_SparkMllib(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = DistancePointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    auto out = workloads::DistanceSpark(data, kWorkers, DistanceBlockFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckDistance(state, data, *out);
    ReportOutcome(state, *out, "fig3_distance",
                  "spark_mllib/" + std::to_string(d));
  }
}

#define DIST_BENCH(fn)                                           \
  BENCHMARK(fn)                                                  \
      ->Arg(10)                                                  \
      ->Arg(100)                                                 \
      ->Arg(1000)                                                \
      ->UseManualTime()                                          \
      ->Iterations(1)                                            \
      ->Unit(benchmark::kMillisecond)

DIST_BENCH(BM_Distance_TupleSimSQL);
DIST_BENCH(BM_Distance_VectorSimSQL);
DIST_BENCH(BM_Distance_BlockSimSQL);
DIST_BENCH(BM_Distance_SystemML);
DIST_BENCH(BM_Distance_SciDB);
DIST_BENCH(BM_Distance_SparkMllib);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
