// Figure 2: least-squares linear regression β̂ = (XᵀX)⁻¹Xᵀy across
// platforms and dimensionalities {10, 100, 1000}.
#include "bench/bench_util.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::ReferenceLinReg;
using workloads::RunOutcome;
using workloads::SqlWorkload;

void CheckBeta(benchmark::State& state, const Dataset& data,
               const RunOutcome& out) {
  auto expected = ReferenceLinReg(data);
  if (!expected.ok() || out.beta.MaxAbsDiff(*expected) > 1e-5) {
    state.SkipWithError("beta result mismatch");
  }
}

void BM_LinReg_TupleSimSQL(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  if (d >= 1000) {
    // A solvable system needs n > d = 1000; the tuple coding's
    // XᵀX self-join then produces n*d^2 > 10^9 intermediate tuples,
    // far beyond the bench time budget. The paper's measured value
    // for this cell is 05:05:22 (vs 6m35s vector) — same story as
    // our 100-dim ratio, amplified.
    state.SkipWithError(
        "skipped: tuple coding at 1000 dims exceeds the time budget "
        "(paper: 05:05:22)");
    return;
  }
  const Dataset data = GenerateDataset(kSeed, LinRegPointsFor(d), d);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadTuple(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.LinRegTuple();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckBeta(state, data, *out);
    ReportOutcome(state, *out, "fig2_linreg",
                  "tuple_simsql/" + std::to_string(d));
  }
}

void BM_LinReg_VectorSimSQL(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, LinRegPointsFor(d), d);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.LinRegVector();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckBeta(state, data, *out);
    ReportOutcome(state, *out, "fig2_linreg",
                  "vector_simsql/" + std::to_string(d));
  }
}

void BM_LinReg_BlockSimSQL(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = LinRegPointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    SqlWorkload wl(kWorkers);
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = wl.LinRegBlock(BlockFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckBeta(state, data, *out);
    ReportOutcome(state, *out, "fig2_linreg",
                  "block_simsql/" + std::to_string(d));
  }
}

void BM_LinReg_SystemML(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = LinRegPointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    auto out = workloads::LinRegSystemML(data, SystemMlConfigFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckBeta(state, data, *out);
    ReportOutcome(state, *out, "fig2_linreg",
                  "system_m_l/" + std::to_string(d));
  }
}

void BM_LinReg_SciDB(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = LinRegPointsFor(d);
  const Dataset data = GenerateDataset(kSeed, n, d);
  for (auto _ : state) {
    auto out = workloads::LinRegSciDB(data, kWorkers, ChunkFor(n));
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckBeta(state, data, *out);
    ReportOutcome(state, *out, "fig2_linreg",
                  "sci_d_b/" + std::to_string(d));
  }
}

void BM_LinReg_SparkMllib(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, LinRegPointsFor(d), d);
  for (auto _ : state) {
    auto out = workloads::LinRegSpark(data, kWorkers);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    CheckBeta(state, data, *out);
    ReportOutcome(state, *out, "fig2_linreg",
                  "spark_mllib/" + std::to_string(d));
  }
}

#define LINREG_BENCH(fn)                                         \
  BENCHMARK(fn)                                                  \
      ->Arg(10)                                                  \
      ->Arg(100)                                                 \
      ->Arg(1000)                                                \
      ->UseManualTime()                                          \
      ->Iterations(1)                                            \
      ->Unit(benchmark::kMillisecond)

LINREG_BENCH(BM_LinReg_TupleSimSQL);
LINREG_BENCH(BM_LinReg_VectorSimSQL);
LINREG_BENCH(BM_LinReg_BlockSimSQL);
LINREG_BENCH(BM_LinReg_SystemML);
LINREG_BENCH(BM_LinReg_SciDB);
LINREG_BENCH(BM_LinReg_SparkMllib);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
