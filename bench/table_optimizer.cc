// §4.1 plan-choice experiment: R(r_rid, MATRIX[10][K]),
// S(s_sid, MATRIX[K][100]), T(t_rid, t_sid), and
//   SELECT matrix_multiply(r_matrix, s_matrix)
//   FROM R, S, T WHERE r_rid = t_rid AND s_sid = t_sid.
// The paper argues a size-oblivious optimizer picks π((S ⋈ T) ⋈ R)
// and moves ~80 GB, while the LA-aware plan (π(S x R)) ⋈ T moves
// ~80 MB. We measure actual bytes produced by each executed plan.
#include <cstdio>

#include "api/database.h"
#include "bench/bench_util.h"

namespace radb::bench {
namespace {

constexpr size_t kK = 2000;  // the paper's 100000, scaled

Status Load(Database* db) {
  RADB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE r (r_rid INTEGER, r_matrix MATRIX[10][" +
                     std::to_string(kK) +
                     "]); "
                     "CREATE TABLE s (s_sid INTEGER, s_matrix MATRIX[" +
                     std::to_string(kK) +
                     "][100]); "
                     "CREATE TABLE t (t_rid INTEGER, t_sid INTEGER)")
          .status());
  std::vector<Row> r_rows, s_rows, t_rows;
  for (int i = 0; i < 20; ++i) {
    r_rows.push_back(
        {Value::Int(i), Value::FromMatrix(la::Matrix(10, kK, 0.25))});
    s_rows.push_back(
        {Value::Int(i), Value::FromMatrix(la::Matrix(kK, 100, 0.25))});
  }
  for (int i = 0; i < 200; ++i) {
    t_rows.push_back({Value::Int(i % 20), Value::Int((i * 7) % 20)});
  }
  RADB_RETURN_NOT_OK(db->BulkInsert("r", std::move(r_rows)));
  RADB_RETURN_NOT_OK(db->BulkInsert("s", std::move(s_rows)));
  return db->BulkInsert("t", std::move(t_rows));
}

constexpr const char* kQuery =
    "SELECT matrix_multiply(r_matrix, s_matrix) "
    "FROM r, s, t WHERE r_rid = t_rid AND s_sid = t_sid";

void RunPlan(benchmark::State& state, bool la_aware) {
  Database::Config config;
  config.num_workers = kWorkers;
  config.optimizer.la_aware_costing = la_aware;
  config.optimizer.enable_early_projection = la_aware;
  for (auto _ : state) {
    Database db(config);
    if (auto s = Load(&db); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    auto rs = db.Execute(kQuery);
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      break;
    }
    size_t bytes_out = 0;
    for (const auto& op : db.last_metrics().operators) {
      bytes_out += op.bytes_out;
    }
    const double shuffled =
        static_cast<double>(db.last_metrics().TotalBytesShuffled());
    // SimSQL is Hadoop-based: every operator boundary is materialized
    // to disk between MR jobs, so intermediate volume is the §4.1
    // cost. Model disk at ~100 MiB/s per worker on 2009-era EC2.
    constexpr double kDiskBytesPerSecond = 100.0 * 1024 * 1024;
    const double cluster_s =
        db.last_metrics().SimulatedParallelSeconds() +
        shuffled / (kShuffleBytesPerSecond * kWorkers) +
        static_cast<double>(bytes_out) / (kDiskBytesPerSecond * kWorkers);
    state.SetIterationTime(db.last_metrics().wall_seconds);
    state.counters["intermediateMB"] =
        static_cast<double>(bytes_out) / (1024.0 * 1024.0);
    state.counters["shuffledMB"] = shuffled / (1024.0 * 1024.0);
    state.counters["cluster_s"] = cluster_s;
    state.counters["rows"] = static_cast<double>(rs->last().num_rows());
    std::printf("%-24s intermediates %10.2f MiB, shuffled %10.2f MiB, "
                "wall %7.3fs, est. cluster %7.3fs\n",
                la_aware ? "LA-aware plan:" : "size-oblivious plan:",
                static_cast<double>(bytes_out) / (1024.0 * 1024.0),
                shuffled / (1024.0 * 1024.0),
                db.last_metrics().wall_seconds, cluster_s);
  }
}

void BM_Section41_LaAware(benchmark::State& state) {
  RunPlan(state, /*la_aware=*/true);
}
void BM_Section41_SizeOblivious(benchmark::State& state) {
  RunPlan(state, /*la_aware=*/false);
}

BENCHMARK(BM_Section41_LaAware)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Section41_SizeOblivious)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
