// Ablation: real execution threads. Sweeps Config::num_threads over
// the Figure 1 Gram computation (vector and blocked codings) with the
// simulated cluster width held fixed, so the only variable is how
// many pool threads the per-worker loops and LA kernels fan out
// onto. Each run is cross-checked against the 1-thread reference
// matrix bit-for-bit: the pool must change wall clock only, never
// results. Emits BENCH_threads.json.
//
// Note: the speedup ceiling is min(num_threads, hardware cores) — on
// a single-core container every setting measures pool overhead only.
#include "bench/bench_util.h"

#include "la/matrix.h"

namespace radb::bench {
namespace {

using workloads::Dataset;
using workloads::GenerateDataset;
using workloads::SqlWorkload;

// Large enough that the Gram aggregation dominates the fixed
// parse/plan cost and each of the 8 simulated workers carries a
// substantial partition.
constexpr size_t kN = 1600;
constexpr size_t kD = 200;
constexpr size_t kBlock = 200;  // 8 blocked work units for 8 workers

Database::Config ConfigFor(size_t threads) {
  Database::Config config;
  config.num_workers = kWorkers;
  config.num_threads = threads;
  return config;
}

// 1-thread reference results, computed once and compared against
// every multi-threaded run (exact equality — the determinism
// contract, not a tolerance).
const la::Matrix& ReferenceGramVector(const Dataset& data) {
  static const la::Matrix* ref = [&] {
    SqlWorkload wl(ConfigFor(1));
    if (!wl.LoadVector(data).ok()) return new la::Matrix();
    auto out = wl.GramVector();
    return new la::Matrix(out.ok() ? out->gram : la::Matrix());
  }();
  return *ref;
}

const la::Matrix& ReferenceGramBlock(const Dataset& data) {
  static const la::Matrix* ref = [&] {
    SqlWorkload wl(ConfigFor(1));
    if (!wl.LoadVector(data).ok()) return new la::Matrix();
    auto out = wl.GramBlock(kBlock);
    return new la::Matrix(out.ok() ? out->gram : la::Matrix());
  }();
  return *ref;
}

void RunSweep(benchmark::State& state, bool blocked) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateDataset(kSeed, kN, kD);
  const la::Matrix& ref =
      blocked ? ReferenceGramBlock(data) : ReferenceGramVector(data);
  for (auto _ : state) {
    SqlWorkload wl(ConfigFor(threads));
    if (!wl.LoadVector(data).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto out = blocked ? wl.GramBlock(kBlock) : wl.GramVector();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    if (out->gram.MaxAbsDiff(ref) != 0.0) {
      state.SkipWithError("result differs from 1-thread reference");
      break;
    }
    const std::string coding = blocked ? "block" : "vector";
    ReportOutcome(state, *out, "threads",
                  coding + " t=" + std::to_string(threads));
    state.counters["threads"] = static_cast<double>(threads);
  }
}

void BM_Ablation_ThreadsGramVector(benchmark::State& state) {
  RunSweep(state, /*blocked=*/false);
}

void BM_Ablation_ThreadsGramBlock(benchmark::State& state) {
  RunSweep(state, /*blocked=*/true);
}

BENCHMARK(BM_Ablation_ThreadsGramVector)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Ablation_ThreadsGramBlock)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace radb::bench

BENCHMARK_MAIN();
