#include <gtest/gtest.h>

#include "api/database.h"

#include "test_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "la/random.h"
#include "la/tiled.h"

namespace radb {
namespace {

constexpr double kTol = 1e-9;

// --- §3.1: typed declarations and compile-time size checking --------

TEST(SqlLaTest, SizeCheckingAtCompileTime) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE m (mat MATRIX[10][10], "
                            "vec VECTOR[100])")
                  .ok());
  // The paper's example: 10x10 matrix times a 100-vector must not
  // compile.
  auto bad = Exec(db, 
      "SELECT matrix_vector_multiply(m.mat, m.vec) AS res FROM m");
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);

  ASSERT_TRUE(Exec(db, "CREATE TABLE m2 (mat MATRIX[10][10], "
                            "vec VECTOR[10])")
                  .ok());
  auto good = db.PlanQuery(
      "SELECT matrix_vector_multiply(m2.mat, m2.vec) AS res FROM m2");
  ASSERT_TRUE(good.ok()) << good.status();
  // Output type is VECTOR[10], known statically.
  EXPECT_EQ((*good)->output[0].type.ToString(), "VECTOR[10]");
}

TEST(SqlLaTest, UnspecifiedDimsCompileButFailAtRuntime) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE m (mat MATRIX[10][10], "
                            "vec VECTOR[])")
                  .ok());
  // Compiles (vec size unknown), but a 7-vector fails at runtime.
  la::Matrix mat(10, 10, std::vector<double>(100, 1.0));
  ASSERT_TRUE(db.BulkInsert("m", {Row{Value::FromMatrix(mat),
                                      Value::FromVector(la::Vector(7))}})
                  .ok());
  auto rs = Exec(db, 
      "SELECT matrix_vector_multiply(m.mat, m.vec) FROM m");
  EXPECT_EQ(rs.status().code(), StatusCode::kDimensionMismatch);
}

// --- §3.2: overloaded arithmetic and aggregates ----------------------

TEST(SqlLaTest, HadamardProductOfColumn) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE m (mat MATRIX[2][2])").ok());
  ASSERT_TRUE(db.BulkInsert("m", {Row{Value::FromMatrix(
                                     la::Matrix(2, 2, {1, 2, 3, 4}))}})
                  .ok());
  auto rs = Exec(db, "SELECT mat * mat FROM m");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_DOUBLE_EQ(rs->at(0, 0).matrix().At(1, 1), 16.0);
}

TEST(SqlLaTest, GramMatrixViaSumOfOuterProducts) {
  // The paper's §3.2 Gram matrix listing.
  Database db;
  Rng rng(42);
  const size_t n = 50, d = 8;
  ASSERT_TRUE(Exec(db, "CREATE TABLE v (vec VECTOR[])").ok());
  la::Matrix x(n, d);
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    la::Vector p = la::RandomVector(rng, d);
    x.SetRow(i, p);
    rows.push_back(Row{Value::FromVector(std::move(p))});
  }
  ASSERT_TRUE(db.BulkInsert("v", std::move(rows)).ok());
  auto rs = Exec(db, "SELECT SUM(outer_product(vec, vec)) FROM v");
  ASSERT_TRUE(rs.ok()) << rs.status();
  auto gram = rs->ScalarMatrix();
  ASSERT_TRUE(gram.ok());
  EXPECT_LT(gram->MaxAbsDiff(la::TransposeSelfMultiply(x)), 1e-9);
}

TEST(SqlLaTest, ScalarBroadcastInSql) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE v (vec VECTOR[3], s DOUBLE)").ok());
  ASSERT_TRUE(db.BulkInsert(
                    "v", {Row{Value::FromVector(la::Vector(
                                  std::vector<double>{1, 2, 3})),
                              Value::Double(2.0)}})
                  .ok());
  auto rs = Exec(db, "SELECT vec * s + 1.0 FROM v");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).vector().values(),
            (std::vector<double>{3, 5, 7}));
}

// --- §3.3: moving between types --------------------------------------

TEST(SqlLaTest, VectorizeFromNormalizedTable) {
  // Paper: SELECT VECTORIZE(label_scalar(y_i, i)) FROM y
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE y (i INTEGER, y_i DOUBLE); "
                            "INSERT INTO y VALUES (0, 10.0), (2, 30.0)")
                  .ok());
  auto rs = Exec(db, "SELECT VECTORIZE(label_scalar(y_i, i)) FROM y");
  ASSERT_TRUE(rs.ok()) << rs.status();
  auto vec = rs->ScalarVector();
  ASSERT_TRUE(vec.ok());
  // Hole at index 1 is zero-filled; length = max label + 1.
  EXPECT_EQ(vec->values(), (std::vector<double>{10, 0, 30}));
}

TEST(SqlLaTest, TripleStoreToMatrixAndBack) {
  // Paper §3.3: mat(row, col, value) -> vecs view -> ROWMATRIX.
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE mat (row INTEGER, col INTEGER, "
                            "value DOUBLE)")
                  .ok());
  Rng rng(7);
  const size_t r = 4, c = 3;
  la::Matrix expected(r, c);
  std::vector<Row> rows;
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) {
      const double v = rng.Uniform(-1, 1);
      expected.At(i, j) = v;
      rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                         Value::Int(static_cast<int64_t>(j)),
                         Value::Double(v)});
    }
  }
  ASSERT_TRUE(db.BulkInsert("mat", std::move(rows)).ok());
  ASSERT_TRUE(Exec(db, 
                    "CREATE VIEW vecs AS "
                    "SELECT VECTORIZE(label_scalar(value, col)) AS vec, row "
                    "FROM mat GROUP BY row")
                  .ok());
  auto rs = Exec(db, 
      "SELECT ROWMATRIX(label_vector(vec, row)) FROM vecs");
  ASSERT_TRUE(rs.ok()) << rs.status();
  auto m = rs->ScalarMatrix();
  ASSERT_TRUE(m.ok());
  EXPECT_LT(m->MaxAbsDiff(expected), kTol);

  // COLMATRIX with GROUP BY col builds the transpose-oriented matrix.
  ASSERT_TRUE(Exec(db, 
                    "CREATE VIEW cvecs AS "
                    "SELECT VECTORIZE(label_scalar(value, row)) AS vec, col "
                    "FROM mat GROUP BY col")
                  .ok());
  auto rs2 = Exec(db, 
      "SELECT COLMATRIX(label_vector(vec, col)) FROM cvecs");
  ASSERT_TRUE(rs2.ok()) << rs2.status();
  auto m2 = rs2->ScalarMatrix();
  ASSERT_TRUE(m2.ok());
  EXPECT_LT(m2->MaxAbsDiff(expected), kTol);

  // Normalize back with get_scalar and a label table (paper §3.3).
  ASSERT_TRUE(Exec(db, "CREATE TABLE label (id INTEGER)").ok());
  ASSERT_TRUE(
      Exec(db, "INSERT INTO label VALUES (0), (1), (2)").ok());
  auto rs3 = Exec(db, 
      "SELECT vecs.row, label.id, get_scalar(vecs.vec, label.id) "
      "FROM vecs, label");
  ASSERT_TRUE(rs3.ok()) << rs3.status();
  EXPECT_EQ(rs3->num_rows(), r * c);
  for (size_t i = 0; i < rs3->num_rows(); ++i) {
    const int64_t row = rs3->at(i, 0).AsInt().value();
    const int64_t id = rs3->at(i, 1).AsInt().value();
    EXPECT_DOUBLE_EQ(rs3->at(i, 2).AsDouble().value(),
                     expected.At(static_cast<size_t>(row),
                                 static_cast<size_t>(id)));
  }
}

// --- §3.2: linear regression, both codings ---------------------------

TEST(SqlLaTest, LinearRegressionBothCodings) {
  Rng rng(99);
  const size_t n = 60, d = 5;
  la::Matrix x(n, d);
  la::Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    x.SetRow(i, la::RandomVector(rng, d));
    y[i] = rng.Uniform(-1, 1);
  }
  // Reference.
  la::Matrix xtx = la::TransposeSelfMultiply(x);
  la::Vector xty(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) xty[j] += x.At(i, j) * y[i];
  }
  auto beta_ref = la::Solve(xtx, xty);
  ASSERT_TRUE(beta_ref.ok());

  // Coding 1: X as a set of vectors (paper §3.2).
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE xv (i INTEGER, x_i VECTOR[]); "
                            "CREATE TABLE y (i INTEGER, y_i DOUBLE)")
                  .ok());
  std::vector<Row> xrows, yrows;
  for (size_t i = 0; i < n; ++i) {
    xrows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                        Value::FromVector(x.Row(i))});
    yrows.push_back(
        Row{Value::Int(static_cast<int64_t>(i)), Value::Double(y[i])});
  }
  ASSERT_TRUE(db.BulkInsert("xv", std::move(xrows)).ok());
  ASSERT_TRUE(db.BulkInsert("y", std::move(yrows)).ok());
  auto rs = Exec(db, 
      "SELECT matrix_vector_multiply("
      "matrix_inverse(SUM(outer_product(xv.x_i, xv.x_i))), "
      "SUM(xv.x_i * y.y_i)) "
      "FROM xv, y WHERE xv.i = y.i");
  ASSERT_TRUE(rs.ok()) << rs.status();
  auto beta1 = rs->ScalarVector();
  ASSERT_TRUE(beta1.ok());
  EXPECT_LT(beta1->MaxAbsDiff(*beta_ref), 1e-7);

  // Coding 2: whole-matrix storage (paper §3.3).
  ASSERT_TRUE(Exec(db, "CREATE TABLE xm (mat MATRIX[][]); "
                            "CREATE TABLE yv (vec VECTOR[])")
                  .ok());
  ASSERT_TRUE(db.BulkInsert("xm", {Row{Value::FromMatrix(x)}}).ok());
  ASSERT_TRUE(db.BulkInsert("yv", {Row{Value::FromVector(y)}}).ok());
  auto rs2 = Exec(db, 
      "SELECT matrix_vector_multiply("
      "matrix_inverse(matrix_multiply(trans_matrix(mat), mat)), "
      "matrix_vector_multiply(trans_matrix(mat), vec)) "
      "FROM xm, yv");
  ASSERT_TRUE(rs2.ok()) << rs2.status();
  auto beta2 = rs2->ScalarVector();
  ASSERT_TRUE(beta2.ok());
  EXPECT_LT(beta2->MaxAbsDiff(*beta_ref), 1e-7);
}

// --- §2.2/§2.3: the Riemannian metric distance example ---------------

TEST(SqlLaTest, RiemannianDistanceTupleVsVectorCoding) {
  Rng rng(123);
  const size_t n = 12, d = 4;
  std::vector<la::Vector> pts;
  for (size_t i = 0; i < n; ++i) pts.push_back(la::RandomVector(rng, d));
  la::Matrix a = la::RandomSpdMatrix(rng, d);
  const size_t target = 3;

  // Reference: d²(x_i, x') = (x_i - x')ᵀ A (x_i - x') for fixed i.
  std::vector<double> expected(n);
  for (size_t j = 0; j < n; ++j) {
    auto diff = la::Sub(pts[target], pts[j]);
    ASSERT_TRUE(diff.ok());
    auto av = la::MatrixVectorMultiply(a, *diff);
    ASSERT_TRUE(av.ok());
    auto ip = la::InnerProduct(*av, *diff);
    ASSERT_TRUE(ip.ok());
    expected[j] = *ip;
  }

  // Vector coding (paper §2.3).
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE data (pointID INTEGER, "
                            "val VECTOR[]); "
                            "CREATE TABLE matrixA (val MATRIX[][])")
                  .ok());
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                       Value::FromVector(pts[i])});
  }
  ASSERT_TRUE(db.BulkInsert("data", std::move(rows)).ok());
  ASSERT_TRUE(db.BulkInsert("matrixA", {Row{Value::FromMatrix(a)}}).ok());
  auto rs = Exec(db, 
      "SELECT x2.pointID, inner_product(matrix_vector_multiply("
      "a.val, x1.val - x2.val), x1.val - x2.val) AS value "
      "FROM data AS x1, data AS x2, matrixA AS a "
      "WHERE x1.pointID = " +
      std::to_string(target) + " ORDER BY x2.pointID");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), n);
  for (size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(rs->at(j, 1).AsDouble().value(), expected[j], 1e-9) << j;
  }

  // Tuple coding (paper §2.2), same numbers the hard way.
  ASSERT_TRUE(Exec(db, "CREATE TABLE datat (pointID INTEGER, "
                            "dimID INTEGER, value DOUBLE); "
                            "CREATE TABLE matA (rowID INTEGER, "
                            "colID INTEGER, value DOUBLE)")
                  .ok());
  std::vector<Row> trows, arows;
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < d; ++k) {
      trows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                          Value::Int(static_cast<int64_t>(k)),
                          Value::Double(pts[i][k])});
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      arows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                          Value::Int(static_cast<int64_t>(j)),
                          Value::Double(a.At(i, j))});
    }
  }
  ASSERT_TRUE(db.BulkInsert("datat", std::move(trows)).ok());
  ASSERT_TRUE(db.BulkInsert("matA", std::move(arows)).ok());
  ASSERT_TRUE(Exec(db, 
                    "CREATE VIEW xDiff (pointID, dimID, value) AS "
                    "SELECT x2.pointID, x2.dimID, x1.value - x2.value "
                    "FROM datat AS x1, datat AS x2 "
                    "WHERE x1.pointID = " +
                    std::to_string(target) +
                    " AND x1.dimID = x2.dimID")
                  .ok());
  auto rs2 = Exec(db, 
      "SELECT x.pointID, SUM(firstPart.value * x.value) "
      "FROM (SELECT x.pointID AS pointID, a.colID AS colID, "
      "      SUM(a.value * x.value) AS value "
      "      FROM xDiff AS x, matA AS a WHERE x.dimID = a.rowID "
      "      GROUP BY x.pointID, a.colID) AS firstPart, xDiff AS x "
      "WHERE firstPart.colID = x.dimID "
      "AND firstPart.pointID = x.pointID "
      "GROUP BY x.pointID ORDER BY x.pointID");
  ASSERT_TRUE(rs2.ok()) << rs2.status();
  ASSERT_EQ(rs2->num_rows(), n);
  for (size_t j = 0; j < n; ++j) {
    const int64_t pid = rs2->at(j, 0).AsInt().value();
    EXPECT_NEAR(rs2->at(j, 1).AsDouble().value(),
                expected[static_cast<size_t>(pid)], 1e-9);
  }
}

// --- §3.4: tiled big-matrix multiply in pure SQL ----------------------

TEST(SqlLaTest, TiledMatrixMultiplyViaSql) {
  Rng rng(2024);
  const size_t n = 12, tile = 4;
  la::Matrix a = la::RandomMatrix(rng, n, n);
  la::Matrix b = la::RandomMatrix(rng, n, n);
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE bigMatrix (tileRow INTEGER, "
                            "tileCol INTEGER, mat MATRIX[4][4]); "
                            "CREATE TABLE anotherBigMat (tileRow INTEGER, "
                            "tileCol INTEGER, mat MATRIX[4][4])")
                  .ok());
  auto load = [&](const char* table, const la::Matrix& m) {
    std::vector<Row> rows;
    for (la::Tile& t : la::SplitIntoTiles(m, tile, tile)) {
      rows.push_back(Row{Value::Int(static_cast<int64_t>(t.tile_row)),
                         Value::Int(static_cast<int64_t>(t.tile_col)),
                         Value::FromMatrix(std::move(t.mat))});
    }
    return db.BulkInsert(table, std::move(rows));
  };
  ASSERT_TRUE(load("bigMatrix", a).ok());
  ASSERT_TRUE(load("anotherBigMat", b).ok());
  // The paper's §3.4 query, verbatim.
  auto rs = Exec(db, 
      "SELECT lhs.tileRow, rhs.tileCol, "
      "SUM(matrix_multiply(lhs.mat, rhs.mat)) "
      "FROM bigMatrix AS lhs, anotherBigMat AS rhs "
      "WHERE lhs.tileCol = rhs.tileRow "
      "GROUP BY lhs.tileRow, rhs.tileCol");
  ASSERT_TRUE(rs.ok()) << rs.status();
  std::vector<la::Tile> tiles;
  for (size_t r = 0; r < rs->num_rows(); ++r) {
    tiles.push_back(la::Tile{
        static_cast<size_t>(rs->at(r, 0).AsInt().value()),
        static_cast<size_t>(rs->at(r, 1).AsInt().value()),
        rs->at(r, 2).matrix()});
  }
  auto assembled = la::AssembleTiles(tiles);
  ASSERT_TRUE(assembled.ok());
  auto expected = la::Multiply(a, b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(assembled->MaxAbsDiff(*expected), 1e-9);
}

TEST(SqlLaTest, RuntimeErrorsSurface) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE m (mat MATRIX[][])").ok());
  // Singular matrix inversion is a numeric error.
  ASSERT_TRUE(db.BulkInsert("m", {Row{Value::FromMatrix(
                                     la::Matrix(2, 2, {1, 2, 2, 4}))}})
                  .ok());
  EXPECT_EQ(Exec(db, "SELECT matrix_inverse(mat) FROM m")
                .status()
                .code(),
            StatusCode::kNumericError);
  // diag of a non-square matrix is a dimension error at runtime when
  // the declared type left dims open.
  ASSERT_TRUE(Exec(db, "CREATE TABLE m2 (mat MATRIX[][])").ok());
  ASSERT_TRUE(
      db.BulkInsert("m2", {Row{Value::FromMatrix(la::Matrix(2, 3))}}).ok());
  EXPECT_EQ(Exec(db, "SELECT diag(mat) FROM m2").status().code(),
            StatusCode::kDimensionMismatch);
}

// --- EXPLAIN ANALYZE over LA queries --------------------------------

namespace {
std::string PlanText(const ResultSet& rs) {
  std::string text;
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    text += rs.at(r, 0).string_value();
    text += "\n";
  }
  return text;
}
}  // namespace

TEST(SqlLaTest, ExplainAnalyzeOuterProductAgreesWithLastMetrics) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE v (vec VECTOR[4])").ok());
  ASSERT_TRUE(Exec(db, "INSERT INTO v VALUES (ones_vector(4)), "
                            "(ones_vector(4)), (ones_vector(4))")
                  .ok());
  auto rs = Exec(db, 
      "EXPLAIN ANALYZE SELECT SUM(outer_product(vec, vec)) FROM v");
  ASSERT_TRUE(rs.ok()) << rs.status();
  const std::string text = PlanText(*rs);
  EXPECT_NE(text.find("Aggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan v"), std::string::npos) << text;
  EXPECT_NE(text.find("actual rows=3"), std::string::npos) << text;  // scan
  EXPECT_NE(text.find("actual rows=1"), std::string::npos) << text;  // agg

  // The footer totals are the same numbers last_metrics() reports.
  const QueryMetrics& m = db.last_metrics();
  EXPECT_GT(m.operators.size(), 0u);
  EXPECT_NE(
      text.find("total shuffled: " +
                FormatBytes(static_cast<double>(m.TotalBytesShuffled()))),
      std::string::npos)
      << text;
  size_t agg_rows_out = 0;
  for (const auto& op : m.operators) {
    if (op.name.find("final") != std::string::npos) agg_rows_out = op.rows_out;
  }
  EXPECT_EQ(agg_rows_out, 1u);
}

TEST(SqlLaTest, ExplainAnalyzeGramSplitsJoinAndAggregateTime) {
  // Figure 4's question — where does a Gram-style query spend its
  // time? — asked of EXPLAIN ANALYZE: the join and the aggregation
  // must be separately visible, each with its own timing.
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE x (id INTEGER, vec VECTOR[4]);"
                            "CREATE TABLE w (id INTEGER, scale DOUBLE)")
                  .ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        db.BulkInsert(
              "x", {Row{Value::Int(i), Value::FromVector(la::Vector(
                                           std::vector<double>{1, 2, 3, 4}))}})
            .ok());
    ASSERT_TRUE(
        db.BulkInsert("w", {Row{Value::Int(i), Value::Double(1.0)}}).ok());
  }
  auto rs = Exec(db, 
      "EXPLAIN ANALYZE SELECT SUM(outer_product(x.vec, x.vec)) "
      "FROM x, w WHERE x.id = w.id");
  ASSERT_TRUE(rs.ok()) << rs.status();
  const std::string text = PlanText(*rs);
  EXPECT_NE(text.find("Join"), std::string::npos) << text;
  EXPECT_NE(text.find("Aggregate"), std::string::npos) << text;

  const QueryMetrics& m = db.last_metrics();
  const double join_s = m.SecondsForOperatorsContaining("Join");
  const double agg_s = m.SecondsForOperatorsContaining("Aggregate");
  EXPECT_GT(join_s, 0.0);
  EXPECT_GT(agg_s, 0.0);
  // Both phases carry per-node annotations in the rendering.
  EXPECT_NE(text.find("max-worker="), std::string::npos) << text;
}

}  // namespace
}  // namespace radb
