#include <gtest/gtest.h>

#include "api/database.h"

#include "test_util.h"

namespace radb {
namespace {

/// Sets up the paper's §4.1 schema: R(100 rows, MATRIX[10][K]),
/// S(100 rows, MATRIX[K][100]), T(1000 rows of (rid, sid)). K is
/// scaled down from the paper's 100000 so the test stays fast, but
/// the asymmetry (inputs huge, product tiny) is preserved.
class OptimizerSection41Test : public ::testing::Test {
 protected:
  static constexpr size_t kK = 400;

  void Load(Database* db) {
    ASSERT_TRUE(Exec(*db, 
                      "CREATE TABLE r (r_rid INTEGER, r_matrix "
                      "MATRIX[10][" +
                      std::to_string(kK) +
                      "]); "
                      "CREATE TABLE s (s_sid INTEGER, s_matrix MATRIX[" +
                      std::to_string(kK) +
                      "][100]); "
                      "CREATE TABLE t (t_rid INTEGER, t_sid INTEGER)")
                    .ok());
    std::vector<Row> r_rows, s_rows, t_rows;
    for (int i = 0; i < 20; ++i) {
      r_rows.push_back(Row{Value::Int(i),
                           Value::FromMatrix(la::Matrix(10, kK, 0.5))});
      s_rows.push_back(Row{Value::Int(i),
                           Value::FromMatrix(la::Matrix(kK, 100, 0.5))});
    }
    for (int i = 0; i < 100; ++i) {
      t_rows.push_back(Row{Value::Int(i % 20), Value::Int((i * 7) % 20)});
    }
    ASSERT_TRUE(db->BulkInsert("r", std::move(r_rows)).ok());
    ASSERT_TRUE(db->BulkInsert("s", std::move(s_rows)).ok());
    ASSERT_TRUE(db->BulkInsert("t", std::move(t_rows)).ok());
  }

  static constexpr const char* kQuery =
      "SELECT matrix_multiply(r_matrix, s_matrix) "
      "FROM r, s, t WHERE r_rid = t_rid AND s_sid = t_sid";
};

TEST_F(OptimizerSection41Test, LaAwarePlanFusesEarlyProjection) {
  Database db;
  Load(&db);
  auto plan = db.PlanQuery(kQuery);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The chosen plan must compute matrix_multiply below the top: find a
  // join with fused projection exprs containing the multiply.
  bool fused_multiply_below_top = false;
  std::function<void(const LogicalOp&, int)> walk = [&](const LogicalOp& op,
                                                        int depth) {
    if (depth > 0 && op.kind == LogicalOp::Kind::kJoin &&
        !op.exprs.empty()) {
      for (const auto& e : op.exprs) {
        if (e->ToString().find("matrix_multiply") != std::string::npos) {
          fused_multiply_below_top = true;
        }
      }
    }
    for (const auto& c : op.children) walk(*c, depth + 1);
  };
  walk(**plan, 0);
  EXPECT_TRUE(fused_multiply_below_top) << (*plan)->ToString();
}

TEST_F(OptimizerSection41Test, NaivePlanJoinsSAndTFirst) {
  // With LA-aware costing off, the optimizer behaves like the paper's
  // strawman: avoid the cross product, join S with T first and drag
  // the big matrices around.
  Database::Config config;
  config.optimizer.la_aware_costing = false;
  config.optimizer.enable_early_projection = false;
  Database db(config);
  Load(&db);
  auto plan = db.PlanQuery(kQuery);
  ASSERT_TRUE(plan.ok()) << plan.status();
  bool has_cross = false;
  std::function<void(const LogicalOp&)> walk = [&](const LogicalOp& op) {
    if (op.kind == LogicalOp::Kind::kJoin && op.equi_keys.empty()) {
      has_cross = true;
    }
    for (const auto& c : op.children) walk(*c);
  };
  walk(**plan);
  EXPECT_FALSE(has_cross) << (*plan)->ToString();
}

TEST_F(OptimizerSection41Test, LaAwarePlanMovesFarFewerBytes) {
  // Execute both plans and compare actual bytes produced — the
  // measured analogue of the paper's 80 GB vs 80 MB argument.
  size_t naive_bytes = 0, aware_bytes = 0;
  la::Matrix aware_result, naive_result;
  {
    Database::Config config;
    config.optimizer.la_aware_costing = false;
    config.optimizer.enable_early_projection = false;
    Database db(config);
    Load(&db);
    auto rs = Exec(db, kQuery);
    ASSERT_TRUE(rs.ok()) << rs.status();
    naive_result = rs->at(0, 0).matrix();
    for (const auto& op : db.last_metrics().operators) {
      naive_bytes += op.bytes_out;
    }
  }
  {
    Database db;
    Load(&db);
    auto rs = Exec(db, kQuery);
    ASSERT_TRUE(rs.ok()) << rs.status();
    aware_result = rs->at(0, 0).matrix();
    ASSERT_EQ(rs->num_rows(), 100u);
    for (const auto& op : db.last_metrics().operators) {
      aware_bytes += op.bytes_out;
    }
  }
  EXPECT_LT(naive_result.MaxAbsDiff(aware_result), 1e-9);
  // The paper reports three orders of magnitude; at our scale demand
  // at least 3x.
  EXPECT_LT(static_cast<double>(aware_bytes),
            static_cast<double>(naive_bytes) / 3.0)
      << "aware=" << aware_bytes << " naive=" << naive_bytes;
}

TEST(OptimizerTest, PredicatePushdownReachesScan) {
  Database db;
  ASSERT_TRUE(
      Exec(db, "CREATE TABLE a (x INTEGER, y INTEGER); "
                    "CREATE TABLE b (x INTEGER, z INTEGER)")
          .ok());
  auto plan = db.PlanQuery(
      "SELECT a.y, b.z FROM a, b WHERE a.x = b.x AND a.y > 5");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The single-table predicate must sit below the join.
  bool filter_below_join = false;
  std::function<void(const LogicalOp&, bool)> walk =
      [&](const LogicalOp& op, bool under_join) {
        if (op.kind == LogicalOp::Kind::kFilter && under_join) {
          filter_below_join = true;
        }
        for (const auto& c : op.children) {
          walk(*c, under_join || op.kind == LogicalOp::Kind::kJoin);
        }
      };
  walk(**plan, false);
  EXPECT_TRUE(filter_below_join) << (*plan)->ToString();
}

TEST(OptimizerTest, ColumnPruningShrinksScan) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE wide (a INTEGER, b INTEGER, "
                            "c INTEGER, d INTEGER, e INTEGER)")
                  .ok());
  auto plan = db.PlanQuery("SELECT a FROM wide WHERE b > 0");
  ASSERT_TRUE(plan.ok());
  std::function<const LogicalOp*(const LogicalOp&)> find_scan =
      [&](const LogicalOp& op) -> const LogicalOp* {
    if (op.kind == LogicalOp::Kind::kScan) return &op;
    for (const auto& c : op.children) {
      if (const LogicalOp* s = find_scan(*c)) return s;
    }
    return nullptr;
  };
  const LogicalOp* scan = find_scan(**plan);
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->scan_columns.size(), 2u);  // a and b only
}

TEST(OptimizerTest, EquiJoinPreferredOverCross) {
  Database db;
  ASSERT_TRUE(
      Exec(db, "CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER)")
          .ok());
  std::vector<Row> rows;
  for (int i = 0; i < 50; ++i) rows.push_back(Row{Value::Int(i)});
  ASSERT_TRUE(db.BulkInsert("a", rows).ok());
  ASSERT_TRUE(db.BulkInsert("b", std::move(rows)).ok());
  auto plan = db.PlanQuery("SELECT COUNT(*) FROM a, b WHERE a.x = b.x");
  ASSERT_TRUE(plan.ok());
  bool found_equi = false;
  std::function<void(const LogicalOp&)> walk = [&](const LogicalOp& op) {
    if (op.kind == LogicalOp::Kind::kJoin) {
      found_equi = !op.equi_keys.empty();
    }
    for (const auto& c : op.children) walk(*c);
  };
  walk(**plan);
  EXPECT_TRUE(found_equi);
}

TEST(OptimizerTest, ExplainRendersCosts) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE t (a INTEGER)").ok());
  auto explain = db.Explain("SELECT a FROM t WHERE a > 1");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("Scan"), std::string::npos);
  EXPECT_NE(explain->find("estimated cost"), std::string::npos);
}

TEST(OptimizerTest, JoinOrderAvoidsLargeIntermediates) {
  // Three-way chain join where the middle table is large: the best
  // plan joins the small tables into the big one rather than starting
  // with big x big.
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE small1 (k INTEGER); "
                            "CREATE TABLE big (k INTEGER, j INTEGER); "
                            "CREATE TABLE small2 (j INTEGER)")
                  .ok());
  std::vector<Row> s1, s2, bg;
  for (int i = 0; i < 5; ++i) s1.push_back(Row{Value::Int(i)});
  for (int i = 0; i < 5; ++i) s2.push_back(Row{Value::Int(i)});
  for (int i = 0; i < 1000; ++i) {
    bg.push_back(Row{Value::Int(i % 37), Value::Int(i % 41)});
  }
  ASSERT_TRUE(db.BulkInsert("small1", std::move(s1)).ok());
  ASSERT_TRUE(db.BulkInsert("small2", std::move(s2)).ok());
  ASSERT_TRUE(db.BulkInsert("big", std::move(bg)).ok());
  auto rs = Exec(db, 
      "SELECT COUNT(*) FROM small1, big, small2 "
      "WHERE small1.k = big.k AND big.j = small2.j");
  ASSERT_TRUE(rs.ok()) << rs.status();
  // Manual count.
  int64_t expected = 0;
  for (int i = 0; i < 1000; ++i) {
    if (i % 37 < 5 && i % 41 < 5) ++expected;
  }
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), expected);
}

TEST(OptimizerTest, GreedyPathHandlesManyRelations) {
  // 12 relations exceed the subset-DP limit (10), exercising the
  // greedy join-order search; the chain join must still be correct.
  Database db;
  std::string from;
  std::string where;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(Exec(db, "CREATE TABLE c" + std::to_string(i) +
                              " (k INTEGER, v INTEGER)")
                    .ok());
    std::vector<Row> rows;
    for (int r = 0; r < 8; ++r) {
      rows.push_back({Value::Int(r), Value::Int(r + i)});
    }
    ASSERT_TRUE(
        db.BulkInsert("c" + std::to_string(i), std::move(rows)).ok());
    if (i > 0) {
      from += ", ";
      where += (i > 1 ? " AND " : "");
      where += "c" + std::to_string(i - 1) + ".k = c" +
               std::to_string(i) + ".k";
    }
    from += "c" + std::to_string(i);
  }
  auto rs = Exec(db, "SELECT COUNT(*), SUM(c11.v) FROM " + from +
                          " WHERE " + where);
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 8);  // one row per key
  // SUM of c11.v = sum over k of (k + 11).
  EXPECT_EQ(rs->at(0, 1).AsInt().value(), 8 * 11 + 28);
}

TEST(OptimizerTest, EarlyProjectionCanBeDisabled) {
  Database::Config config;
  config.optimizer.enable_early_projection = false;
  Database db(config);
  ASSERT_TRUE(Exec(db, "CREATE TABLE a (k INTEGER, m MATRIX[4][4]); "
                            "CREATE TABLE b (k INTEGER, m MATRIX[4][4])")
                  .ok());
  std::vector<Row> ra, rb;
  for (int i = 0; i < 10; ++i) {
    ra.push_back({Value::Int(i), Value::FromMatrix(la::Matrix(4, 4, 1.0))});
    rb.push_back({Value::Int(i), Value::FromMatrix(la::Matrix(4, 4, 2.0))});
  }
  ASSERT_TRUE(db.BulkInsert("a", std::move(ra)).ok());
  ASSERT_TRUE(db.BulkInsert("b", std::move(rb)).ok());
  auto rs = Exec(db, 
      "SELECT matrix_multiply(a.m, b.m) FROM a, b WHERE a.k = b.k");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 10u);
  EXPECT_DOUBLE_EQ(rs->at(0, 0).matrix().At(0, 0), 8.0);
  // No join in the plan may carry fused projection expressions.
  auto plan = db.PlanQuery(
      "SELECT matrix_multiply(a.m, b.m) FROM a, b WHERE a.k = b.k");
  ASSERT_TRUE(plan.ok());
  std::function<void(const LogicalOp&)> walk = [&](const LogicalOp& op) {
    if (op.kind == LogicalOp::Kind::kJoin) {
      EXPECT_TRUE(op.exprs.empty());
    }
    for (const auto& c : op.children) walk(*c);
  };
  walk(**plan);
}

TEST(OptimizerTest, EarlyProjectionPrunesSlotZeroColumn) {
  // Regression: TryEarlyProjection used slot id 0 as its
  // "hypothetically placed" marker, so NeededAbove always treated the
  // column occupying slot 0 as live above the projection point. A
  // wide MATRIX in the first column of the first relation could then
  // never be projected away — the §4.1 rule silently never fired for
  // it. The marker is now an impossible slot id (SIZE_MAX).
  Database::Config config;
  config.obs.enable_metrics = true;
  Database db(config);
  ASSERT_TRUE(
      Exec(db, "CREATE TABLE a (m MATRIX[32][32], k INTEGER)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back({Value::FromMatrix(la::Matrix(32, 32, 1.0)), Value::Int(i)});
  }
  ASSERT_TRUE(db.BulkInsert("a", std::move(rows)).ok());

  // m binds to slot 0; trace(m) shrinks 32x32 doubles to one, so the
  // rule must fire (and the result must still be correct).
  auto rs = Exec(db, "SELECT trace(m) FROM a");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 4u);
  EXPECT_DOUBLE_EQ(rs->at(0, 0).AsDouble().value(), 32.0);
  EXPECT_GE(db.metrics_registry()->counter("optimizer.early_projections")
                ->value(),
            1u);
}

}  // namespace
}  // namespace radb
