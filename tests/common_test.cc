#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace radb {
namespace {

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::TypeError("bad type");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(s.message(), "bad type");
  EXPECT_EQ(s.ToString(), "TypeError: bad type");
  EXPECT_EQ(s, Status::TypeError("bad type"));
  EXPECT_FALSE(s == Status::TypeError("other"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kParseError, StatusCode::kBindError,
        StatusCode::kTypeError, StatusCode::kCatalogError,
        StatusCode::kExecutionError, StatusCode::kDimensionMismatch,
        StatusCode::kNumericError, StatusCode::kNotImplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> Chained(int x) {
  RADB_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(Chained(5).value(), 11);
  EXPECT_FALSE(Chained(0).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicAndWellDistributed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  Rng d(123);
  (void)d.NextUint64();
  EXPECT_NE(d.NextUint64(), c.NextUint64());

  // Uniform doubles stay in [0, 1) and vary.
  Rng r(7);
  std::set<uint64_t> buckets;
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
    buckets.insert(static_cast<uint64_t>(x * 16));
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
  EXPECT_EQ(buckets.size(), 16u);  // every bucket hit
}

TEST(RngTest, UniformAndBelow) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.Uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
    const uint64_t n = r.NextBelow(7);
    ASSERT_LT(n, 7u);
  }
  EXPECT_EQ(r.NextBelow(0), 0u);
}

TEST(StringUtilTest, ToLowerAndJoin) {
  EXPECT_EQ(ToLower("MiXeD_123"), "mixed_123");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, FormatHms) {
  EXPECT_EQ(FormatHms(0.0042), "4.20ms");
  EXPECT_EQ(FormatHms(1.5), "1.50s");
  EXPECT_EQ(FormatHms(65.0), "00:01:05");
  EXPECT_EQ(FormatHms(3 * 3600 + 19 * 60 + 45), "03:19:45");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(80.0 * 1024 * 1024), "80.00 MiB");
  EXPECT_EQ(FormatBytes(3.5 * 1024 * 1024 * 1024), "3.50 GiB");
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  size_t count = 0;
  pool.ParallelFor(64, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++count;
  });
  EXPECT_EQ(count, 64u);
}

TEST(ThreadPoolTest, RepeatedRegionsDoNotLeakOrMisattributeWork) {
  // Back-to-back regions stress the generation handoff: a straggler
  // from region G must never claim an index of region G+1.
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(17, [&](size_t i) { sum.fetch_add(i + 1); });
    ASSERT_EQ(sum.load(), 17u * 18u / 2);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(8, [&](size_t outer) {
    EXPECT_TRUE(ThreadPool::InWorker());
    pool.ParallelFor(8, [&](size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  EXPECT_FALSE(ThreadPool::InWorker());
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelRangesCoversAllOfTotalDisjointly) {
  ThreadPool pool(4);
  constexpr size_t kTotal = 1003;  // not a multiple of the chunk count
  std::vector<std::atomic<int>> hits(kTotal);
  pool.ParallelRanges(kTotal, [&](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, kTotal);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kTotal; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, GlobalPoolInstallAndRestore) {
  ThreadPool* before = GlobalPool();
  ThreadPool pool(2);
  ThreadPool* previous = SetGlobalPool(&pool);
  EXPECT_EQ(previous, before);
  EXPECT_EQ(GlobalPool(), &pool);
  SetGlobalPool(previous);
  EXPECT_EQ(GlobalPool(), before);
}

TEST(ThreadPoolTest, ZeroThreadsResolvesToHardware) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
  EXPECT_GE(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace radb
