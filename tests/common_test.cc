#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace radb {
namespace {

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::TypeError("bad type");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(s.message(), "bad type");
  EXPECT_EQ(s.ToString(), "TypeError: bad type");
  EXPECT_EQ(s, Status::TypeError("bad type"));
  EXPECT_FALSE(s == Status::TypeError("other"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kParseError, StatusCode::kBindError,
        StatusCode::kTypeError, StatusCode::kCatalogError,
        StatusCode::kExecutionError, StatusCode::kDimensionMismatch,
        StatusCode::kNumericError, StatusCode::kNotImplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> Chained(int x) {
  RADB_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(Chained(5).value(), 11);
  EXPECT_FALSE(Chained(0).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicAndWellDistributed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  Rng d(123);
  (void)d.NextUint64();
  EXPECT_NE(d.NextUint64(), c.NextUint64());

  // Uniform doubles stay in [0, 1) and vary.
  Rng r(7);
  std::set<uint64_t> buckets;
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
    buckets.insert(static_cast<uint64_t>(x * 16));
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
  EXPECT_EQ(buckets.size(), 16u);  // every bucket hit
}

TEST(RngTest, UniformAndBelow) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.Uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
    const uint64_t n = r.NextBelow(7);
    ASSERT_LT(n, 7u);
  }
  EXPECT_EQ(r.NextBelow(0), 0u);
}

TEST(StringUtilTest, ToLowerAndJoin) {
  EXPECT_EQ(ToLower("MiXeD_123"), "mixed_123");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, FormatHms) {
  EXPECT_EQ(FormatHms(0.0042), "4.20ms");
  EXPECT_EQ(FormatHms(1.5), "1.50s");
  EXPECT_EQ(FormatHms(65.0), "00:01:05");
  EXPECT_EQ(FormatHms(3 * 3600 + 19 * 60 + 45), "03:19:45");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(80.0 * 1024 * 1024), "80.00 MiB");
  EXPECT_EQ(FormatBytes(3.5 * 1024 * 1024 * 1024), "3.50 GiB");
}

}  // namespace
}  // namespace radb
