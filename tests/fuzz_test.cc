// Differential-testing subsystem tests: a fixed-seed fuzz sweep (the
// CI gate for "all six engine configurations agree with the reference
// evaluator"), replay of the pinned regression seeds, and unit tests
// of the comparison machinery itself.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "testing/catalog_gen.h"
#include "testing/differ.h"
#include "testing/query_gen.h"
#include "testing/reference_eval.h"
#include "testing/regression_seeds.h"

namespace radb::testing {
namespace {

TEST(CatalogGenTest, Deterministic) {
  const CatalogSpec a = GenerateCatalog(42);
  const CatalogSpec b = GenerateCatalog(42);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_GE(a.tables.size(), 2u);
  for (const TableSpec& t : a.tables) {
    ASSERT_FALSE(t.columns.empty());
    EXPECT_EQ(t.columns[0].name, "k");
    EXPECT_EQ(t.columns[0].type.kind(), TypeKind::kInteger);
  }
}

TEST(QueryGenTest, DeterministicAndParseable) {
  const CatalogSpec catalog = GenerateCatalog(7);
  Rng r1(99), r2(99);
  for (int i = 0; i < 50; ++i) {
    const QuerySpec a = GenerateQuery(catalog, &r1);
    const QuerySpec b = GenerateQuery(catalog, &r2);
    EXPECT_EQ(a.ToSql(), b.ToSql());
    // LIMIT only with a total order over the whole select list.
    if (a.limit.has_value()) {
      EXPECT_EQ(a.order_by.size(), a.select_items.size());
    }
  }
}

TEST(NormalizeTest, SortsRowsCanonically) {
  RowSet rows;
  rows.push_back({Value::Int(2), Value::String("b")});
  rows.push_back({Value::Int(1), Value::String("z")});
  rows.push_back({Value::Int(1), Value::String("a")});
  const RowSet norm = Normalized(rows);
  EXPECT_EQ(norm[0][0].int_value(), 1);
  EXPECT_EQ(norm[0][1].string_value(), "a");
  EXPECT_EQ(norm[2][0].int_value(), 2);
}

TEST(NormalizeTest, KindRankSeparatesIntFromDouble) {
  // Int(1) and Double(1.0) are different cells; normalization must
  // order them stably, and SameCells must tell them apart.
  RowSet a, b;
  a.push_back({Value::Int(1)});
  b.push_back({Value::Double(1.0)});
  EXPECT_FALSE(SameCells(Normalized(a), Normalized(b)));
}

TEST(SameCellsTest, ExactOnLaValues) {
  RowSet a, b;
  la::Vector v1(3, 1.0), v2(3, 1.0);
  a.push_back({Value::FromVector(std::move(v1))});
  b.push_back({Value::FromVector(std::move(v2))});
  EXPECT_TRUE(SameCells(a, b));
  la::Vector v3(3, 1.0);
  v3[2] = 1.0 + 1e-12;  // off by one ulp-ish: must NOT compare equal
  RowSet c;
  c.push_back({Value::FromVector(std::move(v3))});
  EXPECT_FALSE(SameCells(a, c));
}

TEST(ReferenceEvalTest, MatchesHandComputedJoinAggregate) {
  CatalogSpec spec;
  spec.seed = 0;
  TableSpec t0{"t0", {{"k", DataType::Integer()}}, {}};
  TableSpec t1{"t1", {{"k", DataType::Integer()}}, {}};
  for (int i = 0; i < 3; ++i) t0.rows.push_back({Value::Int(i)});
  for (int i = 1; i < 4; ++i) t1.rows.push_back({Value::Int(i)});
  spec.tables = {t0, t1};

  Differ differ(spec);
  ASSERT_TRUE(differ.init_status().ok());

  Database db;
  ASSERT_TRUE(LoadCatalog(spec, &db).ok());
  auto ref = ReferenceExecute(
      "SELECT COUNT(*) FROM t0 AS r0, t1 AS r1 WHERE r0.k = r1.k",
      db.catalog());
  ASSERT_TRUE(ref.ok()) << ref.status();
  ASSERT_EQ(ref->rows.size(), 1u);
  EXPECT_EQ(ref->rows[0][0].int_value(), 2);  // keys 1 and 2 match

  const DiffOutcome outcome = differ.RunOne(
      "SELECT COUNT(*) FROM t0 AS r0, t1 AS r1 WHERE r0.k = r1.k");
  EXPECT_FALSE(outcome.diverged) << outcome.report;
}

TEST(RegressionSeedsTest, AllPinnedCasesAgree) {
  for (size_t i = 0; i < kNumRegressionSeeds; ++i) {
    const RegressionSeed& seed = kRegressionSeeds[i];
    Differ differ(GenerateCatalog(seed.catalog_seed));
    ASSERT_TRUE(differ.init_status().ok()) << "seed index " << i;
    const DiffOutcome outcome = differ.RunOne(seed.sql);
    EXPECT_FALSE(outcome.diverged)
        << "regression seed " << i << ":\n" << outcome.report;
  }
}

// The CI differential gate: 200 fixed-seed random queries across 8
// random catalogs, every engine configuration vs the reference.
TEST(FuzzTest, TwoHundredFixedSeedQueries) {
  size_t ran = 0;
  for (uint64_t catalog_seed = 100; catalog_seed < 108; ++catalog_seed) {
    const CatalogSpec catalog = GenerateCatalog(catalog_seed);
    Differ differ(catalog);
    ASSERT_TRUE(differ.init_status().ok()) << "catalog " << catalog_seed;
    Rng rng(catalog_seed * 7919);
    for (int i = 0; i < 25; ++i) {
      const QuerySpec query = GenerateQuery(catalog, &rng);
      const DiffOutcome outcome = differ.RunOne(query.ToSql());
      ++ran;
      ASSERT_FALSE(outcome.diverged)
          << "catalog seed " << catalog_seed << ", query " << i << ":\n"
          << outcome.report;
    }
  }
  EXPECT_EQ(ran, 200u);
}

}  // namespace
}  // namespace radb::testing
