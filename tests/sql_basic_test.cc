#include <gtest/gtest.h>

#include "api/database.h"

#include "test_util.h"

namespace radb {
namespace {

class SqlBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Exec(db_, "CREATE TABLE t (a INTEGER, b DOUBLE, "
                               "c STRING)")
                    .ok());
    ASSERT_TRUE(Exec(db_, "INSERT INTO t VALUES "
                               "(1, 1.5, 'x'), (2, 2.5, 'y'), "
                               "(3, 3.5, 'x'), (4, 4.5, 'z')")
                    .ok());
  }
  Database db_;
};

TEST_F(SqlBasicTest, SelectStar) {
  auto rs = Exec(db_, "SELECT * FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 4u);
  EXPECT_EQ(rs->num_columns(), 3u);
}

TEST_F(SqlBasicTest, WhereFilter) {
  auto rs = Exec(db_, "SELECT a FROM t WHERE b > 2.0 AND c = 'x'");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 3);
}

TEST_F(SqlBasicTest, Projection) {
  auto rs = Exec(db_, "SELECT a * 2 + 1 AS v FROM t WHERE a = 2");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 5);
  EXPECT_EQ(rs->columns[0].name, "v");
}

TEST_F(SqlBasicTest, ScalarAggregates) {
  auto rs = Exec(db_, 
      "SELECT COUNT(*), SUM(a), AVG(b), MIN(a), MAX(c) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 4);
  EXPECT_EQ(rs->at(0, 1).AsInt().value(), 10);
  EXPECT_DOUBLE_EQ(rs->at(0, 2).AsDouble().value(), 3.0);
  EXPECT_EQ(rs->at(0, 3).AsInt().value(), 1);
  EXPECT_EQ(rs->at(0, 4).string_value(), "z");
}

TEST_F(SqlBasicTest, GroupBy) {
  auto rs = Exec(db_, 
      "SELECT c, SUM(a) AS s FROM t GROUP BY c ORDER BY c");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->at(0, 0).string_value(), "x");
  EXPECT_EQ(rs->at(0, 1).AsInt().value(), 4);
  EXPECT_EQ(rs->at(2, 0).string_value(), "z");
}

TEST_F(SqlBasicTest, GroupByExpression) {
  // GROUP BY an arithmetic expression; SELECT references it verbatim.
  auto rs = Exec(db_, 
      "SELECT a / 2, COUNT(*) FROM t GROUP BY a / 2 ORDER BY a / 2");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 3u);  // groups 0 (a=1), 1 (a=2,3), 2 (a=4)
  EXPECT_EQ(rs->at(1, 1).AsInt().value(), 2);
}

TEST_F(SqlBasicTest, HavingFiltersGroups) {
  auto rs = Exec(db_, 
      "SELECT c, SUM(a) AS s FROM t GROUP BY c HAVING SUM(a) > 3 "
      "ORDER BY c");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 2u);  // 'x' (4) and 'z' (4); 'y' (2) dropped
  EXPECT_EQ(rs->at(0, 0).string_value(), "x");
  EXPECT_EQ(rs->at(1, 0).string_value(), "z");
  // HAVING may reference group keys.
  auto rs2 = Exec(db_, 
      "SELECT c, COUNT(*) FROM t GROUP BY c HAVING c = 'x'");
  ASSERT_TRUE(rs2.ok()) << rs2.status();
  EXPECT_EQ(rs2->num_rows(), 1u);
  // HAVING without aggregates/GROUP BY is rejected.
  EXPECT_EQ(Exec(db_, "SELECT a FROM t HAVING a > 1").status().code(),
            StatusCode::kBindError);
  // HAVING must be boolean.
  EXPECT_EQ(Exec(db_, "SELECT c FROM t GROUP BY c HAVING 1 + 1")
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST_F(SqlBasicTest, JoinTwoTables) {
  ASSERT_TRUE(Exec(db_, "CREATE TABLE u (a INTEGER, d DOUBLE); "
                             "INSERT INTO u VALUES (1, 10.0), (3, 30.0)")
                  .ok());
  auto rs = Exec(db_, 
      "SELECT t.a, u.d FROM t, u WHERE t.a = u.a ORDER BY t.a");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 1);
  EXPECT_DOUBLE_EQ(rs->at(1, 1).AsDouble().value(), 30.0);
}

TEST_F(SqlBasicTest, SelfJoinWithAliases) {
  auto rs = Exec(db_, 
      "SELECT x1.a, x2.a FROM t AS x1, t AS x2 "
      "WHERE x1.a = x2.a ORDER BY x1.a");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 4u);
}

TEST_F(SqlBasicTest, CrossJoinCount) {
  auto rs = Exec(db_, 
      "SELECT COUNT(*) FROM t AS x1, t AS x2");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 16);
}

TEST_F(SqlBasicTest, NonEquiJoinPredicate) {
  auto rs = Exec(db_, 
      "SELECT COUNT(*) FROM t AS x1, t AS x2 WHERE x1.a < x2.a");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 6);
}

TEST_F(SqlBasicTest, DistinctAndLimit) {
  auto rs = Exec(db_, "SELECT DISTINCT c FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 3u);
  auto rs2 = Exec(db_, "SELECT a FROM t ORDER BY a DESC LIMIT 2");
  ASSERT_TRUE(rs2.ok()) << rs2.status();
  ASSERT_EQ(rs2->num_rows(), 2u);
  EXPECT_EQ(rs2->at(0, 0).AsInt().value(), 4);
}

TEST_F(SqlBasicTest, ViewsExpand) {
  ASSERT_TRUE(Exec(db_, "CREATE VIEW big (a) AS "
                             "SELECT a FROM t WHERE b > 2.0")
                  .ok());
  auto rs = Exec(db_, "SELECT COUNT(*) FROM big");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 3);
  // Views compose with joins.
  auto rs2 =
      Exec(db_, "SELECT COUNT(*) FROM big AS b1, big AS b2 "
                     "WHERE b1.a = b2.a");
  ASSERT_TRUE(rs2.ok()) << rs2.status();
  EXPECT_EQ(rs2->at(0, 0).AsInt().value(), 3);
}

TEST_F(SqlBasicTest, SubqueryInFrom) {
  auto rs = Exec(db_, 
      "SELECT s.c, s.total FROM "
      "(SELECT c, SUM(a) AS total FROM t GROUP BY c) AS s "
      "WHERE s.total > 3 ORDER BY s.c");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->at(0, 0).string_value(), "x");
}

TEST_F(SqlBasicTest, CreateTableAs) {
  ASSERT_TRUE(
      Exec(db_, "CREATE TABLE t2 AS SELECT a, b FROM t WHERE a > 2")
          .ok());
  auto rs = Exec(db_, "SELECT COUNT(*) FROM t2");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 2);
}

TEST_F(SqlBasicTest, BindErrors) {
  EXPECT_EQ(Exec(db_, "SELECT nope FROM t").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(Exec(db_, "SELECT a FROM missing").status().code(),
            StatusCode::kCatalogError);
  EXPECT_EQ(Exec(db_, "SELECT t.a FROM t, t").status().code(),
            StatusCode::kBindError);  // duplicate alias
  EXPECT_EQ(Exec(db_, "SELECT a, SUM(b) FROM t").status().code(),
            StatusCode::kBindError);  // a not grouped
  EXPECT_EQ(Exec(db_, "SELECT SUM(SUM(a)) FROM t").status().code(),
            StatusCode::kBindError);  // nested aggregate
  EXPECT_EQ(Exec(db_, "SELECT no_such_fn(a) FROM t").status().code(),
            StatusCode::kCatalogError);
}

TEST_F(SqlBasicTest, TypeErrors) {
  EXPECT_EQ(Exec(db_, "SELECT a FROM t WHERE a + 1").status().code(),
            StatusCode::kTypeError);  // WHERE must be boolean
  EXPECT_EQ(Exec(db_, "SELECT a + c FROM t").status().code(),
            StatusCode::kTypeError);  // int + string
  EXPECT_EQ(Exec(db_, "SELECT a FROM t WHERE c > 1").status().code(),
            StatusCode::kTypeError);  // string vs numeric ordering
}

TEST_F(SqlBasicTest, EmptyTableAggregates) {
  ASSERT_TRUE(Exec(db_, "CREATE TABLE empty (a INTEGER)").ok());
  auto rs = Exec(db_, "SELECT COUNT(*), SUM(a) FROM empty");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 0);
  EXPECT_TRUE(rs->at(0, 1).is_null());
}

TEST_F(SqlBasicTest, IntegerDivisionTruncates) {
  auto rs = Exec(db_, "SELECT a / 2 FROM t WHERE a = 3");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 1);
}

TEST_F(SqlBasicTest, MetricsPopulated) {
  ASSERT_TRUE(Exec(db_, "SELECT c, SUM(a) FROM t GROUP BY c").ok());
  const QueryMetrics& m = db_.last_metrics();
  EXPECT_GT(m.operators.size(), 0u);
  bool saw_aggregate = false;
  for (const auto& op : m.operators) {
    if (op.name.find("Aggregate") != std::string::npos) {
      saw_aggregate = true;
    }
  }
  EXPECT_TRUE(saw_aggregate);
}

TEST_F(SqlBasicTest, ExplainAnalyzeAnnotatesEveryNode) {
  auto rs =
      Exec(db_, "EXPLAIN ANALYZE SELECT c, SUM(a) FROM t GROUP BY c");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_columns(), 1u);
  std::string text;
  for (size_t r = 0; r < rs->num_rows(); ++r) {
    text += rs->at(r, 0).string_value();
    text += "\n";
  }
  EXPECT_NE(text.find("Aggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan t"), std::string::npos) << text;
  EXPECT_NE(text.find("est rows="), std::string::npos) << text;
  EXPECT_NE(text.find("actual rows="), std::string::npos) << text;
  EXPECT_NE(text.find("max-worker="), std::string::npos) << text;
  EXPECT_NE(text.find("skew="), std::string::npos) << text;
  EXPECT_NE(text.find("wall time:"), std::string::npos) << text;
  // EXPLAIN ANALYZE executed the query, so last_metrics() is the run
  // it reports.
  const QueryMetrics& m = db_.last_metrics();
  EXPECT_GT(m.operators.size(), 0u);
  EXPECT_GT(m.wall_seconds, 0.0);
  // The Scan annotation carries that operator's actual row count.
  EXPECT_NE(text.find("actual rows=4"), std::string::npos) << text;
}

TEST_F(SqlBasicTest, PlainExplainDoesNotExecute) {
  auto rs = Exec(db_, "EXPLAIN SELECT a FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  std::string text;
  for (size_t r = 0; r < rs->num_rows(); ++r) {
    text += rs->at(r, 0).string_value();
    text += "\n";
  }
  EXPECT_EQ(text.find("actual rows="), std::string::npos) << text;
  EXPECT_NE(text.find("estimated cost:"), std::string::npos) << text;
}

TEST_F(SqlBasicTest, DropTableAndView) {
  ASSERT_TRUE(Exec(db_, "CREATE VIEW v AS SELECT a FROM t").ok());
  ASSERT_TRUE(Exec(db_, "DROP VIEW v").ok());
  EXPECT_FALSE(Exec(db_, "SELECT * FROM v").ok());
  ASSERT_TRUE(Exec(db_, "DROP TABLE t").ok());
  EXPECT_FALSE(Exec(db_, "SELECT * FROM t").ok());
}

// Distribution sanity: results are identical across cluster sizes.
class ClusterSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ClusterSizeTest, SameAnswerAnyWorkerCount) {
  Database::Config config;
  config.num_workers = GetParam();
  Database db(config);
  ASSERT_TRUE(Exec(db, "CREATE TABLE t (k INTEGER, v DOUBLE)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(
        Row{Value::Int(i % 7), Value::Double(static_cast<double>(i))});
  }
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());
  auto rs = Exec(db, 
      "SELECT k, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY k ORDER BY k");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 7u);
  double total = 0;
  int64_t count = 0;
  for (size_t r = 0; r < rs->num_rows(); ++r) {
    total += rs->at(r, 1).AsDouble().value();
    count += rs->at(r, 2).AsInt().value();
  }
  EXPECT_DOUBLE_EQ(total, 99.0 * 100 / 2);
  EXPECT_EQ(count, 100);
}

INSTANTIATE_TEST_SUITE_P(Workers, ClusterSizeTest,
                         ::testing::Values(1, 2, 3, 8, 16));

}  // namespace
}  // namespace radb
