#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "api/database.h"

#include "test_util.h"
#include "common/rng.h"
#include "la/random.h"
#include "storage/csv.h"
#include "storage/serialize.h"

namespace radb {
namespace {

/// Temp file that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SerializeTest, RoundTripAllValueKinds) {
  Schema schema({Column{"", "i", DataType::Integer()},
                 Column{"", "d", DataType::Double()},
                 Column{"", "s", DataType::String()},
                 Column{"", "b", DataType::Boolean()},
                 Column{"", "ls", DataType::LabeledScalar()},
                 Column{"", "v", DataType::MakeVector(3)},
                 Column{"", "m", DataType::MakeMatrix(2, 2)}});
  Table table("mixed", schema, 3);
  Rng rng(4);
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(table
                    .Insert(Row{Value::Int(i), Value::Double(i * 1.5),
                                Value::String("row" + std::to_string(i)),
                                Value::Bool(i % 2 == 0),
                                Value::Labeled(i * 0.5, i),
                                Value::FromVector(la::RandomVector(rng, 3),
                                                  i),
                                Value::FromMatrix(
                                    la::RandomMatrix(rng, 2, 2))})
                    .ok());
  }
  ASSERT_TRUE(table.Insert(Row{Value::Null(), Value::Null(), Value::Null(),
                               Value::Null(), Value::Null(), Value::Null(),
                               Value::Null()})
                  .ok());

  TempFile file("roundtrip.radb");
  ASSERT_TRUE(WriteTableFile(table, file.path()).ok());
  auto loaded = ReadTableFile(file.path(), 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->name(), "mixed");
  EXPECT_EQ((*loaded)->num_rows(), 18u);
  EXPECT_EQ((*loaded)->num_partitions(), 5u);
  EXPECT_EQ((*loaded)->schema().size(), 7u);
  EXPECT_EQ((*loaded)->schema().at(6).type.ToString(), "MATRIX[2][2]");

  // Row-level deep equality (gather both, compare as multisets keyed
  // by the integer column; NULL row checked separately).
  RowSet original = *table.Gather();
  RowSet restored = *(*loaded)->Gather();
  ASSERT_EQ(original.size(), restored.size());
  auto find_by_key = [&](const RowSet& rows, const Value& key) -> const Row* {
    for (const Row& r : rows) {
      if (r[0].Equals(key)) return &r;
    }
    return nullptr;
  };
  for (const Row& row : original) {
    const Row* match = find_by_key(restored, row[0]);
    ASSERT_NE(match, nullptr);
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_TRUE(row[c].Equals((*match)[c])) << "col " << c;
    }
    // Vector labels survive the round trip.
    if (row[5].kind() == TypeKind::kVector) {
      EXPECT_EQ(row[5].vector_value().label,
                (*match)[5].vector_value().label);
    }
  }
}

TEST(SerializeTest, RejectsGarbageAndTruncation) {
  TempFile garbage("garbage.radb");
  {
    std::ofstream os(garbage.path(), std::ios::binary);
    os << "definitely not a table";
  }
  EXPECT_EQ(ReadTableFile(garbage.path(), 2).status().code(),
            StatusCode::kInvalidArgument);

  // Truncate a valid file and check we fail cleanly.
  Schema schema({Column{"", "v", DataType::MakeVector(100)}});
  Table table("t", schema, 1);
  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        table.Insert(Row{Value::FromVector(la::RandomVector(rng, 100))})
            .ok());
  }
  TempFile full("full.radb");
  ASSERT_TRUE(WriteTableFile(table, full.path()).ok());
  std::ifstream is(full.path(), std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  TempFile cut("cut.radb");
  {
    std::ofstream os(cut.path(), std::ios::binary);
    os.write(contents.data(),
             static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_EQ(ReadTableFile(cut.path(), 2).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_FALSE(ReadTableFile("/no/such/dir/x.radb", 2).ok());
}

TEST(SerializeTest, DatabaseSaveLoadQueryable) {
  TempFile file("db_table.radb");
  {
    Database db;
    ASSERT_TRUE(Exec(db, "CREATE TABLE pts (id INTEGER, "
                              "vec VECTOR[4])")
                    .ok());
    Rng rng(6);
    std::vector<Row> rows;
    for (int i = 0; i < 32; ++i) {
      rows.push_back({Value::Int(i),
                      Value::FromVector(la::RandomVector(rng, 4))});
    }
    ASSERT_TRUE(db.BulkInsert("pts", std::move(rows)).ok());
    ASSERT_TRUE(db.SaveTable("pts", file.path()).ok());
    EXPECT_FALSE(db.SaveTable("missing", file.path()).ok());
  }
  {
    Database db;
    ASSERT_TRUE(db.LoadTable("pts2", file.path()).ok());
    // Name collision refused.
    EXPECT_FALSE(db.LoadTable("pts2", file.path()).ok());
    auto rs = Exec(db, 
        "SELECT COUNT(*), SUM(inner_product(vec, vec)) FROM pts2");
    ASSERT_TRUE(rs.ok()) << rs.status();
    EXPECT_EQ(rs->at(0, 0).AsInt().value(), 32);
    EXPECT_GT(rs->at(0, 1).AsDouble().value(), 0.0);
  }
}

TEST(CsvTest, RoundTripAllKinds) {
  Schema schema({Column{"", "i", DataType::Integer()},
                 Column{"", "d", DataType::Double()},
                 Column{"", "s", DataType::String()},
                 Column{"", "ls", DataType::LabeledScalar()},
                 Column{"", "v", DataType::MakeVector(3)},
                 Column{"", "m", DataType::MakeMatrix(2, 2)}});
  Table table("csvt", schema, 2);
  Rng rng(14);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(
        table
            .Insert(Row{Value::Int(i), Value::Double(i / 3.0),
                        Value::String("quote\"and,comma" +
                                      std::to_string(i)),
                        Value::Labeled(i * 1.5, i),
                        Value::FromVector(la::RandomVector(rng, 3)),
                        Value::FromMatrix(la::RandomMatrix(rng, 2, 2))})
            .ok());
  }
  ASSERT_TRUE(table.Insert(Row{Value::Null(), Value::Null(), Value::Null(),
                               Value::Null(), Value::Null(), Value::Null()})
                  .ok());
  TempFile file("roundtrip.csv");
  ASSERT_TRUE(WriteCsvFile(table, file.path()).ok());
  auto loaded = ReadCsvFile(file.path(), "csvt2", schema, 3);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ((*loaded)->num_rows(), 10u);
  RowSet original = *table.Gather();
  RowSet restored = *(*loaded)->Gather();
  auto find_by_key = [&](const RowSet& rows, const Value& key) -> const Row* {
    for (const Row& r : rows) {
      if (r[0].Equals(key)) return &r;
    }
    return nullptr;
  };
  for (const Row& row : original) {
    const Row* match = find_by_key(restored, row[0]);
    ASSERT_NE(match, nullptr);
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_TRUE(row[c].Equals((*match)[c]))
          << "col " << c << ": " << row[c].ToString() << " vs "
          << (*match)[c].ToString();
    }
  }
}

TEST(CsvTest, RejectsMalformedInput) {
  Schema schema({Column{"", "a", DataType::Integer()},
                 Column{"", "v", DataType::MakeVector(2)}});
  auto write = [](const std::string& path, const std::string& body) {
    std::ofstream os(path);
    os << body;
  };
  TempFile wrong_cols("wrong_cols.csv");
  write(wrong_cols.path(), "a,v\n1,\"[1;2]\",extra\n");
  EXPECT_FALSE(ReadCsvFile(wrong_cols.path(), "t", schema, 2).ok());

  TempFile bad_vec("bad_vec.csv");
  write(bad_vec.path(), "a,v\n1,\"1;2\"\n");  // missing brackets
  EXPECT_FALSE(ReadCsvFile(bad_vec.path(), "t", schema, 2).ok());

  TempFile unterminated("unterminated.csv");
  write(unterminated.path(), "a,v\n1,\"[1;2]\n");
  EXPECT_FALSE(ReadCsvFile(unterminated.path(), "t", schema, 2).ok());

  TempFile empty("empty.csv");
  write(empty.path(), "");
  EXPECT_FALSE(ReadCsvFile(empty.path(), "t", schema, 2).ok());

  // Vector length must match the declared VECTOR[2].
  TempFile wrong_len("wrong_len.csv");
  write(wrong_len.path(), "a,v\n1,\"[1;2;3]\"\n");
  EXPECT_FALSE(ReadCsvFile(wrong_len.path(), "t", schema, 2).ok());
}

}  // namespace
}  // namespace radb
