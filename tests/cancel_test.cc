#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"

#include "test_util.h"
#include "common/rng.h"
#include "la/random.h"
#include "la/tiled.h"
#include "service/session.h"

namespace radb {
namespace {

using service::ServiceConfig;
using service::SessionManager;

/// Sizable cross join (~10M pairs) whose row loops poll the token
/// every 256 rows — long enough that a cancel landing ~50 ms in is
/// always mid-flight, short enough to finish if never cancelled.
constexpr char kLongJoin[] =
    "SELECT a.k, COUNT(*) FROM pts a, pts b WHERE a.k < 20 GROUP BY a.k";

class CancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(
        Exec(*db_, "CREATE TABLE pts (k INTEGER, x DOUBLE)").ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 5000; ++i) {
      rows.push_back({Value::Int(i % 50), Value::Double(0.5 * (i % 31))});
    }
    ASSERT_TRUE(db_->BulkInsert("pts", std::move(rows)).ok());
  }

  std::unique_ptr<Database> db_;
};

// ----------------------------------------------------------------------
// Mid-join cancellation from another thread.
// ----------------------------------------------------------------------

TEST_F(CancelTest, CancelMidJoinAbortsPromptlyAndKeepsDatabaseHealthy) {
  QueryOptions opts;
  opts.cancellation = std::make_shared<CancellationToken>();
  std::thread canceller([token = opts.cancellation] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token->Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  auto got = db_->Execute(kLongJoin, opts);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << got.status();
  // Cooperative polling is row-batch granular: the abort lands well
  // before the join would have finished.
  EXPECT_LT(seconds, 5.0);

  // The Database is not poisoned: the same query runs to completion.
  auto again = Exec(*db_, "SELECT COUNT(*) FROM pts");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->at(0, 0).int_value(), 5000);
}

TEST_F(CancelTest, DeadlineMidExecutionReturnsDeadlineExceeded) {
  QueryOptions opts;
  opts.deadline_ms = 50;
  auto got = db_->Execute(kLongJoin, opts);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
      << got.status();
}

TEST_F(CancelTest, CancelBetweenStatementsDropsTheRestOfTheScript) {
  // The token fires during the long first statement; the script's
  // later DDL must not run.
  QueryOptions opts;
  opts.cancellation = std::make_shared<CancellationToken>();
  std::thread canceller([token = opts.cancellation] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token->Cancel();
  });
  auto got = db_->Execute(std::string(kLongJoin) +
                              "; CREATE TABLE leftover (v INTEGER)",
                          opts);
  canceller.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
  // leftover was never created.
  EXPECT_FALSE(Exec(*db_, "SELECT COUNT(*) FROM leftover").ok());
}

// ----------------------------------------------------------------------
// Vectorized-pipeline cancellation: the batch engine polls the token
// once per ColumnBatch (the columnar analogue of the row loops'
// 256-row granularity).
// ----------------------------------------------------------------------

class VectorizedCancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Config cfg;
    cfg.enable_vectorized = true;
    // Tiny batches: ~30k batches over the table, so a cancel landing
    // anywhere mid-aggregate hits a per-batch poll almost instantly.
    cfg.vectorized_batch_rows = 16;
    db_ = std::make_unique<Database>(cfg);
    ASSERT_TRUE(
        Exec(*db_, "CREATE TABLE pts (k INTEGER, x DOUBLE)").ok());
    std::vector<Row> rows;
    rows.reserve(500000);
    for (int64_t i = 0; i < 500000; ++i) {
      rows.push_back({Value::Int(i % 997), Value::Double(0.5 * (i % 31))});
    }
    ASSERT_TRUE(db_->BulkInsert("pts", std::move(rows)).ok());
  }

  // Scan -> filter -> group-by chain that is fully batch-capable, so
  // the whole pipeline (including the typed hash aggregate) runs on
  // the columnar engine.
  static constexpr char kVectorizedAgg[] =
      "SELECT k, COUNT(*), SUM(x), AVG(x) FROM pts WHERE x >= 0.0 "
      "GROUP BY k";

  std::unique_ptr<Database> db_;
};

constexpr char VectorizedCancelTest::kVectorizedAgg[];

TEST_F(VectorizedCancelTest, QueryActuallyRunsVectorized) {
  // Guard for the cancellation tests below: this exact query must
  // take the batch path, or they would only cover the row engine.
  auto rs = Exec(*db_, std::string("EXPLAIN ANALYZE ") +
                            kVectorizedAgg);
  ASSERT_TRUE(rs.ok()) << rs.status();
  std::string plan;
  for (size_t i = 0; i < rs->num_rows(); ++i) {
    plan += rs->at(i, 0).string_value() + "\n";
  }
  EXPECT_NE(plan.find("exec=batch"), std::string::npos) << plan;
}

TEST_F(VectorizedCancelTest, PreCancelledTokenStopsVectorizedAggregate) {
  QueryOptions opts;
  opts.cancellation = std::make_shared<CancellationToken>();
  opts.cancellation->Cancel();
  auto got = db_->Execute(kVectorizedAgg, opts);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << got.status();
}

TEST_F(VectorizedCancelTest, CancelMidVectorizedAggregateAbortsPromptly) {
  QueryOptions opts;
  opts.cancellation = std::make_shared<CancellationToken>();
  std::thread canceller([token = opts.cancellation] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token->Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  auto got = db_->Execute(kVectorizedAgg, opts);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << got.status();
  EXPECT_LT(seconds, 5.0);

  // Aggregate state charged mid-flight was released and the Database
  // is healthy: the same query completes and agrees with COUNT(*).
  auto again = Exec(*db_, "SELECT COUNT(*) FROM pts");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->at(0, 0).int_value(), 500000);
}

// ----------------------------------------------------------------------
// LA kernel cancellation (TiledMultiply checks per tile match).
// ----------------------------------------------------------------------

TEST(TiledCancelTest, PreCancelledTokenStopsTiledMultiply) {
  Rng rng(11);
  const auto ta = la::SplitIntoTiles(la::RandomMatrix(rng, 64, 64), 16, 16);
  const auto tb = la::SplitIntoTiles(la::RandomMatrix(rng, 64, 64), 16, 16);
  CancellationToken token;
  token.Cancel();
  la::TiledOptions options;
  options.cancel = &token;
  auto got = la::TiledMultiply(ta, tb, options);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << got.status();
}

TEST(TiledCancelTest, DeadlineExpiresMidTiledMultiply) {
  Rng rng(12);
  // 8x8 grid of 64x64 tiles: 512 tile products — far more work than
  // a 1 ms deadline allows, so the per-tile check fires mid-kernel.
  const auto ta = la::SplitIntoTiles(la::RandomMatrix(rng, 512, 512), 64, 64);
  const auto tb = la::SplitIntoTiles(la::RandomMatrix(rng, 512, 512), 64, 64);
  CancellationToken token;
  token.ArmDeadlineMs(1);
  la::TiledOptions options;
  options.cancel = &token;
  auto got = la::TiledMultiply(ta, tb, options);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
      << got.status();
}

TEST(TiledCancelTest, BudgetedTiledMultiplyReleasesTrackerOnCancel) {
  Rng rng(13);
  const auto ta = la::SplitIntoTiles(la::RandomMatrix(rng, 64, 64), 16, 16);
  const auto tb = la::SplitIntoTiles(la::RandomMatrix(rng, 64, 64), 16, 16);
  mem::MemoryTracker tracker("query", 8u << 10);
  CancellationToken token;
  token.ArmDeadlineMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  la::TiledOptions options;
  options.tracker = &tracker;
  options.cancel = &token;
  options.query_id = 42;
  auto got = la::TiledMultiply(ta, tb, options);
  ASSERT_FALSE(got.ok());
  // Everything the kernel reserved before the abort was handed back.
  EXPECT_EQ(tracker.bytes_in_use(), 0u);
}

// ----------------------------------------------------------------------
// Cancelled budgeted queries leave no spill files and no tracker
// charges behind.
// ----------------------------------------------------------------------

TEST(CancelCleanupTest, CancelledSpillingQueryLeavesNoFilesOrCharges) {
  namespace fs = std::filesystem;
  // Private spill dir so the emptiness check cannot see anyone else's
  // files.
  std::string dir_template =
      (fs::temp_directory_path() / "radb-cancel-XXXXXX").string();
  ASSERT_NE(mkdtemp(dir_template.data()), nullptr);
  const fs::path spill_dir(dir_template);

  {
    Database::Config cfg;
    cfg.spill_dir = spill_dir.string();
    Database db(cfg);
    ASSERT_TRUE(Exec(db, "CREATE TABLE big (k INTEGER, pad STRING)")
                    .ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 4000; ++i) {
      rows.push_back(
          {Value::Int(i % 40), Value::String(std::string(100, 'p'))});
    }
    ASSERT_TRUE(db.BulkInsert("big", std::move(rows)).ok());

    SessionManager manager(&db);
    auto session = manager.CreateSession();
    // A spilling join (64 KB budget) cancelled mid-flight.
    QueryOptions opts;
    opts.memory_budget_bytes = 64u << 10;
    // The sequence number the upcoming Execute will get, captured
    // before launching the canceller so nothing races on it.
    const uint64_t seq = session->next_query_seq();
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      session->Cancel(seq);
    });
    auto got = session->Execute(
        "SELECT a.k, COUNT(*) FROM big a, big b WHERE a.k = b.k GROUP BY a.k",
        opts);
    canceller.join();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << got.status();

    // No tracker charges survived the abort, at either level.
    EXPECT_EQ(manager.admission().global_tracker()->bytes_in_use(), 0u);
    EXPECT_EQ(manager.admission().claimed_bytes(), 0u);
    // Spill files are mkstemp'd and unlinked at creation, so even
    // mid-spill cancellation leaves the directory empty.
    EXPECT_TRUE(fs::is_empty(spill_dir));
  }
  std::error_code ec;
  fs::remove_all(spill_dir, ec);
}

}  // namespace
}  // namespace radb
