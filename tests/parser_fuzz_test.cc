#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "parser/parser.h"

namespace radb::parser {
namespace {

/// Robustness sweeps: the parser must never crash — every input
/// either parses or produces a clean ParseError.

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const std::vector<std::string> vocab = {
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",    "ORDER",  "LIMIT",
      "CREATE", "TABLE", "VIEW",  "AS",    "AND",   "OR",     "NOT",
      "(",      ")",     "[",     "]",     ",",     ".",      ";",
      "+",      "-",     "*",     "/",     "=",     "<>",     "<",
      ">",      "<=",    ">=",    "t",     "x",     "a1",     "42",
      "3.14",   "'s'",   "MATRIX", "VECTOR", "INTEGER", "SUM", "COUNT",
      "NULL",   "TRUE",  "HAVING", "DISTINCT", "INSERT", "INTO",
      "VALUES", "JOIN",  "ON",    "1e300"};
  Rng rng(2024);
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t len = 1 + rng.NextBelow(24);
    std::string sql;
    for (size_t i = 0; i < len; ++i) {
      sql += vocab[rng.NextBelow(vocab.size())];
      sql += ' ';
    }
    // Must not crash; status is either OK or a clean error.
    auto result = ParseStatement(sql);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << sql;
    }
  }
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = rng.NextBelow(64);
    std::string sql;
    for (size_t i = 0; i < len; ++i) {
      sql += static_cast<char>(32 + rng.NextBelow(95));  // printable
    }
    (void)ParseStatement(sql);
    (void)ParseScript(sql);
  }
}

TEST(ParserFuzzTest, GeneratedSelectsRoundTrip) {
  // Grammar-directed generation: build random (valid) SELECTs, print
  // them, re-parse, and require a printing fixpoint.
  Rng rng(99);
  auto gen_expr = [&](auto&& self, int depth) -> std::string {
    if (depth <= 0 || rng.NextBelow(3) == 0) {
      switch (rng.NextBelow(4)) {
        case 0:
          return "c" + std::to_string(rng.NextBelow(4));
        case 1:
          return std::to_string(rng.NextBelow(100));
        case 2:
          return "t.c" + std::to_string(rng.NextBelow(4));
        default:
          return "3.5";
      }
    }
    switch (rng.NextBelow(4)) {
      case 0:
        return "(" + self(self, depth - 1) + " + " +
               self(self, depth - 1) + ")";
      case 1:
        return "(" + self(self, depth - 1) + " * " +
               self(self, depth - 1) + ")";
      case 2:
        return "f" + std::to_string(rng.NextBelow(3)) + "(" +
               self(self, depth - 1) + ")";
      default:
        return "(" + self(self, depth - 1) + " - " +
               self(self, depth - 1) + ")";
    }
  };
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql = "SELECT " + gen_expr(gen_expr, 3);
    if (rng.NextBelow(2)) sql += ", " + gen_expr(gen_expr, 2);
    sql += " FROM t";
    if (rng.NextBelow(2)) sql += ", u AS alias" + std::to_string(trial % 7);
    if (rng.NextBelow(2)) {
      sql += " WHERE " + gen_expr(gen_expr, 2) + " = " +
             gen_expr(gen_expr, 2);
    }
    if (rng.NextBelow(3) == 0) sql += " GROUP BY c1";
    if (rng.NextBelow(3) == 0) {
      sql += " LIMIT " + std::to_string(rng.NextBelow(10));
    }
    auto first = ParseSelect(sql);
    ASSERT_TRUE(first.ok()) << sql << "\n" << first.status();
    const std::string printed = (*first)->ToString();
    auto second = ParseSelect(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(printed, (*second)->ToString()) << sql;
  }
}

TEST(ParserFuzzTest, DeeplyNestedExpressionsParse) {
  // 200 levels of parentheses must not blow the stack or error.
  std::string sql = "SELECT ";
  for (int i = 0; i < 200; ++i) sql += "(";
  sql += "1";
  for (int i = 0; i < 200; ++i) sql += " + 1)";
  sql += " FROM t";
  EXPECT_TRUE(ParseStatement(sql).ok());
}

}  // namespace
}  // namespace radb::parser
