// Persistence battery for the paged store behind Database::Open:
// pager/B+ tree/buffer-pool units, cold-restart recovery, fork+kill
// crash recovery against a never-crashed oracle, larger-than-pool
// bit-identity, index durability, and data-directory hygiene. Runs
// under the ctest label `storage` (rerun under ASan by
// scripts/fuzz.sh and under TSan by scripts/stress.sh).

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/database.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "test_util.h"

namespace radb {
namespace {

namespace fs = std::filesystem;
using storage::BTreeIndex;
using storage::BufferPool;
using storage::SegmentRows;
using storage::PageFile;
using storage::RecordId;
using storage::Rid;

/// A fresh data directory removed (recursively) at scope exit.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "/radb_persist_XXXXXX";
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Database::Config SmallConfig() {
  Database::Config config;
  config.num_workers = 4;
  config.num_threads = 1;
  return config;
}

RowSet Rows(Database& db, const std::string& sql) {
  Result<ResultSet> rs = Exec(db, sql);
  EXPECT_TRUE(rs.ok()) << rs.status();
  return rs.ok() ? rs->rows : RowSet{};
}

/// Cell-exact equality, both sides in their arrival order (scans are
/// deterministic, so persistence must reproduce the exact order too).
void ExpectSameRows(const RowSet& a, const RowSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "row " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_TRUE(a[i][j].Equals(b[i][j]))
          << "row " << i << " col " << j << ": " << a[i][j].ToString()
          << " vs " << b[i][j].ToString();
    }
  }
}

// ---- Pager ---------------------------------------------------------

TEST(PageFileTest, RecordsRoundTripAcrossReopen) {
  TempDir dir;
  const std::string path = dir.path() + "/t1.radb";
  PageFile file;
  ASSERT_TRUE(file.Open(path, 512).ok());

  // One inline record, one record big enough for an overflow chain.
  const std::string small = "hello pager";
  const std::string big(8000, 'x');
  auto rid_small = file.AppendRecord(small);
  auto rid_big = file.AppendRecord(big);
  ASSERT_TRUE(rid_small.ok());
  ASSERT_TRUE(rid_big.ok());
  EXPECT_EQ(*file.ReadRecord(*rid_small), small);
  EXPECT_EQ(*file.ReadRecord(*rid_big), big);
  ASSERT_TRUE(file.Sync().ok());

  const PageFile::Meta meta = file.SnapshotMeta();
  file.Close();

  PageFile again;
  ASSERT_TRUE(again.Open(path, 512).ok());
  ASSERT_TRUE(again.RestoreMeta(meta).ok());
  EXPECT_EQ(*again.ReadRecord(*rid_small), small);
  EXPECT_EQ(*again.ReadRecord(*rid_big), big);
}

TEST(PageFileTest, RejectsMismatchedPageSize) {
  TempDir dir;
  const std::string path = dir.path() + "/t1.radb";
  {
    PageFile file;
    ASSERT_TRUE(file.Open(path, 1024).ok());
  }
  PageFile other;
  EXPECT_FALSE(other.Open(path, 4096).ok());
}

TEST(PageFileTest, FreedPagesReusedOnlyAfterCommit) {
  TempDir dir;
  PageFile file;
  ASSERT_TRUE(file.Open(dir.path() + "/t1.radb", 512).ok());
  auto rid = file.AppendRecord(std::string(4000, 'y'));
  ASSERT_TRUE(rid.ok());
  const uint64_t pages_before = file.page_count();
  ASSERT_TRUE(file.FreeRecord(*rid).ok());
  EXPECT_GT(file.free_page_count(), 0u);
  // Freed pages sit in the pending list until the snapshot that
  // recorded them commits: an append before CommitFrees must NOT
  // reuse them (the last committed snapshot still references them).
  ASSERT_TRUE(file.AppendRecord(std::string(4000, 'z')).ok());
  EXPECT_GT(file.page_count(), pages_before);
  // After the commit they are allocatable: the next same-sized append
  // reuses them instead of growing the file.
  file.CommitFrees();
  const uint64_t pages_committed = file.page_count();
  ASSERT_TRUE(file.AppendRecord(std::string(4000, 'w')).ok());
  EXPECT_EQ(file.page_count(), pages_committed);
}

TEST(PageFileTest, RestoreMetaTruncatesUncommittedAppends) {
  TempDir dir;
  PageFile file;
  ASSERT_TRUE(file.Open(dir.path() + "/t1.radb", 512).ok());
  ASSERT_TRUE(file.AppendRecord("committed").ok());
  const PageFile::Meta committed = file.SnapshotMeta();
  ASSERT_TRUE(file.AppendRecord(std::string(5000, 'u')).ok());
  EXPECT_GT(file.page_count(), committed.page_count);
  ASSERT_TRUE(file.RestoreMeta(committed).ok());
  EXPECT_EQ(file.page_count(), committed.page_count);
}

// ---- B+ tree -------------------------------------------------------

TEST(BTreeIndexTest, PointAndRangeLookups) {
  BTreeIndex tree(1);
  for (int64_t k = 0; k < 1000; ++k) {
    tree.Insert(&k, Rid{static_cast<uint32_t>(k % 4),
                        static_cast<uint64_t>(k)});
  }
  EXPECT_EQ(tree.size(), 1000u);

  std::vector<Rid> out;
  int64_t key = 423;
  tree.Lookup(&key, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ordinal, 423u);

  out.clear();
  int64_t lo = 100, hi = 199;
  tree.Range(&lo, &hi, &out);
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].ordinal, 100 + i);  // ascending key order
  }

  // Open-ended range.
  out.clear();
  lo = 990;
  hi = INT64_MAX;
  tree.Range(&lo, &hi, &out);
  EXPECT_EQ(out.size(), 10u);
}

TEST(BTreeIndexTest, DuplicateKeysReplayInInsertionOrder) {
  BTreeIndex tree(1);
  const int64_t key = 7;
  for (uint64_t i = 0; i < 50; ++i) {
    tree.Insert(&key, Rid{0, i});
  }
  std::vector<Rid> out;
  tree.Lookup(&key, &out);
  ASSERT_EQ(out.size(), 50u);
  for (uint64_t i = 0; i < 50; ++i) EXPECT_EQ(out[i].ordinal, i);
}

TEST(BTreeIndexTest, CompositeKeysAndSerializeRoundTrip) {
  BTreeIndex tree(2);
  for (int64_t r = 0; r < 20; ++r) {
    for (int64_t c = 0; c < 20; ++c) {
      int64_t key[2] = {r, c};
      tree.Insert(key, Rid{0, static_cast<uint64_t>(r * 20 + c)});
    }
  }
  // Row slice: (5, *) via composite bounds.
  std::vector<Rid> out;
  int64_t lo[2] = {5, INT64_MIN};
  int64_t hi[2] = {5, INT64_MAX};
  tree.Range(lo, hi, &out);
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(out.front().ordinal, 100u);
  EXPECT_EQ(out.back().ordinal, 119u);

  auto restored = BTreeIndex::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->size(), tree.size());
  std::vector<Rid> out2;
  (*restored)->Range(lo, hi, &out2);
  ASSERT_EQ(out2.size(), out.size());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], out2[i]);
}

// ---- Buffer pool ---------------------------------------------------

BufferPool::LoadedSegment MakeSegment(int tag, size_t charge) {
  auto rows = std::make_shared<SegmentRows>();
  rows->push_back(Row{Value::Int(tag)});
  return BufferPool::LoadedSegment{std::move(rows), charge};
}

TEST(BufferPoolTest, HitsMissesAndLruEviction) {
  BufferPool pool(/*budget_bytes=*/1000);
  size_t loads = 0;
  auto loader_for = [&](int tag) {
    return [&loads, tag]() -> Result<BufferPool::LoadedSegment> {
      ++loads;
      return MakeSegment(tag, 400);
    };
  };

  // Two segments fit; touching #1 keeps it hot, so loading #3 evicts #2.
  ASSERT_TRUE(pool.GetOrLoad({1, 0, 1}, loader_for(1)).ok());
  ASSERT_TRUE(pool.GetOrLoad({1, 0, 2}, loader_for(2)).ok());
  ASSERT_TRUE(pool.GetOrLoad({1, 0, 1}, loader_for(1)).ok());  // hit
  ASSERT_TRUE(pool.GetOrLoad({1, 0, 3}, loader_for(3)).ok());
  EXPECT_EQ(loads, 3u);

  ASSERT_TRUE(pool.GetOrLoad({1, 0, 1}, loader_for(1)).ok());  // still hot
  EXPECT_EQ(loads, 3u);
  ASSERT_TRUE(pool.GetOrLoad({1, 0, 2}, loader_for(2)).ok());  // was evicted
  EXPECT_EQ(loads, 4u);

  const BufferPool::Stats st = pool.GetStats();
  EXPECT_EQ(st.budget_bytes, 1000u);
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 4u);
  EXPECT_GE(st.evictions, 2u);
  EXPECT_LE(st.cached_bytes, 1000u);
}

TEST(BufferPoolTest, PinsBlockEvictionAndBudgetOvershoots) {
  BufferPool pool(/*budget_bytes=*/500);
  auto loader = [](int tag) {
    return [tag]() -> Result<BufferPool::LoadedSegment> {
      return MakeSegment(tag, 400);
    };
  };
  Result<BufferPool::Pin> pinned = pool.GetOrLoad({1, 0, 1}, loader(1));
  ASSERT_TRUE(pinned.ok());
  // The pinned segment cannot be evicted: the second load overshoots.
  Result<BufferPool::Pin> second = pool.GetOrLoad({1, 0, 2}, loader(2));
  ASSERT_TRUE(second.ok());
  BufferPool::Stats st = pool.GetStats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.pinned_entries, 2u);
  EXPECT_GT(st.cached_bytes, st.budget_bytes);

  // Rows stay readable through the pin even while over budget.
  EXPECT_EQ(pinned->rows()[0][0].int_value(), 1);

  pinned->Reset();
  second->Reset();
  st = pool.GetStats();
  EXPECT_EQ(st.pinned_entries, 0u);
}

TEST(BufferPoolTest, UnevictableChargePushesOutCleanSegments) {
  BufferPool pool(/*budget_bytes=*/1000);
  auto loader = [](int tag) {
    return [tag]() -> Result<BufferPool::LoadedSegment> {
      return MakeSegment(tag, 300);
    };
  };
  ASSERT_TRUE(pool.GetOrLoad({1, 0, 1}, loader(1)).ok());
  ASSERT_TRUE(pool.GetOrLoad({1, 0, 2}, loader(2)).ok());
  pool.Charge(900);  // dirty weight displaces the clean segments
  BufferPool::Stats st = pool.GetStats();
  EXPECT_EQ(st.unevictable_bytes, 900u);
  EXPECT_EQ(st.entries, 0u);
  pool.Discharge(900);
  EXPECT_EQ(pool.GetStats().unevictable_bytes, 0u);
}

TEST(BufferPoolTest, EraseTableDropsOnlyThatTable) {
  BufferPool pool(/*budget_bytes=*/0);
  auto loader = [](int tag) {
    return [tag]() -> Result<BufferPool::LoadedSegment> {
      return MakeSegment(tag, 100);
    };
  };
  ASSERT_TRUE(pool.GetOrLoad({1, 0, 1}, loader(1)).ok());
  ASSERT_TRUE(pool.GetOrLoad({2, 0, 1}, loader(2)).ok());
  pool.EraseTable(1);
  const BufferPool::Stats st = pool.GetStats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.cached_bytes, 100u);
}

// ---- Open/Close API ------------------------------------------------

TEST(OpenTest, ValidatesConfigUpFront) {
  TempDir dir;
  EXPECT_EQ(Database::Open("", SmallConfig()).status().code(),
            StatusCode::kInvalidArgument);

  Database::Config config = SmallConfig();
  config.storage.page_size = 1000;  // not a power of two
  EXPECT_EQ(Database::Open(dir.path(), config).status().code(),
            StatusCode::kInvalidArgument);

  config = SmallConfig();
  config.storage.buffer_pool_bytes = 0;
  EXPECT_EQ(Database::Open(dir.path(), config).status().code(),
            StatusCode::kInvalidArgument);

  // A buffer pool bigger than the global memory budget is rejected.
  config = SmallConfig();
  config.memory_budget_bytes = 64u << 20;
  config.storage.buffer_pool_bytes = 128u << 20;
  EXPECT_EQ(Database::Open(dir.path(), config).status().code(),
            StatusCode::kInvalidArgument);

  config = SmallConfig();
  config.num_workers = 0;
  EXPECT_EQ(Database::InMemory(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OpenTest, InMemoryDatabaseIsNotPersistent) {
  auto db = Database::InMemory(SmallConfig());
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->persistent());
  EXPECT_EQ((*db)->table_store(), nullptr);
  // Close/Checkpoint are harmless no-ops in memory.
  EXPECT_TRUE((*db)->Checkpoint().ok());
  EXPECT_TRUE((*db)->Close().ok());
  // The cheap persistence probe: zero radb_bufferpool rows in memory.
  const RowSet n = Rows(**db, "SELECT COUNT(*) FROM radb_bufferpool");
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0][0].int_value(), 0);
}

TEST(OpenTest, SecondOpenerIsLockedOut) {
  TempDir dir;
  auto db = Database::Open(dir.path(), SmallConfig());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_FALSE(Database::Open(dir.path(), SmallConfig()).ok());
  ASSERT_TRUE((*db)->Close().ok());
  // The lock releases on Close; a new opener succeeds.
  EXPECT_TRUE(Database::Open(dir.path(), SmallConfig()).ok());
}

TEST(OpenTest, MutationsAfterCloseFailLoudly) {
  TempDir dir;
  auto db = Database::Open(dir.path(), SmallConfig());
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(Exec(**db, "CREATE TABLE t (i INTEGER)").ok());
  ASSERT_TRUE((*db)->Close().ok());
  EXPECT_FALSE(Exec(**db, "INSERT INTO t VALUES (1)").ok());
}

// ---- Cold restart --------------------------------------------------

TEST(ReopenTest, CatalogAndDataSurviveRestart) {
  TempDir dir;
  RowSet before_t, before_v;
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_TRUE((*db)->persistent());
    ASSERT_TRUE(Exec(**db,
                     "CREATE TABLE t (i INTEGER, d DOUBLE, s STRING, "
                     "v VECTOR[3], m MATRIX[2][2]);"
                     "INSERT INTO t VALUES "
                     "(1, 1.5, 'one', ones_vector(3), identity_matrix(2)), "
                     "(2, 2.5, 'two', ones_vector(3), identity_matrix(2));"
                     "CREATE VIEW tv AS SELECT i, d FROM t WHERE i > 1")
                    .ok());
    before_t = Rows(**db, "SELECT * FROM t");
    before_v = Rows(**db, "SELECT * FROM tv");
    ASSERT_TRUE((*db)->Close().ok());
  }
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    ExpectSameRows(Rows(**db, "SELECT * FROM t"), before_t);
    ExpectSameRows(Rows(**db, "SELECT * FROM tv"), before_v);

    // A clean shutdown checkpointed everything: reopen replays zero
    // WAL statements (zero re-ingest) and says so in radb_bufferpool.
    const RowSet st = Rows(
        **db, "SELECT replayed_statements, recovered FROM radb_bufferpool");
    ASSERT_EQ(st.size(), 1u);
    EXPECT_EQ(st[0][0].int_value(), 0);
    EXPECT_TRUE(st[0][1].bool_value());
  }
}

TEST(ReopenTest, UncheckpointedStatementsReplayFromWal) {
  TempDir dir;
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(Exec(**db,
                     "CREATE TABLE t (i INTEGER);"
                     "INSERT INTO t VALUES (1), (2), (3)")
                    .ok());
    // No Close(): the destructor checkpoints, so sever durability from
    // the checkpoint path by copying the directory? Simpler: drop the
    // WAL-only state through a simulated crash below. Here just verify
    // the WAL grew before shutdown.
    const RowSet st = Rows(**db, "SELECT wal_bytes FROM radb_bufferpool");
    ASSERT_EQ(st.size(), 1u);
    EXPECT_GT(st[0][0].int_value(), 0);
    ASSERT_TRUE((*db)->Close().ok());
  }
}

TEST(ReopenTest, DropTableSurvivesRestartAndRemovesPageFile) {
  TempDir dir;
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(Exec(**db,
                     "CREATE TABLE keep (i INTEGER);"
                     "CREATE TABLE gone (i INTEGER);"
                     "INSERT INTO keep VALUES (7);"
                     "DROP TABLE gone")
                    .ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  // Exactly one t<id>.radb page file remains.
  size_t page_files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.substr(name.size() - 5) == ".radb") {
      ++page_files;
    }
  }
  EXPECT_EQ(page_files, 1u);
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_EQ(Rows(**db, "SELECT i FROM keep")[0][0].int_value(), 7);
    EXPECT_FALSE(Exec(**db, "SELECT * FROM gone").ok());
  }
}

TEST(ReopenTest, SweepsStaleTempFilesAtOpen) {
  TempDir dir;
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Close().ok());
  }
  // A temp file owned by a dead pid (1 is init, never matches a
  // sweepable live owner; use an impossible pid instead).
  const std::string stale =
      dir.path() + "/radb-tmp-cat-p999999999-stale";
  { std::ofstream(stale) << "garbage"; }
  ASSERT_TRUE(fs::exists(stale));
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
  }
  EXPECT_FALSE(fs::exists(stale));
}

// ---- Indexes -------------------------------------------------------

TEST(IndexTest, IndexedQueriesMatchFullScansAndSurviveRestart) {
  TempDir dir;
  std::string fill = "INSERT INTO tiles VALUES ";
  for (int i = 0; i < 500; ++i) {
    if (i > 0) fill += ", ";
    fill += "(" + std::to_string(i / 25) + ", " + std::to_string(i % 25) +
            ", " + std::to_string(i) + ".5)";
  }
  const std::string kPoint =
      "SELECT val FROM tiles WHERE tr = 3 AND tc = 7";
  const std::string kRange =
      "SELECT tr, tc, val FROM tiles WHERE tr >= 5 AND tr <= 8";

  auto plain = Database::InMemory(SmallConfig());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(
      Exec(**plain,
           "CREATE TABLE tiles (tr INTEGER, tc INTEGER, val DOUBLE)")
          .ok());
  ASSERT_TRUE(Exec(**plain, fill).ok());
  const RowSet point_oracle = Rows(**plain, kPoint);
  const RowSet range_oracle = Rows(**plain, kRange);

  RowSet point_indexed, range_indexed;
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(
        Exec(**db,
             "CREATE TABLE tiles (tr INTEGER, tc INTEGER, val DOUBLE)")
            .ok());
    ASSERT_TRUE(Exec(**db, fill).ok());
    ASSERT_TRUE(Exec(**db, "CREATE INDEX tile_idx ON tiles (tr, tc)").ok());

    // The optimizer picks the index (visible in EXPLAIN)...
    Result<std::string> explain = (*db)->Explain(kPoint);
    ASSERT_TRUE(explain.ok()) << explain.status();
    EXPECT_NE(explain->find("using tile_idx"), std::string::npos) << *explain;

    // ...and the indexed results are bit-identical to the full scans.
    point_indexed = Rows(**db, kPoint);
    range_indexed = Rows(**db, kRange);
    ASSERT_TRUE((*db)->Close().ok());
  }
  ExpectSameRows(point_indexed, point_oracle);
  ExpectSameRows(range_indexed, range_oracle);

  // The index image is checkpointed: a restart serves the same plans
  // and rows without rebuilding, and radb_indexes reports it.
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    Result<std::string> explain = (*db)->Explain(kPoint);
    ASSERT_TRUE(explain.ok()) << explain.status();
    EXPECT_NE(explain->find("using tile_idx"), std::string::npos) << *explain;
    ExpectSameRows(Rows(**db, kPoint), point_oracle);
    ExpectSameRows(Rows(**db, kRange), range_oracle);

    const RowSet idx = Rows(
        **db, "SELECT name, table_name, columns, entries FROM radb_indexes");
    ASSERT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx[0][0].string_value(), "tile_idx");
    EXPECT_EQ(idx[0][1].string_value(), "tiles");
    EXPECT_EQ(idx[0][2].string_value(), "tr,tc");
    EXPECT_EQ(idx[0][3].int_value(), 500);
  }
}

TEST(IndexTest, IndexNestedLoopJoinMatchesHashJoin) {
  auto plain = Database::InMemory(SmallConfig());
  auto indexed = Database::InMemory(SmallConfig());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(indexed.ok());
  const std::string ddl =
      "CREATE TABLE probe (k INTEGER, w DOUBLE);"
      "CREATE TABLE build (k INTEGER, v DOUBLE)";
  std::string fill = "INSERT INTO build VALUES ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) fill += ", ";
    fill += "(" + std::to_string(i) + ", " + std::to_string(i) + ".25)";
  }
  fill +=
      "; INSERT INTO probe VALUES (3, 0.5), (77, 1.5), (199, 2.5), (7, 3.5)";
  const std::string kJoin =
      "SELECT probe.k, probe.w, build.v FROM probe, build "
      "WHERE probe.k = build.k";
  for (Database* db : {plain->get(), indexed->get()}) {
    ASSERT_TRUE(Exec(*db, ddl).ok());
    ASSERT_TRUE(Exec(*db, fill).ok());
  }
  ASSERT_TRUE(Exec(**indexed, "CREATE INDEX bk ON build (k)").ok());
  // Join strategies order their output differently; compare as sets
  // keyed by the (distinct) probe key.
  auto by_key = [](Database& db, const std::string& sql) {
    RowSet rows = Rows(db, sql);
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return a[0].int_value() < b[0].int_value();
    });
    return rows;
  };
  Result<std::string> explain = (*indexed)->Explain(kJoin);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("(indexed)"), std::string::npos) << *explain;
  ExpectSameRows(by_key(**indexed, kJoin), by_key(**plain, kJoin));

  ASSERT_TRUE(Exec(**indexed, "DROP INDEX bk").ok());
  explain = (*indexed)->Explain(kJoin);
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->find("(indexed)"), std::string::npos) << *explain;
  ExpectSameRows(by_key(**indexed, kJoin), by_key(**plain, kJoin));
}

// ---- Larger than the buffer pool -----------------------------------

TEST(BufferPoolIntegrationTest, LargerThanPoolWorkloadIsBitIdentical) {
  TempDir dir;
  // ~40 KB pool against a few hundred KB of vectors: scans must cycle
  // segments through the pool. Correctness may never depend on fit.
  Database::Config tiny = SmallConfig();
  tiny.storage.buffer_pool_bytes = 40u << 10;
  tiny.storage.segment_bytes = 4u << 10;

  auto oracle = Database::InMemory(SmallConfig());
  ASSERT_TRUE(oracle.ok());
  auto db = Database::Open(dir.path(), tiny);
  ASSERT_TRUE(db.ok()) << db.status();

  const std::string ddl = "CREATE TABLE big (i INTEGER, v VECTOR[64])";
  std::string fill = "INSERT INTO big VALUES ";
  for (int i = 0; i < 600; ++i) {
    if (i > 0) fill += ", ";
    fill += "(" + std::to_string(i) + ", ones_vector(64) * " +
            std::to_string(i) + ".0)";
  }
  const std::string kAgg =
      "SELECT SUM(inner_product(v, v)), COUNT(*) FROM big WHERE i / 3 * 3 = i";
  const std::string kScan = "SELECT i, v FROM big WHERE i >= 450";
  for (Database* d : {oracle->get(), db->get()}) {
    ASSERT_TRUE(Exec(*d, ddl).ok());
    ASSERT_TRUE(Exec(*d, fill).ok());
  }
  // Checkpoint seals segments into the page file so subsequent scans
  // actually go through the pool.
  ASSERT_TRUE((*db)->Checkpoint().ok());

  ExpectSameRows(Rows(**db, kAgg), Rows(**oracle, kAgg));
  ExpectSameRows(Rows(**db, kScan), Rows(**oracle, kScan));
  ExpectSameRows(Rows(**db, kAgg), Rows(**oracle, kAgg));

  // The pool really was too small: evictions happened and residency
  // stayed in the vicinity of the budget.
  const RowSet st = Rows(
      **db,
      "SELECT evictions, cached_bytes, budget_bytes FROM radb_bufferpool");
  ASSERT_EQ(st.size(), 1u);
  EXPECT_GT(st[0][0].int_value(), 0) << "expected evictions";

  // And a reopen with the same tiny pool still matches.
  ASSERT_TRUE((*db)->Close().ok());
  auto again = Database::Open(dir.path(), tiny);
  ASSERT_TRUE(again.ok()) << again.status();
  ExpectSameRows(Rows(**again, kAgg), Rows(**oracle, kAgg));
  ExpectSameRows(Rows(**again, kScan), Rows(**oracle, kScan));
}

// ---- Crash recovery (fork + SIGKILL) -------------------------------

/// Forks a child that opens `dir` and runs `writer`, committing one
/// durable statement at a time and recording each commit in a
/// progress file (write + fsync BEFORE the next statement starts).
/// The parent waits until the progress file shows >= `kill_after`
/// commits, SIGKILLs the child mid-workload, and returns the number
/// of commits known durable. The child never returns.
size_t RunChildAndKill(const std::string& dir, size_t kill_after,
                       const std::function<void(Database&, int)>& writer,
                       size_t total_statements) {
  const std::string progress_path = dir + "/progress";
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: plain POSIX + _exit only; gtest state must stay untouched.
    auto db = Database::Open(dir, SmallConfig());
    if (!db.ok()) _exit(3);
    const int fd =
        ::open(progress_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) _exit(4);
    for (size_t i = 0; i < total_statements; ++i) {
      writer(**db, static_cast<int>(i));
      const std::string line = std::to_string(i + 1) + "\n";
      if (::pwrite(fd, line.data(), line.size(), 0) < 0) _exit(5);
      if (::fsync(fd) != 0) _exit(5);
    }
    _exit(0);  // finished before the parent killed us — still a valid run
  }
  EXPECT_GT(pid, 0);
  // Poll progress until the kill threshold.
  size_t committed = 0;
  for (;;) {
    std::ifstream in(progress_path);
    size_t n = 0;
    if (in >> n) committed = n;
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      // Child finished everything first; that still exercises reopen.
      return committed;
    }
    if (committed >= kill_after) break;
    ::usleep(1000);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  // Re-read: more statements may have committed between poll and kill.
  std::ifstream in(progress_path);
  size_t n = 0;
  if (in >> n) committed = n;
  return committed;
}

TEST(CrashRecoveryTest, KilledMidInsertRecoversCommittedPrefix) {
  TempDir dir;
  constexpr size_t kTotal = 400;
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(Exec(**db, "CREATE TABLE t (i INTEGER, d DOUBLE)").ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  const size_t committed = RunChildAndKill(
      dir.path(), /*kill_after=*/60,
      [](Database& db, int i) {
        const std::string sql = "INSERT INTO t VALUES (" + std::to_string(i) +
                                ", " + std::to_string(i) + ".25)";
        if (!db.Execute(sql).ok()) _exit(6);
      },
      kTotal);
  ASSERT_GE(committed, 60u);

  // Reopen after the crash: every durably committed INSERT must be
  // there, possibly followed by a few more whole statements that
  // committed after the last progress write — never a torn one.
  auto db = Database::Open(dir.path(), SmallConfig());
  ASSERT_TRUE(db.ok()) << db.status();
  const RowSet rows = Rows(**db, "SELECT i, d FROM t");
  ASSERT_GE(rows.size(), committed);
  ASSERT_LE(rows.size(), kTotal);

  // Bit-identical to a never-crashed oracle that ran the same prefix.
  auto oracle = Database::InMemory(SmallConfig());
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(Exec(**oracle, "CREATE TABLE t (i INTEGER, d DOUBLE)").ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(Exec(**oracle, "INSERT INTO t VALUES (" + std::to_string(i) +
                                   ", " + std::to_string(i) + ".25)")
                    .ok());
  }
  ExpectSameRows(rows, Rows(**oracle, "SELECT i, d FROM t"));

  // The recovered database is fully writable again.
  ASSERT_TRUE(Exec(**db, "INSERT INTO t VALUES (-1, -1.0)").ok());
}

TEST(CrashRecoveryTest, KilledMidCreateRecoversWholeTablesOnly) {
  TempDir dir;
  constexpr size_t kTotal = 60;
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Close().ok());
  }
  const size_t committed = RunChildAndKill(
      dir.path(), /*kill_after=*/12,
      [](Database& db, int i) {
        const std::string n = std::to_string(i);
        if (!db.Execute("CREATE TABLE t" + n + " (i INTEGER)").ok()) _exit(6);
        if (!db.Execute("INSERT INTO t" + n + " VALUES (" + n + ")").ok()) {
          _exit(6);
        }
      },
      kTotal);
  ASSERT_GE(committed, 12u);

  auto db = Database::Open(dir.path(), SmallConfig());
  ASSERT_TRUE(db.ok()) << db.status();
  // Every table whose (create, insert) pair committed is whole; later
  // tables either exist (maybe still empty — the crash can fall
  // between CREATE and INSERT) or are absent. No partial state.
  for (size_t i = 0; i < committed; ++i) {
    const RowSet rows = Rows(**db, "SELECT i FROM t" + std::to_string(i));
    ASSERT_EQ(rows.size(), 1u) << "t" << i;
    EXPECT_EQ(rows[0][0].int_value(), static_cast<int64_t>(i));
  }
  size_t present = 0;
  for (size_t i = 0; i < kTotal; ++i) {
    Result<ResultSet> rs =
        Exec(**db, "SELECT COUNT(*) FROM t" + std::to_string(i));
    if (!rs.ok()) break;  // tables appear in order; first gap ends it
    ++present;
  }
  EXPECT_GE(present, committed);
}

TEST(CrashRecoveryTest, TornWalTailIsIgnored) {
  TempDir dir;
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(Exec(**db, "CREATE TABLE t (i INTEGER)").ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          Exec(**db, "INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
    }
    // Simulate a crash: no Close/Checkpoint, just drop the process
    // state on the floor... except destructors run. Sever instead by
    // truncating the WAL afterwards to mimic a torn final record.
    ASSERT_TRUE((*db)->Close().ok());
  }
  // A clean close checkpoints; re-add WAL-only state then tear it.
  {
    auto db = Database::Open(dir.path(), SmallConfig());
    ASSERT_TRUE(db.ok()) << db.status();
    for (int i = 10; i < 20; ++i) {
      ASSERT_TRUE(
          Exec(**db, "INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
    }
    // Tear the last WAL record by chopping 3 bytes off the file while
    // the store still holds it. Close() would checkpoint and rotate;
    // instead leak the Database object's directory state by killing a
    // forked child? Simpler: truncate after Close is wrong, so
    // truncate the WAL of a *copy* of the directory.
    std::error_code ec;
    fs::create_directory(dir.path() + "/copy", ec);
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      if (entry.path().filename() == "copy") continue;
      if (entry.path().filename() == "radb.lock") continue;
      fs::copy_file(entry.path(),
                    dir.path() + "/copy/" + entry.path().filename().string(),
                    fs::copy_options::overwrite_existing, ec);
      ASSERT_FALSE(ec) << ec.message();
    }
    ASSERT_TRUE((*db)->Close().ok());
  }
  const std::string wal = dir.path() + "/copy/radb.wal";
  ASSERT_TRUE(fs::exists(wal));
  const uintmax_t size = fs::file_size(wal);
  ASSERT_GT(size, 3u);
  fs::resize_file(wal, size - 3);

  auto db = Database::Open(dir.path() + "/copy", SmallConfig());
  ASSERT_TRUE(db.ok()) << db.status();
  const RowSet rows = Rows(**db, "SELECT i FROM t");
  // The checkpointed 10 rows are all present; of the WAL-only rows a
  // statement prefix survives (the torn final record is dropped
  // cleanly). Scan order is partition-major, so compare as a set:
  // the recovered values must be exactly 0..n-1 for some 10 <= n < 20.
  ASSERT_GE(rows.size(), 10u);
  ASSERT_LT(rows.size(), 20u);
  std::vector<int64_t> values;
  for (const Row& r : rows) values.push_back(r[0].int_value());
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int64_t>(i));
  }
}

}  // namespace
}  // namespace radb
