#include <gtest/gtest.h>

#include "types/signature.h"

namespace radb {
namespace {

using TT = TypeTemplate;
using DP = DimParam;

// matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]  (§4.2)
FunctionSignature MatMulSig() {
  return FunctionSignature(
      "matrix_multiply",
      {TT::Mat(DP::Var('a'), DP::Var('b')),
       TT::Mat(DP::Var('b'), DP::Var('c'))},
      TT::Mat(DP::Var('a'), DP::Var('c')));
}

TEST(SignatureTest, PaperSection42Example) {
  // U(u_matrix MATRIX[1000][100]), V(v_matrix MATRIX[100][10000]):
  // the optimizer infers a 1000 x 10000 (~80 MB) output.
  auto result = MatMulSig().Bind(
      {DataType::MakeMatrix(1000, 100), DataType::MakeMatrix(100, 10000)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "MATRIX[1000][10000]");
  EXPECT_DOUBLE_EQ(result->EstimatedByteSize(), 8.0 * 1000 * 10000);
}

TEST(SignatureTest, ConflictingBindingIsCompileError) {
  // b bound to 100 and then to 99 -> compile-time error (§4.2).
  auto result = MatMulSig().Bind(
      {DataType::MakeMatrix(1000, 100), DataType::MakeMatrix(99, 10000)});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(SignatureTest, UnknownDimsStayUnknown) {
  auto result = MatMulSig().Bind(
      {DataType::MakeMatrix(1000, std::nullopt), DataType::MakeMatrix()});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "MATRIX[1000][]");
}

TEST(SignatureTest, DiagConstrainsSquare) {
  // diag(MATRIX[a][a]) -> VECTOR[a]
  FunctionSignature diag("diag", {TT::Mat(DP::Var('a'), DP::Var('a'))},
                         TT::Vec(DP::Var('a')));
  auto ok = diag.Bind({DataType::MakeMatrix(7, 7)});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->ToString(), "VECTOR[7]");
  EXPECT_FALSE(diag.Bind({DataType::MakeMatrix(7, 8)}).ok());
  // One unknown dim binds through the other.
  auto half = diag.Bind({DataType::MakeMatrix(std::nullopt, 9)});
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(half->ToString(), "VECTOR[9]");
}

TEST(SignatureTest, ArityAndKindChecks) {
  EXPECT_FALSE(MatMulSig().Bind({DataType::MakeMatrix(2, 2)}).ok());
  EXPECT_FALSE(MatMulSig()
                   .Bind({DataType::MakeMatrix(2, 2), DataType::Double()})
                   .ok());
}

TEST(SignatureTest, IntegerCoercesToDouble) {
  FunctionSignature f("f", {TT::Scalar(TypeKind::kDouble)},
                      TT::Scalar(TypeKind::kDouble));
  EXPECT_TRUE(f.Bind({DataType::Integer()}).ok());
  EXPECT_TRUE(f.Bind({DataType::LabeledScalar()}).ok());
  EXPECT_FALSE(f.Bind({DataType::String()}).ok());
}

TEST(SignatureTest, LiteralDims) {
  // row_matrix(VECTOR[a]) -> MATRIX[1][a]
  FunctionSignature rm("row_matrix", {TT::Vec(DP::Var('a'))},
                       TT::Mat(DP::Lit(1), DP::Var('a')));
  auto r = rm.Bind({DataType::MakeVector(12)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "MATRIX[1][12]");
}

TEST(SignatureTest, ToStringRendering) {
  EXPECT_EQ(MatMulSig().ToString(),
            "matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]");
}

TEST(SignatureTest, NullArgumentsMatchAnything) {
  auto result = MatMulSig().Bind({DataType::Null(), DataType::Null()});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "MATRIX[][]");
}

// Parameterized sweep: inner_product(VECTOR[a], VECTOR[a]) must accept
// equal sizes and reject unequal known sizes.
class InnerProductSigTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(InnerProductSigTest, SizeUnification) {
  FunctionSignature ip("inner_product",
                       {TT::Vec(DP::Var('a')), TT::Vec(DP::Var('a'))},
                       TT::Scalar(TypeKind::kDouble));
  const auto [a, b] = GetParam();
  auto result = ip.Bind({DataType::MakeVector(a), DataType::MakeVector(b)});
  EXPECT_EQ(result.ok(), a == b);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, InnerProductSigTest,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(10, 10),
                      std::make_pair(10, 11), std::make_pair(1, 1000),
                      std::make_pair(1000, 1000), std::make_pair(2, 1)));

}  // namespace
}  // namespace radb
