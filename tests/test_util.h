#ifndef RADB_TESTS_TEST_UTIL_H_
#define RADB_TESTS_TEST_UTIL_H_

#include <string>
#include <utility>

#include "api/database.h"

namespace radb {

/// Runs a script through Database::Execute and keeps only the last
/// result set (empty for DDL/DML-only scripts) — the shape most
/// single-statement assertions want. Tests that care about multiple
/// result sets or per-statement stats call Execute directly.
inline Result<ResultSet> Exec(Database& db, const std::string& sql,
                              const QueryOptions& options = QueryOptions{}) {
  Result<ScriptResult> script = db.Execute(sql, options);
  if (!script.ok()) return script.status();
  if (script->result_sets.empty()) return ResultSet{};
  return std::move(script->result_sets.back());
}

}  // namespace radb

#endif  // RADB_TESTS_TEST_UTIL_H_
