#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/schema.h"
#include "types/value.h"
#include "types/value_ops.h"

namespace radb {
namespace {

TEST(DataTypeTest, ToStringForms) {
  EXPECT_EQ(DataType::Integer().ToString(), "INTEGER");
  EXPECT_EQ(DataType::MakeVector(10).ToString(), "VECTOR[10]");
  EXPECT_EQ(DataType::MakeVector().ToString(), "VECTOR[]");
  EXPECT_EQ(DataType::MakeMatrix(3, 4).ToString(), "MATRIX[3][4]");
  EXPECT_EQ(DataType::MakeMatrix(3, std::nullopt).ToString(),
            "MATRIX[3][]");
}

TEST(DataTypeTest, Compatibility) {
  EXPECT_TRUE(DataType::MakeVector(10).CompatibleWith(
      DataType::MakeVector(10)));
  EXPECT_TRUE(
      DataType::MakeVector().CompatibleWith(DataType::MakeVector(10)));
  EXPECT_FALSE(
      DataType::MakeVector(9).CompatibleWith(DataType::MakeVector(10)));
  EXPECT_FALSE(
      DataType::MakeVector(10).CompatibleWith(DataType::MakeMatrix(10, 1)));
  EXPECT_TRUE(DataType::MakeMatrix(3, std::nullopt)
                  .CompatibleWith(DataType::MakeMatrix(3, 7)));
}

TEST(DataTypeTest, ByteSizeEstimates) {
  // The §4.1 numbers: MATRIX[100000][100] is ~80 MB.
  EXPECT_DOUBLE_EQ(DataType::MakeMatrix(100000, 100).EstimatedByteSize(),
                   8.0 * 100000 * 100);
  EXPECT_DOUBLE_EQ(DataType::MakeMatrix(10, 100).EstimatedByteSize(),
                   8.0 * 10 * 100);
  // Unknown dims use the supplied default.
  EXPECT_DOUBLE_EQ(DataType::MakeVector().EstimatedByteSize(50), 400.0);
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(3).kind(), TypeKind::kInteger);
  EXPECT_EQ(Value::Double(2.5).kind(), TypeKind::kDouble);
  EXPECT_EQ(Value::String("x").kind(), TypeKind::kString);
  EXPECT_EQ(Value::Labeled(1.5, 7).labeled().label, 7);
  Value v = Value::FromVector(la::Vector(3, 1.0), 5);
  EXPECT_EQ(v.kind(), TypeKind::kVector);
  EXPECT_EQ(v.vector_value().label, 5);
  EXPECT_EQ(v.RuntimeType().ToString(), "VECTOR[3]");
  Value m = Value::FromMatrix(la::Matrix(2, 4));
  EXPECT_EQ(m.RuntimeType().ToString(), "MATRIX[2][4]");
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble().value(), 1.0);
  EXPECT_DOUBLE_EQ(Value::Labeled(2.5, 1).AsDouble().value(), 2.5);
  EXPECT_FALSE(Value::String("a").AsDouble().ok());
  EXPECT_EQ(Value::Double(4.0).AsInt().value(), 4);
  EXPECT_FALSE(Value::Double(4.5).AsInt().ok());
}

TEST(ValueTest, EqualityAndHash) {
  Value a = Value::FromVector(la::Vector(std::vector<double>{1, 2}));
  Value b = Value::FromVector(la::Vector(std::vector<double>{1, 2}));
  Value c = Value::FromVector(la::Vector(std::vector<double>{1, 3}));
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_EQ(a.Hash(), b.Hash());
  // 1 and 1.0 hash alike so numeric joins group them together.
  EXPECT_EQ(Value::Int(1).Hash(), Value::Double(1.0).Hash());
}

TEST(ValueTest, Compare) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(2.0)).value(), -1);
  EXPECT_EQ(Value::String("b").Compare(Value::String("a")).value(), 1);
  EXPECT_FALSE(Value::Int(1).Compare(Value::String("a")).ok());
  EXPECT_FALSE(Value::FromMatrix(la::Matrix(1, 1))
                   .Compare(Value::FromMatrix(la::Matrix(1, 1)))
                   .ok());
}

TEST(ValueOpsTest, ScalarArithmetic) {
  EXPECT_EQ(EvalArith(ArithOp::kAdd, Value::Int(2), Value::Int(3))
                .value()
                .int_value(),
            5);
  // SQL integer division truncates.
  EXPECT_EQ(EvalArith(ArithOp::kDiv, Value::Int(7), Value::Int(2))
                .value()
                .int_value(),
            3);
  EXPECT_FALSE(
      EvalArith(ArithOp::kDiv, Value::Int(1), Value::Int(0)).ok());
  EXPECT_DOUBLE_EQ(
      EvalArith(ArithOp::kDiv, Value::Double(7), Value::Int(2))
          .value()
          .double_value(),
      3.5);
}

TEST(ValueOpsTest, VectorScalarBroadcast) {
  Value v = Value::FromVector(la::Vector(std::vector<double>{1, 2, 3}));
  Value out = EvalArith(ArithOp::kMul, v, Value::Double(2)).value();
  EXPECT_EQ(out.vector().values(), (std::vector<double>{2, 4, 6}));
  Value out2 = EvalArith(ArithOp::kSub, Value::Double(1), v).value();
  EXPECT_EQ(out2.vector().values(), (std::vector<double>{0, -1, -2}));
}

TEST(ValueOpsTest, MatrixHadamard) {
  Value a = Value::FromMatrix(la::Matrix(2, 2, {1, 2, 3, 4}));
  Value out = EvalArith(ArithOp::kMul, a, a).value();
  EXPECT_DOUBLE_EQ(out.matrix().At(1, 1), 16);
  // Shape mismatch is a runtime dimension error.
  Value b = Value::FromMatrix(la::Matrix(2, 3));
  EXPECT_EQ(EvalArith(ArithOp::kAdd, a, b).status().code(),
            StatusCode::kDimensionMismatch);
}

TEST(ValueOpsTest, NullPropagation) {
  EXPECT_TRUE(
      EvalArith(ArithOp::kAdd, Value::Null(), Value::Int(1))->is_null());
  EXPECT_TRUE(EvalCompare(CompareOp::kEq, Value::Null(), Value::Int(1))
                  ->is_null());
}

TEST(ValueOpsTest, CompareLaValues) {
  Value a = Value::FromVector(la::Vector(std::vector<double>{1, 2}));
  Value b = Value::FromVector(la::Vector(std::vector<double>{1, 2}));
  EXPECT_TRUE(
      EvalCompare(CompareOp::kEq, a, b).value().bool_value());
  EXPECT_FALSE(EvalCompare(CompareOp::kLt, a, b).ok());
}

TEST(ValueOpsTest, TypeInference) {
  EXPECT_EQ(InferArithType(ArithOp::kAdd, DataType::Integer(),
                           DataType::Integer())
                ->kind(),
            TypeKind::kInteger);
  EXPECT_EQ(InferArithType(ArithOp::kDiv, DataType::Integer(),
                           DataType::Integer())
                ->kind(),
            TypeKind::kInteger);
  EXPECT_EQ(InferArithType(ArithOp::kAdd, DataType::Integer(),
                           DataType::Double())
                ->kind(),
            TypeKind::kDouble);
  auto vec = InferArithType(ArithOp::kMul, DataType::MakeVector(5),
                            DataType::Double());
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(vec->ToString(), "VECTOR[5]");
  // Known-size mismatch is a compile-time error (paper §3.1).
  EXPECT_FALSE(InferArithType(ArithOp::kAdd, DataType::MakeVector(5),
                              DataType::MakeVector(6))
                   .ok());
  // Unknown sizes unify.
  auto unified = InferArithType(ArithOp::kAdd, DataType::MakeVector(),
                                DataType::MakeVector(6));
  ASSERT_TRUE(unified.ok());
  EXPECT_EQ(unified->ToString(), "VECTOR[6]");
}

TEST(SchemaTest, ResolveAndAmbiguity) {
  Schema s({Column{"a", "x", DataType::Integer()},
            Column{"b", "x", DataType::Double()},
            Column{"a", "y", DataType::Double()}});
  EXPECT_EQ(s.Resolve("a", "x").value(), 0u);
  EXPECT_EQ(s.Resolve("b", "x").value(), 1u);
  EXPECT_EQ(s.Resolve("", "y").value(), 2u);
  EXPECT_FALSE(s.Resolve("", "x").ok());  // ambiguous
  EXPECT_FALSE(s.Resolve("", "z").ok());  // missing
  // Case-insensitive resolution.
  EXPECT_EQ(s.Resolve("A", "X").value(), 0u);
}

}  // namespace
}  // namespace radb
