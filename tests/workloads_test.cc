#include <gtest/gtest.h>

#include "workloads/computations.h"
#include "workloads/datagen.h"

namespace radb::workloads {
namespace {

constexpr size_t kWorkers = 4;
constexpr double kTol = 1e-6;

class WorkloadsTest : public ::testing::Test {
 protected:
  // 48 points, 6 dims, block of 12 (divides n for the distance path).
  WorkloadsTest() : data_(GenerateDataset(/*seed=*/77, 48, 6)) {}
  Dataset data_;
};

TEST_F(WorkloadsTest, GramAllPlatformsAgree) {
  const la::Matrix expected = ReferenceGram(data_);

  SqlWorkload tuple_wl(kWorkers);
  ASSERT_TRUE(tuple_wl.LoadTuple(data_).ok());
  auto tuple = tuple_wl.GramTuple();
  ASSERT_TRUE(tuple.ok()) << tuple.status();
  EXPECT_LT(tuple->gram.MaxAbsDiff(expected), kTol);

  SqlWorkload vec_wl(kWorkers);
  ASSERT_TRUE(vec_wl.LoadVector(data_).ok());
  auto vec = vec_wl.GramVector();
  ASSERT_TRUE(vec.ok()) << vec.status();
  EXPECT_LT(vec->gram.MaxAbsDiff(expected), kTol);

  SqlWorkload blk_wl(kWorkers);
  ASSERT_TRUE(blk_wl.LoadVector(data_).ok());
  auto blk = blk_wl.GramBlock(12);
  ASSERT_TRUE(blk.ok()) << blk.status();
  EXPECT_LT(blk->gram.MaxAbsDiff(expected), kTol);

  systemml::DmlConfig dml;
  dml.num_workers = kWorkers;
  dml.block_size = 12;
  dml.local_threshold_bytes = 64;  // force distributed path
  auto sysml = GramSystemML(data_, dml);
  ASSERT_TRUE(sysml.ok()) << sysml.status();
  EXPECT_LT(sysml->gram.MaxAbsDiff(expected), kTol);

  auto scidb = GramSciDB(data_, kWorkers, 12);
  ASSERT_TRUE(scidb.ok()) << scidb.status();
  EXPECT_LT(scidb->gram.MaxAbsDiff(expected), kTol);

  auto spark = GramSpark(data_, kWorkers);
  ASSERT_TRUE(spark.ok()) << spark.status();
  EXPECT_LT(spark->gram.MaxAbsDiff(expected), kTol);
}

TEST_F(WorkloadsTest, LinRegAllPlatformsAgree) {
  auto expected = ReferenceLinReg(data_);
  ASSERT_TRUE(expected.ok());

  SqlWorkload tuple_wl(kWorkers);
  ASSERT_TRUE(tuple_wl.LoadTuple(data_).ok());
  auto tuple = tuple_wl.LinRegTuple();
  ASSERT_TRUE(tuple.ok()) << tuple.status();
  EXPECT_LT(tuple->beta.MaxAbsDiff(*expected), kTol);

  SqlWorkload vec_wl(kWorkers);
  ASSERT_TRUE(vec_wl.LoadVector(data_).ok());
  auto vec = vec_wl.LinRegVector();
  ASSERT_TRUE(vec.ok()) << vec.status();
  EXPECT_LT(vec->beta.MaxAbsDiff(*expected), kTol);

  SqlWorkload blk_wl(kWorkers);
  ASSERT_TRUE(blk_wl.LoadVector(data_).ok());
  auto blk = blk_wl.LinRegBlock(12);
  ASSERT_TRUE(blk.ok()) << blk.status();
  EXPECT_LT(blk->beta.MaxAbsDiff(*expected), kTol);

  systemml::DmlConfig dml;
  dml.num_workers = kWorkers;
  dml.block_size = 12;
  dml.local_threshold_bytes = 64;
  auto sysml = LinRegSystemML(data_, dml);
  ASSERT_TRUE(sysml.ok()) << sysml.status();
  EXPECT_LT(sysml->beta.MaxAbsDiff(*expected), kTol);

  auto scidb = LinRegSciDB(data_, kWorkers, 12);
  ASSERT_TRUE(scidb.ok()) << scidb.status();
  EXPECT_LT(scidb->beta.MaxAbsDiff(*expected), kTol);

  auto spark = LinRegSpark(data_, kWorkers);
  ASSERT_TRUE(spark.ok()) << spark.status();
  EXPECT_LT(spark->beta.MaxAbsDiff(*expected), kTol);
}

TEST_F(WorkloadsTest, DistanceAllPlatformsAgree) {
  auto expected = ReferenceDistance(data_);
  ASSERT_TRUE(expected.ok());

  SqlWorkload tuple_wl(kWorkers);
  ASSERT_TRUE(tuple_wl.LoadTuple(data_).ok());
  auto tuple = tuple_wl.DistanceTuple(/*tuple_budget=*/1'000'000);
  ASSERT_TRUE(tuple.ok()) << tuple.status();
  ASSERT_FALSE(tuple->failed);
  EXPECT_EQ(tuple->distance.point_id, expected->point_id);
  EXPECT_NEAR(tuple->distance.value, expected->value, kTol);

  SqlWorkload vec_wl(kWorkers);
  ASSERT_TRUE(vec_wl.LoadVector(data_).ok());
  auto vec = vec_wl.DistanceVector();
  ASSERT_TRUE(vec.ok()) << vec.status();
  EXPECT_EQ(vec->distance.point_id, expected->point_id);
  EXPECT_NEAR(vec->distance.value, expected->value, kTol);

  SqlWorkload blk_wl(kWorkers);
  ASSERT_TRUE(blk_wl.LoadVector(data_).ok());
  auto blk = blk_wl.DistanceBlock(12);
  ASSERT_TRUE(blk.ok()) << blk.status();
  EXPECT_EQ(blk->distance.point_id, expected->point_id);
  EXPECT_NEAR(blk->distance.value, expected->value, kTol);

  systemml::DmlConfig dml;
  dml.num_workers = kWorkers;
  dml.block_size = 12;
  dml.local_threshold_bytes = 64;
  auto sysml = DistanceSystemML(data_, dml);
  ASSERT_TRUE(sysml.ok()) << sysml.status();
  EXPECT_EQ(sysml->distance.point_id, expected->point_id);
  EXPECT_NEAR(sysml->distance.value, expected->value, kTol);

  auto scidb = DistanceSciDB(data_, kWorkers, 12);
  ASSERT_TRUE(scidb.ok()) << scidb.status();
  EXPECT_EQ(scidb->distance.point_id, expected->point_id);
  EXPECT_NEAR(scidb->distance.value, expected->value, kTol);

  auto spark = DistanceSpark(data_, kWorkers, 12);
  ASSERT_TRUE(spark.ok()) << spark.status();
  EXPECT_EQ(spark->distance.point_id, expected->point_id);
  EXPECT_NEAR(spark->distance.value, expected->value, kTol);
}

TEST_F(WorkloadsTest, TupleDistanceFailsOverBudget) {
  SqlWorkload wl(kWorkers);
  ASSERT_TRUE(wl.LoadTuple(data_).ok());
  auto out = wl.DistanceTuple(/*tuple_budget=*/100);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->failed);
  EXPECT_FALSE(out->fail_reason.empty());
}

TEST_F(WorkloadsTest, DistanceBlockRequiresDivisibility) {
  SqlWorkload wl(kWorkers);
  ASSERT_TRUE(wl.LoadVector(data_).ok());
  EXPECT_FALSE(wl.DistanceBlock(13).ok());
}

TEST(WorkloadsDatagenTest, Deterministic) {
  Dataset a = GenerateDataset(5, 10, 3);
  Dataset b = GenerateDataset(5, 10, 3);
  EXPECT_EQ(a.points[7].values(), b.points[7].values());
  EXPECT_EQ(a.metric, b.metric);
  Dataset c = GenerateDataset(6, 10, 3);
  EXPECT_NE(a.points[7].values(), c.points[7].values());
}

TEST(WorkloadsDatagenTest, RaggedLastBlockStillCorrect) {
  // n = 50 with block 12 leaves a ragged last block; Gram and linreg
  // must still be exact.
  Dataset data = GenerateDataset(3, 50, 4);
  SqlWorkload wl(kWorkers);
  ASSERT_TRUE(wl.LoadVector(data).ok());
  auto blk = wl.GramBlock(12);
  ASSERT_TRUE(blk.ok()) << blk.status();
  EXPECT_LT(blk->gram.MaxAbsDiff(ReferenceGram(data)), kTol);
}

}  // namespace
}  // namespace radb::workloads
