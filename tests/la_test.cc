#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/matrix.h"
#include "la/random.h"
#include "la/vector.h"

namespace radb::la {
namespace {

constexpr double kTol = 1e-9;

TEST(VectorTest, BasicOps) {
  Vector a(std::vector<double>{1, 2, 3});
  Vector b(std::vector<double>{4, 5, 6});
  auto sum = Add(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->values(), (std::vector<double>{5, 7, 9}));
  auto diff = Sub(b, a);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->values(), (std::vector<double>{3, 3, 3}));
  auto had = Mul(a, b);
  ASSERT_TRUE(had.ok());
  EXPECT_EQ(had->values(), (std::vector<double>{4, 10, 18}));
  auto dot = InnerProduct(a, b);
  ASSERT_TRUE(dot.ok());
  EXPECT_DOUBLE_EQ(*dot, 32.0);
}

TEST(VectorTest, SizeMismatchIsError) {
  Vector a(2), b(3);
  EXPECT_FALSE(Add(a, b).ok());
  EXPECT_FALSE(Sub(a, b).ok());
  EXPECT_FALSE(Mul(a, b).ok());
  EXPECT_FALSE(Div(a, b).ok());
  EXPECT_FALSE(InnerProduct(a, b).ok());
  EXPECT_EQ(Add(a, b).status().code(), StatusCode::kDimensionMismatch);
}

TEST(VectorTest, ScalarBroadcast) {
  Vector a(std::vector<double>{1, 2});
  EXPECT_EQ(AddScalar(a, 1).values(), (std::vector<double>{2, 3}));
  EXPECT_EQ(MulScalar(a, 3).values(), (std::vector<double>{3, 6}));
  EXPECT_EQ(RsubScalar(10, a).values(), (std::vector<double>{9, 8}));
  EXPECT_EQ(DivScalar(a, 2).values(), (std::vector<double>{0.5, 1}));
  EXPECT_EQ(RdivScalar(2, a).values(), (std::vector<double>{2, 1}));
}

TEST(VectorTest, Reductions) {
  Vector v(std::vector<double>{3, -1, 4, -1, 5});
  EXPECT_DOUBLE_EQ(v.Sum(), 10);
  EXPECT_DOUBLE_EQ(v.Min(), -1);
  EXPECT_DOUBLE_EQ(v.Max(), 5);
  EXPECT_EQ(v.ArgMin(), 1u);  // first of the ties
  EXPECT_EQ(v.ArgMax(), 4u);
  EXPECT_NEAR(v.Norm2(), std::sqrt(9 + 1 + 16 + 1 + 25), kTol);
}

TEST(MatrixTest, MultiplyMatchesManual) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  auto c = Multiply(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->At(0, 0), 58);
  EXPECT_DOUBLE_EQ(c->At(0, 1), 64);
  EXPECT_DOUBLE_EQ(c->At(1, 0), 139);
  EXPECT_DOUBLE_EQ(c->At(1, 1), 154);
}

TEST(MatrixTest, MultiplyShapeMismatch) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_EQ(Multiply(a, b).status().code(), StatusCode::kDimensionMismatch);
}

TEST(MatrixTest, IdentityIsMultiplicativeUnit) {
  Rng rng(7);
  Matrix a = RandomMatrix(rng, 13, 13);
  auto left = Multiply(Matrix::Identity(13), a);
  auto right = Multiply(a, Matrix::Identity(13));
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  EXPECT_LT(left->MaxAbsDiff(a), kTol);
  EXPECT_LT(right->MaxAbsDiff(a), kTol);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(11);
  Matrix a = RandomMatrix(rng, 7, 19);
  EXPECT_LT(Transpose(Transpose(a)).MaxAbsDiff(a), kTol);
}

TEST(MatrixTest, TransposeSelfMultiplyMatchesExplicit) {
  Rng rng(13);
  Matrix a = RandomMatrix(rng, 23, 9);
  auto explicit_gram = Multiply(Transpose(a), a);
  ASSERT_TRUE(explicit_gram.ok());
  EXPECT_LT(TransposeSelfMultiply(a).MaxAbsDiff(*explicit_gram), 1e-9);
}

TEST(MatrixTest, MatrixVectorMultiply) {
  Matrix a(2, 3, {1, 0, 2, 0, 3, 0});
  Vector v(std::vector<double>{1, 2, 3});
  auto out = MatrixVectorMultiply(a, v);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->values(), (std::vector<double>{7, 6}));
  // Row-vector form.
  Vector u(std::vector<double>{1, 1});
  auto out2 = VectorMatrixMultiply(u, a);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->values(), (std::vector<double>{1, 3, 2}));
}

TEST(MatrixTest, OuterProduct) {
  Vector a(std::vector<double>{1, 2});
  Vector b(std::vector<double>{3, 4, 5});
  Matrix out = OuterProduct(a, b);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 3u);
  EXPECT_DOUBLE_EQ(out.At(1, 2), 10);
}

TEST(MatrixTest, DiagRequiresSquare) {
  EXPECT_FALSE(Diagonal(Matrix(2, 3)).ok());
  Matrix m(3, 3);
  m.At(0, 0) = 1;
  m.At(1, 1) = 2;
  m.At(2, 2) = 3;
  auto d = Diagonal(m);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->values(), (std::vector<double>{1, 2, 3}));
  Matrix back = DiagonalMatrix(*d);
  EXPECT_LT(back.MaxAbsDiff(m), kTol);
}

TEST(MatrixTest, InverseRoundTrip) {
  Rng rng(17);
  Matrix a = RandomSpdMatrix(rng, 20);
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  auto prod = Multiply(a, *inv);
  ASSERT_TRUE(prod.ok());
  EXPECT_LT(prod->MaxAbsDiff(Matrix::Identity(20)), 1e-8);
}

TEST(MatrixTest, SingularInverseFails) {
  Matrix a(2, 2, {1, 2, 2, 4});
  EXPECT_EQ(Inverse(a).status().code(), StatusCode::kNumericError);
}

TEST(MatrixTest, SolveMatchesMultiply) {
  Rng rng(19);
  Matrix a = RandomSpdMatrix(rng, 15);
  Vector x_true = RandomVector(rng, 15);
  auto b = MatrixVectorMultiply(a, x_true);
  ASSERT_TRUE(b.ok());
  auto x = Solve(a, *b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(x->MaxAbsDiff(x_true), 1e-8);
}

TEST(MatrixTest, DeterminantProperties) {
  Rng rng(23);
  Matrix a = RandomSpdMatrix(rng, 6);
  auto det = Determinant(a);
  ASSERT_TRUE(det.ok());
  EXPECT_GT(*det, 0.0);  // SPD => positive determinant
  // Singular matrix has zero determinant.
  Matrix s(2, 2, {1, 2, 2, 4});
  auto det_s = Determinant(s);
  ASSERT_TRUE(det_s.ok());
  EXPECT_DOUBLE_EQ(*det_s, 0.0);
  // Identity determinant is 1.
  auto det_i = Determinant(Matrix::Identity(5));
  ASSERT_TRUE(det_i.ok());
  EXPECT_NEAR(*det_i, 1.0, kTol);
}

TEST(MatrixTest, TraceAndNorms) {
  Matrix m(2, 2, {1, 2, 3, 4});
  auto t = Trace(m);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(*t, 5);
  EXPECT_NEAR(m.NormF(), std::sqrt(30.0), kTol);
  EXPECT_EQ(m.RowMins().values(), (std::vector<double>{1, 3}));
  EXPECT_EQ(m.RowMaxs().values(), (std::vector<double>{2, 4}));
}

// Property-style sweep: algebraic identities across shapes.
class MatrixPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatrixPropertyTest, AssociativityAndTransposeRules) {
  const auto [m, k, n] = GetParam();
  Rng rng(100 + m * 31 + k * 7 + n);
  Matrix a = RandomMatrix(rng, m, k);
  Matrix b = RandomMatrix(rng, k, n);
  Matrix c = RandomMatrix(rng, n, m);
  // (AB)C == A(BC)
  auto ab = Multiply(a, b);
  auto bc = Multiply(b, c);
  ASSERT_TRUE(ab.ok() && bc.ok());
  auto lhs = Multiply(*ab, c);
  auto rhs = Multiply(a, *bc);
  ASSERT_TRUE(lhs.ok() && rhs.ok());
  EXPECT_LT(lhs->MaxAbsDiff(*rhs), 1e-8);
  // (AB)ᵀ == Bᵀ Aᵀ
  auto t1 = Transpose(*ab);
  auto t2 = Multiply(Transpose(b), Transpose(a));
  ASSERT_TRUE(t2.ok());
  EXPECT_LT(t1.MaxAbsDiff(*t2), 1e-9);
  // Distributivity: A(B + B) == AB + AB
  auto b2 = Add(b, b);
  ASSERT_TRUE(b2.ok());
  auto lhs2 = Multiply(a, *b2);
  auto rhs2 = Add(*ab, *ab);
  ASSERT_TRUE(lhs2.ok() && rhs2.ok());
  EXPECT_LT(lhs2->MaxAbsDiff(*rhs2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 5, 5), std::make_tuple(1, 7, 2),
                      std::make_tuple(16, 1, 16), std::make_tuple(33, 17, 9),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 129, 3)));

TEST(MatrixTest, CholeskyFactorizes) {
  Rng rng(29);
  Matrix a = RandomSpdMatrix(rng, 12);
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  // L is lower triangular and L Lᵀ == A.
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = i + 1; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(l->At(i, j), 0.0);
    }
  }
  auto llt = Multiply(*l, Transpose(*l));
  ASSERT_TRUE(llt.ok());
  EXPECT_LT(llt->MaxAbsDiff(a), 1e-9);
}

TEST(MatrixTest, CholeskyRejectsIndefinite) {
  Matrix indef(2, 2, {1, 2, 2, 1});  // eigenvalues 3, -1
  EXPECT_EQ(Cholesky(indef).status().code(), StatusCode::kNumericError);
  EXPECT_FALSE(Cholesky(Matrix(2, 3)).ok());
}

TEST(MatrixTest, DeterminantIsMultiplicative) {
  Rng rng(31);
  for (int n : {2, 3, 5, 8}) {
    Matrix a = RandomSpdMatrix(rng, n);
    Matrix b = RandomSpdMatrix(rng, n);
    auto ab = Multiply(a, b);
    ASSERT_TRUE(ab.ok());
    auto da = Determinant(a);
    auto db = Determinant(b);
    auto dab = Determinant(*ab);
    ASSERT_TRUE(da.ok() && db.ok() && dab.ok());
    EXPECT_NEAR(*dab, *da * *db, std::abs(*dab) * 1e-9 + 1e-12) << n;
  }
}

TEST(MatrixTest, VectorMatrixMultiplyEqualsTransposedMvm) {
  Rng rng(37);
  Matrix a = RandomMatrix(rng, 9, 14);
  Vector v = RandomVector(rng, 9);
  auto direct = VectorMatrixMultiply(v, a);
  auto via_transpose = MatrixVectorMultiply(Transpose(a), v);
  ASSERT_TRUE(direct.ok() && via_transpose.ok());
  EXPECT_LT(direct->MaxAbsDiff(*via_transpose), 1e-10);
}

class SolvePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolvePropertyTest, InverseAndSolveAgree) {
  const int n = GetParam();
  Rng rng(300 + n);
  Matrix a = RandomSpdMatrix(rng, n);
  Vector b = RandomVector(rng, n);
  auto x1 = Solve(a, b);
  auto inv = Inverse(a);
  ASSERT_TRUE(x1.ok() && inv.ok());
  auto x2 = MatrixVectorMultiply(*inv, b);
  ASSERT_TRUE(x2.ok());
  EXPECT_LT(x1->MaxAbsDiff(*x2), 1e-7);
  // SPD path agrees with LU.
  auto x3 = SolveSpd(a, b);
  ASSERT_TRUE(x3.ok());
  EXPECT_LT(x1->MaxAbsDiff(*x3), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolvePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace radb::la
