#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <iterator>
#include <set>
#include <string>

#include "api/database.h"

#include "test_util.h"
#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace radb {
namespace {

// --- tracer -----------------------------------------------------------

TEST(TracerTest, SpansNestLikeStackFrames) {
  obs::Tracer tracer;
  const size_t root = tracer.BeginSpan("query", "pipeline");
  const size_t child = tracer.BeginSpan("parse", "pipeline");
  const size_t grandchild = tracer.BeginSpan("lex", "pipeline");
  tracer.EndSpan(grandchild);
  tracer.EndSpan(child);
  const size_t sibling = tracer.BeginSpan("execute", "pipeline");
  tracer.EndSpan(sibling);
  tracer.EndSpan(root);

  ASSERT_EQ(tracer.spans().size(), 4u);
  EXPECT_EQ(tracer.span(root).parent, obs::Span::kNoParent);
  EXPECT_EQ(tracer.span(child).parent, root);
  EXPECT_EQ(tracer.span(grandchild).parent, child);
  EXPECT_EQ(tracer.span(sibling).parent, root);
  for (const obs::Span& s : tracer.spans()) {
    EXPECT_TRUE(s.closed()) << s.name;
    EXPECT_GE(s.duration_seconds, 0.0) << s.name;
  }
  // A child is contained in its parent's interval.
  const obs::Span& p = tracer.span(root);
  const obs::Span& c = tracer.span(grandchild);
  EXPECT_GE(c.start_seconds, p.start_seconds);
  EXPECT_LE(c.start_seconds + c.duration_seconds,
            p.start_seconds + p.duration_seconds + 1e-9);
}

TEST(TracerTest, ArgsAndRenamesStick) {
  obs::Tracer tracer;
  const size_t id = tracer.BeginSpan("op", "exec");
  tracer.AddArg(id, "rows_out", "42");
  tracer.SetName(id, "HashJoin");
  tracer.EndSpan(id);
  EXPECT_EQ(tracer.span(id).name, "HashJoin");
  ASSERT_EQ(tracer.span(id).args.size(), 1u);
  EXPECT_EQ(tracer.span(id).args[0].first, "rows_out");
  EXPECT_EQ(tracer.span(id).args[0].second, "42");
}

TEST(TracerTest, AddCompleteSpanUsesGivenTiming) {
  obs::Tracer tracer;
  const size_t root = tracer.BeginSpan("execute", "pipeline");
  const size_t w =
      tracer.AddCompleteSpan("Scan w3", "worker", root, 0.5, 0.25, 4);
  tracer.EndSpan(root);
  EXPECT_EQ(tracer.span(w).parent, root);
  EXPECT_DOUBLE_EQ(tracer.span(w).start_seconds, 0.5);
  EXPECT_DOUBLE_EQ(tracer.span(w).duration_seconds, 0.25);
  EXPECT_EQ(tracer.span(w).tid, 4);
}

TEST(TracerTest, ClearDropsEverything) {
  obs::Tracer tracer;
  tracer.EndSpan(tracer.BeginSpan("a"));
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
  // The tracer is reusable after Clear.
  tracer.EndSpan(tracer.BeginSpan("b"));
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.span(0).name, "b");
}

TEST(ScopedSpanTest, NullTracerIsANoOp) {
  // The disabled fast path: no tracer, no metrics — every obs call
  // must be safe and free of side effects.
  obs::ScopedSpan span(nullptr, "anything", "cat");
  span.AddArg("k", "v");
  span.SetName("renamed");
  span.End();
  EXPECT_EQ(span.tracer(), nullptr);

  obs::ObsContext ctx;
  EXPECT_FALSE(ctx.enabled());
}

TEST(ScopedSpanTest, EndIsIdempotent) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, "phase");
    span.End();
    span.End();  // second End and the destructor must both no-op
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_TRUE(tracer.span(0).closed());
}

// --- metrics registry -------------------------------------------------

TEST(MetricsRegistryTest, CounterAccumulates) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("exec.rows_shuffled");
  c->Add(10);
  c->Increment();
  EXPECT_EQ(c->value(), 11u);
  // Same name returns the same instrument.
  EXPECT_EQ(reg.counter("exec.rows_shuffled"), c);
  reg.Add("exec.rows_shuffled", 9);
  EXPECT_EQ(c->value(), 20u);
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWins) {
  obs::MetricsRegistry reg;
  reg.Set("exec.workers", 8.0);
  reg.Set("exec.workers", 4.0);
  EXPECT_DOUBLE_EQ(reg.gauge("exec.workers")->value(), 4.0);
}

TEST(MetricsRegistryTest, HistogramSummarizesObservations) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram("la.matmul_seconds");
  h->Observe(1.0);
  h->Observe(3.0);
  h->Observe(8.0);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 12.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 8.0);
  EXPECT_DOUBLE_EQ(h->mean(), 4.0);
  // Power-of-two buckets: 1.0 -> le 1, 3.0 -> le 4, 8.0 -> le 8.
  const auto buckets = h->NonEmptyBuckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].first, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].first, 4.0);
  EXPECT_DOUBLE_EQ(buckets[2].first, 8.0);
  for (const auto& [le, n] : buckets) EXPECT_EQ(n, 1u) << "le=" << le;
}

TEST(MetricsRegistryTest, HistogramRejectsNonFiniteSamples) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram("poisoned");
  h->Observe(2.0);
  // NaN is dropped outright: one bad sample must not turn sum/min/max
  // (and every percentile) into NaN in the JSON export forever.
  h->Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 2.0);
  // ±inf is clamped to the finite extremes: counted, never in bucket 0
  // (the old behavior filed +inf alongside sub-1.0 samples).
  h->Observe(std::numeric_limits<double>::infinity());
  h->Observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h->count(), 3u);
  EXPECT_TRUE(std::isfinite(h->sum()));
  EXPECT_TRUE(std::isfinite(h->min()));
  EXPECT_TRUE(std::isfinite(h->max()));
  EXPECT_DOUBLE_EQ(h->max(), std::numeric_limits<double>::max());
  EXPECT_DOUBLE_EQ(h->min(), std::numeric_limits<double>::lowest());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_TRUE(std::isfinite(h->Percentile(q))) << "q=" << q;
  }
  // Bucket placement: -inf clamps below 1.0 and lands in bucket 0
  // (le 1) by design; 2.0 in le 2; +inf clamps to DBL_MAX and must
  // land in the TOP bucket, not bucket 0 as before the fix.
  const auto buckets = h->NonEmptyBuckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].first, 1.0);
  EXPECT_EQ(buckets[0].second, 1u);
  EXPECT_DOUBLE_EQ(buckets[1].first, 2.0);
  EXPECT_EQ(buckets[1].second, 1u);
  EXPECT_EQ(buckets[2].second, 1u);
  EXPECT_GT(buckets[2].first, 1e18);  // exp2(kBuckets - 1), the top bucket
}

TEST(MetricsRegistryTest, EmptyHistogramIsAllZeros) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram("empty");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
  EXPECT_DOUBLE_EQ(h->mean(), 0.0);
  EXPECT_TRUE(h->NonEmptyBuckets().empty());
}

TEST(MetricsRegistryTest, ToJsonParsesBack) {
  obs::MetricsRegistry reg;
  reg.Add("a.count", 7);
  reg.Set("a.gauge", 2.5);
  reg.Observe("a.hist", 3.0);
  auto parsed = obs::ParseJson(reg.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* count = counters->Find("a.count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->number, 7.0);
  const obs::JsonValue* hist = parsed->Find("histograms");
  ASSERT_NE(hist, nullptr);
  const obs::JsonValue* ahist = hist->Find("a.hist");
  ASSERT_NE(ahist, nullptr);
  ASSERT_NE(ahist->Find("mean"), nullptr);
  EXPECT_DOUBLE_EQ(ahist->Find("mean")->number, 3.0);
}

TEST(MetricsRegistryTest, GlobalHookInstallsAndRestores) {
  ASSERT_EQ(obs::GlobalMetrics(), nullptr);
  obs::MetricsRegistry reg;
  obs::MetricsRegistry* prev = obs::SetGlobalMetrics(&reg);
  EXPECT_EQ(prev, nullptr);
  EXPECT_EQ(obs::GlobalMetrics(), &reg);
  EXPECT_EQ(obs::SetGlobalMetrics(nullptr), &reg);
  EXPECT_EQ(obs::GlobalMetrics(), nullptr);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsLoseNothing) {
  obs::MetricsRegistry reg;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerTask = 5'000;
  ThreadPool pool(kThreads);
  // Hammer one pre-created counter, one lazily-created counter (which
  // also races instrument creation), a gauge, and a histogram from
  // every pool thread at once.
  obs::Counter* warm = reg.counter("warm");
  pool.ParallelFor(kThreads, [&](size_t t) {
    for (size_t i = 0; i < kPerTask; ++i) {
      warm->Increment();
      reg.Add("cold", 2);
      reg.Set("gauge", static_cast<double>(t));
      reg.Observe("hist", 1.0);
    }
  });
  EXPECT_EQ(warm->value(), kThreads * kPerTask);
  EXPECT_EQ(reg.counter("cold")->value(), 2 * kThreads * kPerTask);
  EXPECT_EQ(reg.histogram("hist")->count(), kThreads * kPerTask);
  EXPECT_DOUBLE_EQ(reg.histogram("hist")->sum(),
                   static_cast<double>(kThreads * kPerTask));
  EXPECT_LT(reg.gauge("gauge")->value(), static_cast<double>(kThreads));
}

TEST(TracerTest, ConcurrentCompleteSpansAllRecorded) {
  obs::Tracer tracer;
  const size_t root = tracer.BeginSpan("query", "pipeline");
  constexpr size_t kSpans = 2'000;
  ThreadPool pool(8);
  pool.ParallelFor(kSpans, [&](size_t i) {
    tracer.AddCompleteSpan("w" + std::to_string(i), "worker", root,
                           0.0, 1e-6, static_cast<int>(i % 8) + 1);
  });
  tracer.EndSpan(root);
  EXPECT_EQ(tracer.spans().size(), kSpans + 1);
  // Export still renders a parseable JSON array.
  auto parsed = obs::ParseJson(tracer.ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
}

// --- estimation error -------------------------------------------------

TEST(QueryMetricsTest, MaxEstimationError) {
  QueryMetrics qm;
  OperatorMetrics exact;
  exact.rows_out = 100;
  exact.estimated_rows = 100.0;
  OperatorMetrics off_by_4;
  off_by_4.rows_out = 25;
  off_by_4.estimated_rows = 100.0;
  OperatorMetrics unestimated;  // estimated_rows == 0 -> ignored
  unestimated.rows_out = 1000;
  qm.operators = {exact, off_by_4, unestimated};
  EXPECT_DOUBLE_EQ(qm.operators[0].EstimationError(), 1.0);
  EXPECT_DOUBLE_EQ(qm.operators[1].EstimationError(), 4.0);
  EXPECT_DOUBLE_EQ(qm.operators[2].EstimationError(), 0.0);
  EXPECT_DOUBLE_EQ(qm.MaxEstimationError(), 4.0);
}

// --- end-to-end through a Database ------------------------------------

class ObsDatabaseTest : public ::testing::Test {
 protected:
  ObsDatabaseTest() : db_(MakeConfig()) {}

  static Database::Config MakeConfig() {
    Database::Config cfg;
    cfg.num_workers = 4;
    cfg.obs.enable_tracing = true;
    cfg.obs.enable_metrics = true;
    return cfg;
  }

  void SetUp() override {
    ASSERT_TRUE(Exec(db_, "CREATE TABLE t (a INTEGER, b DOUBLE)").ok());
    ASSERT_TRUE(Exec(db_, "INSERT INTO t VALUES "
                               "(1, 1.5), (2, 2.5), (3, 3.5), (4, 4.5)")
                    .ok());
  }

  Database db_;
};

TEST_F(ObsDatabaseTest, PipelinePhasesAppearAsNestedSpans) {
  auto rs = Exec(db_, "SELECT SUM(b) FROM t WHERE a > 1");
  ASSERT_TRUE(rs.ok()) << rs.status();
  obs::Tracer* tracer = db_.tracer();
  ASSERT_NE(tracer, nullptr);

  size_t query_id = obs::Span::kNoParent;
  std::set<std::string> phases;
  for (size_t i = 0; i < tracer->spans().size(); ++i) {
    const obs::Span& s = tracer->spans()[i];
    EXPECT_TRUE(s.closed()) << s.name;
    if (s.name == "query") query_id = i;
  }
  ASSERT_NE(query_id, obs::Span::kNoParent);
  for (const obs::Span& s : tracer->spans()) {
    if (s.parent == query_id) phases.insert(s.name);
  }
  EXPECT_TRUE(phases.count("parse"));
  EXPECT_TRUE(phases.count("bind"));
  EXPECT_TRUE(phases.count("optimize"));
  EXPECT_TRUE(phases.count("execute"));
  // The text tree renders without blowing up and mentions the phases.
  const std::string tree = tracer->ToTextTree();
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_NE(tree.find("execute"), std::string::npos);
}

TEST_F(ObsDatabaseTest, ChromeTraceJsonRoundTrips) {
  ASSERT_TRUE(Exec(db_, "SELECT a FROM t WHERE b > 2.0").ok());
  auto parsed = obs::ParseJson(db_.tracer()->ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->is_array());
  ASSERT_FALSE(parsed->array.empty());
  std::set<std::string> names;
  for (const obs::JsonValue& ev : parsed->array) {
    ASSERT_TRUE(ev.is_object());
    const obs::JsonValue* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string_value, "X");  // complete events only
    ASSERT_NE(ev.Find("name"), nullptr);
    ASSERT_NE(ev.Find("ts"), nullptr);
    ASSERT_NE(ev.Find("dur"), nullptr);
    EXPECT_GE(ev.Find("dur")->number, 0.0);
    names.insert(ev.Find("name")->string_value);
  }
  for (const char* phase : {"query", "parse", "bind", "optimize", "execute"}) {
    EXPECT_TRUE(names.count(phase)) << phase;
  }
}

TEST_F(ObsDatabaseTest, ExecutorPublishesCounters) {
  ASSERT_TRUE(Exec(db_, "SELECT SUM(b) FROM t").ok());
  obs::MetricsRegistry* reg = db_.metrics_registry();
  ASSERT_NE(reg, nullptr);
  EXPECT_GT(reg->counter("exec.operators")->value(), 0u);
  EXPECT_GT(reg->counter("exec.rows_out")->value(), 0u);
  EXPECT_EQ(reg->counter("optimizer.queries_planned")->value(), 1u);
  EXPECT_DOUBLE_EQ(reg->gauge("exec.workers")->value(), 4.0);
}

TEST_F(ObsDatabaseTest, TraceCoversOnlyTheLastExecute) {
  ASSERT_TRUE(Exec(db_, "SELECT a FROM t").ok());
  ASSERT_TRUE(Exec(db_, "SELECT b FROM t").ok());
  size_t query_spans = 0;
  for (const obs::Span& s : db_.tracer()->spans()) {
    if (s.name == "query") ++query_spans;
  }
  EXPECT_EQ(query_spans, 1u);
}

TEST(ObsDisabledTest, DefaultDatabaseHasNoObservability) {
  Database db;
  EXPECT_EQ(db.tracer(), nullptr);
  EXPECT_EQ(db.metrics_registry(), nullptr);
  EXPECT_FALSE(db.obs_context().enabled());
  ASSERT_TRUE(Exec(db, "CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(Exec(db, "INSERT INTO t VALUES (1), (2)").ok());
  auto rs = Exec(db, "SELECT a FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 2u);
  // Nothing leaked into the process-global hook.
  EXPECT_EQ(obs::GlobalMetrics(), nullptr);
}

TEST(ObsDatabaseFilesTest, TraceAndMetricsFilesAreWritten) {
  const std::string trace_path = ::testing::TempDir() + "/radb_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "/radb_metrics.json";
  Database::Config cfg;
  cfg.obs.trace_path = trace_path;      // implies tracing
  cfg.obs.metrics_path = metrics_path;  // implies metrics
  Database db(cfg);
  ASSERT_NE(db.tracer(), nullptr);
  ASSERT_NE(db.metrics_registry(), nullptr);
  ASSERT_TRUE(Exec(db, "CREATE TABLE t (a INTEGER);"
                            "INSERT INTO t VALUES (1);"
                            "SELECT a FROM t")
                  .ok());
  for (const std::string& path : {trace_path, metrics_path}) {
    std::ifstream is(path);
    ASSERT_TRUE(is.good()) << path;
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    auto parsed = obs::ParseJson(text);
    EXPECT_TRUE(parsed.ok()) << path << ": " << parsed.status();
  }
}

// --- minimal JSON parser ----------------------------------------------

TEST(JsonTest, ParsesScalarsAndStructures) {
  auto v = obs::ParseJson(
      R"({"a": [1, 2.5, -3e2], "b": {"nested": true}, "c": null,
          "s": "q\"uote\nA"})");
  ASSERT_TRUE(v.ok()) << v.status();
  const obs::JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  ASSERT_NE(v->Find("b"), nullptr);
  ASSERT_NE(v->Find("b")->Find("nested"), nullptr);
  EXPECT_TRUE(v->Find("b")->Find("nested")->bool_value);
  EXPECT_EQ(v->Find("c")->kind, obs::JsonValue::Kind::kNull);
  EXPECT_EQ(v->Find("s")->string_value, "q\"uote\nA");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("[1,]").ok());
  EXPECT_FALSE(obs::ParseJson("\"unterminated").ok());
  EXPECT_FALSE(obs::ParseJson("{} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("nul").ok());
}

TEST(JsonTest, NumberFormattingAvoidsInfNan) {
  EXPECT_EQ(obs::JsonNumber(2.0), "2");
  const std::string inf = obs::JsonNumber(INFINITY);
  const std::string nan = obs::JsonNumber(NAN);
  for (const std::string& s : {inf, nan}) {
    EXPECT_EQ(s.find("inf"), std::string::npos) << s;
    EXPECT_EQ(s.find("nan"), std::string::npos) << s;
  }
}

}  // namespace
}  // namespace radb
