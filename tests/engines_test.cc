#include <gtest/gtest.h>

#include "common/rng.h"
#include "engines/scidb/array.h"
#include "engines/spark/block_matrix.h"
#include "engines/spark/rdd.h"
#include "engines/systemml/dml.h"
#include "la/random.h"

namespace radb {
namespace {

// ------------------------- Spark-style --------------------------------

TEST(SparkRddTest, MapFilterReduceCollect) {
  spark::SparkContext ctx(4);
  std::vector<int64_t> data;
  for (int64_t i = 1; i <= 100; ++i) data.push_back(i);
  auto rdd = spark::Rdd<int64_t>::Parallelize(&ctx, data);
  EXPECT_EQ(rdd.Count(), 100u);
  auto doubled = rdd.Map([](int64_t x) { return x * 2; });
  auto evens = doubled.Filter([](int64_t x) { return x % 4 == 0; });
  EXPECT_EQ(evens.Count(), 50u);
  auto sum = rdd.Reduce([](int64_t a, int64_t b) { return a + b; });
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 5050);
  EXPECT_GT(ctx.metrics().operators.size(), 0u);
}

TEST(SparkRddTest, ReduceOnEmptyIsError) {
  spark::SparkContext ctx(2);
  auto rdd = spark::Rdd<int64_t>::Parallelize(&ctx, {});
  EXPECT_FALSE(rdd.Reduce([](int64_t a, int64_t b) { return a + b; }).ok());
}

TEST(SparkRddTest, AggregateMatchesReduce) {
  spark::SparkContext ctx(3);
  std::vector<int64_t> data;
  for (int64_t i = 1; i <= 30; ++i) data.push_back(i);
  auto rdd = spark::Rdd<int64_t>::Parallelize(&ctx, data);
  auto agg = rdd.Aggregate<int64_t>(
      0, [](int64_t acc, int64_t x) { return acc + x; },
      [](int64_t a, int64_t b) { return a + b; });
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(*agg, 465);
}

TEST(SparkBlockMatrixTest, MultiplyMatchesDense) {
  spark::SparkContext ctx(4);
  Rng rng(5);
  la::Matrix a = la::RandomMatrix(rng, 12, 8);
  la::Matrix b = la::RandomMatrix(rng, 8, 10);
  auto ab = spark::BlockMatrix::FromDense(&ctx, a, 3, 3);
  auto bb = spark::BlockMatrix::FromDense(&ctx, b, 3, 3);
  auto prod = ab.Multiply(bb);
  ASSERT_TRUE(prod.ok()) << prod.status();
  auto local = prod->ToLocal();
  ASSERT_TRUE(local.ok());
  auto expected = la::Multiply(a, b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(local->MaxAbsDiff(*expected), 1e-9);
  // Shuffle bytes were charged.
  EXPECT_GT(ctx.metrics().TotalBytesShuffled(), 0u);
}

TEST(SparkBlockMatrixTest, TransposeAndIndexedRows) {
  spark::SparkContext ctx(3);
  Rng rng(6);
  la::Matrix a = la::RandomMatrix(rng, 7, 5);
  auto ab = spark::BlockMatrix::FromDense(&ctx, a, 2, 2);
  auto t = ab.Transpose().ToLocal();
  ASSERT_TRUE(t.ok());
  EXPECT_LT(t->MaxAbsDiff(la::Transpose(a)), 1e-12);
  auto rows = ab.ToIndexedRows().Collect();
  EXPECT_EQ(rows.size(), 7u);
  for (const auto& [idx, vec] : rows) {
    EXPECT_LT(vec.MaxAbsDiff(a.Row(idx)), 1e-12);
  }
}

TEST(SparkBlockMatrixTest, IncompatibleShapesRejected) {
  spark::SparkContext ctx(2);
  auto a = spark::BlockMatrix::FromDense(&ctx, la::Matrix(4, 4), 2, 2);
  auto b = spark::BlockMatrix::FromDense(&ctx, la::Matrix(5, 4), 2, 2);
  EXPECT_FALSE(a.Multiply(b).ok());
}

TEST(SparkBlockMatrixTest, RaggedBlocksStillCorrect) {
  // Block size that does not divide the matrix dims.
  spark::SparkContext ctx(3);
  Rng rng(41);
  la::Matrix a = la::RandomMatrix(rng, 7, 5);
  la::Matrix b = la::RandomMatrix(rng, 5, 9);
  auto ab = spark::BlockMatrix::FromDense(&ctx, a, 3, 2);
  auto bb = spark::BlockMatrix::FromDense(&ctx, b, 2, 4);
  auto prod = ab.Multiply(bb);
  ASSERT_TRUE(prod.ok()) << prod.status();
  auto local = prod->ToLocal();
  ASSERT_TRUE(local.ok());
  auto expected = la::Multiply(a, b);
  EXPECT_LT(local->MaxAbsDiff(*expected), 1e-10);
}

TEST(SparkRddTest, MaxByPicksGlobalMax) {
  spark::SparkContext ctx(4);
  std::vector<std::pair<int64_t, double>> data;
  for (int i = 0; i < 50; ++i) {
    data.emplace_back(i, (i * 37 % 50) * 1.0);
  }
  auto rdd =
      spark::Rdd<std::pair<int64_t, double>>::Parallelize(&ctx, data);
  auto best = rdd.MaxBy([](const auto& a, const auto& b) {
    return a.second < b.second;
  });
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ(best->second, 49.0);
}

// ------------------------- SciDB-style --------------------------------

TEST(SciDbTest, GemmMatchesDense) {
  scidb::ArrayContext ctx(4);
  Rng rng(7);
  la::Matrix a = la::RandomMatrix(rng, 9, 6);
  la::Matrix b = la::RandomMatrix(rng, 6, 11);
  auto aa = scidb::Array2D::FromDense(&ctx, a, 4);
  auto bb = scidb::Array2D::FromDense(&ctx, b, 4);
  auto zero = scidb::Array2D::Build(&ctx, 9, 11, 4);
  auto prod = scidb::Gemm(aa, bb, zero);
  ASSERT_TRUE(prod.ok()) << prod.status();
  auto dense = prod->ToDense();
  ASSERT_TRUE(dense.ok());
  auto expected = la::Multiply(a, b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(dense->MaxAbsDiff(*expected), 1e-9);
}

TEST(SciDbTest, GemmAddsC) {
  scidb::ArrayContext ctx(2);
  la::Matrix a(2, 2, {1, 0, 0, 1});
  la::Matrix c(2, 2, {5, 5, 5, 5});
  auto aa = scidb::Array2D::FromDense(&ctx, a, 2);
  auto cc = scidb::Array2D::FromDense(&ctx, c, 2);
  auto out = scidb::Gemm(aa, aa, cc);
  ASSERT_TRUE(out.ok());
  auto dense = out->ToDense();
  ASSERT_TRUE(dense.ok());
  EXPECT_DOUBLE_EQ(dense->At(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(dense->At(0, 1), 5.0);
}

TEST(SciDbTest, TransposeFilterMinRows) {
  scidb::ArrayContext ctx(3);
  Rng rng(8);
  la::Matrix a = la::RandomMatrix(rng, 6, 6);
  auto arr = scidb::Array2D::FromDense(&ctx, a, 2);
  auto t = scidb::Transpose(arr);
  ASSERT_TRUE(t.ok());
  auto td = t->ToDense();
  ASSERT_TRUE(td.ok());
  EXPECT_LT(td->MaxAbsDiff(la::Transpose(a)), 1e-12);

  constexpr double kEmpty = 1e300;
  auto filtered = scidb::FilterCells(
      arr, [](size_t i, size_t j, double) { return i != j; }, kEmpty);
  ASSERT_TRUE(filtered.ok());
  auto mins = scidb::MinOverRows(*filtered, kEmpty);
  ASSERT_TRUE(mins.ok());
  for (size_t i = 0; i < 6; ++i) {
    double expected = 1e308;
    for (size_t j = 0; j < 6; ++j) {
      if (j != i) expected = std::min(expected, a.At(i, j));
    }
    EXPECT_DOUBLE_EQ((*mins)[i], expected);
  }
}

TEST(SciDbTest, ChunkMismatchRejected) {
  scidb::ArrayContext ctx(2);
  auto a = scidb::Array2D::FromDense(&ctx, la::Matrix(4, 4), 2);
  auto b = scidb::Array2D::FromDense(&ctx, la::Matrix(4, 4), 3);
  auto zero = scidb::Array2D::Build(&ctx, 4, 4, 2);
  EXPECT_FALSE(scidb::Gemm(a, b, zero).ok());
}

TEST(SciDbTest, BuildFillsUniformly) {
  scidb::ArrayContext ctx(2);
  auto arr = scidb::Array2D::Build(&ctx, 5, 7, 3, 2.5);
  auto dense = arr.ToDense();
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(dense->rows(), 5u);
  EXPECT_EQ(dense->cols(), 7u);
  EXPECT_DOUBLE_EQ(dense->Min(), 2.5);
  EXPECT_DOUBLE_EQ(dense->Max(), 2.5);
}

TEST(SciDbTest, MaxOfVectorAndEmpty) {
  scidb::ArrayContext ctx(2);
  la::Vector v(std::vector<double>{3, 9, 1});
  auto mx = scidb::MaxOfVector(&ctx, v);
  ASSERT_TRUE(mx.ok());
  EXPECT_DOUBLE_EQ(*mx, 9.0);
  EXPECT_FALSE(scidb::MaxOfVector(&ctx, la::Vector()).ok());
}

// ------------------------- SystemML-style -----------------------------

systemml::DmlConfig SmallClusterConfig() {
  systemml::DmlConfig config;
  config.num_workers = 4;
  config.block_size = 4;
  config.local_threshold_bytes = 256;  // force distribution in tests
  return config;
}

TEST(SystemMlTest, TsmmMatchesDense) {
  systemml::DmlContext ctx(SmallClusterConfig());
  Rng rng(9);
  la::Matrix x = la::RandomMatrix(rng, 20, 4);
  auto xd = systemml::DmlMatrix::FromDense(&ctx, x);
  EXPECT_FALSE(xd.IsLocal());
  auto gram = xd.Tsmm();
  ASSERT_TRUE(gram.ok()) << gram.status();
  auto dense = gram->ToDense();
  ASSERT_TRUE(dense.ok());
  EXPECT_LT(dense->MaxAbsDiff(la::TransposeSelfMultiply(x)), 1e-9);
}

TEST(SystemMlTest, LocalModeForSmallOperands) {
  systemml::DmlConfig config;
  config.local_threshold_bytes = 1 << 20;
  systemml::DmlContext ctx(config);
  la::Matrix x(10, 3, 1.0);
  auto xd = systemml::DmlMatrix::FromDense(&ctx, x);
  EXPECT_TRUE(xd.IsLocal());
  ctx.ResetMetrics();
  auto gram = xd.Tsmm();
  ASSERT_TRUE(gram.ok());
  // Local mode: no shuffle at all (the paper's starred entries).
  EXPECT_EQ(ctx.metrics().TotalBytesShuffled(), 0u);
}

TEST(SystemMlTest, MultiplyMatchesDense) {
  systemml::DmlContext ctx(SmallClusterConfig());
  Rng rng(10);
  la::Matrix a = la::RandomMatrix(rng, 10, 6);
  la::Matrix b = la::RandomMatrix(rng, 6, 9);
  auto ad = systemml::DmlMatrix::FromDense(&ctx, a);
  auto bd = systemml::DmlMatrix::FromDense(&ctx, b);
  auto prod = ad.Multiply(bd);
  ASSERT_TRUE(prod.ok()) << prod.status();
  auto dense = prod->ToDense();
  ASSERT_TRUE(dense.ok());
  auto expected = la::Multiply(a, b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(dense->MaxAbsDiff(*expected), 1e-9);
}

TEST(SystemMlTest, RowMinsDiagIndexMax) {
  systemml::DmlContext ctx(SmallClusterConfig());
  la::Matrix a(3, 3, {5, 1, 9, 2, 8, 4, 7, 3, 6});
  auto ad = systemml::DmlMatrix::FromDense(&ctx, a);
  auto mins = ad.RowMins();
  ASSERT_TRUE(mins.ok());
  EXPECT_EQ(mins->values(), (std::vector<double>{1, 2, 3}));
  auto diag = ad.Diag();
  ASSERT_TRUE(diag.ok());
  EXPECT_EQ(diag->values(), (std::vector<double>{5, 8, 6}));
  la::Vector bump(std::vector<double>{100, 0, 0});
  auto bumped = ad.AddToDiagonal(bump);
  ASSERT_TRUE(bumped.ok());
  auto dense = bumped->ToDense();
  ASSERT_TRUE(dense.ok());
  EXPECT_DOUBLE_EQ(dense->At(0, 0), 105);
}

TEST(SystemMlTest, SolveMatchesLa) {
  systemml::DmlContext ctx(SmallClusterConfig());
  Rng rng(11);
  la::Matrix a = la::RandomSpdMatrix(rng, 6);
  la::Vector b = la::RandomVector(rng, 6);
  auto ad = systemml::DmlMatrix::FromDense(&ctx, a);
  auto x = systemml::DmlMatrix::Solve(ad, b);
  ASSERT_TRUE(x.ok());
  auto expected = la::Solve(a, b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(x->MaxAbsDiff(*expected), 1e-9);
}

TEST(SystemMlTest, WideMatrixTsmmFallsBackToMultiply) {
  // TSMM's block-local fast path needs a single block column; a wide
  // matrix takes the transpose-multiply fallback and must still be
  // exact.
  systemml::DmlConfig config;
  config.num_workers = 3;
  config.block_size = 4;
  config.local_threshold_bytes = 1;  // force distribution
  systemml::DmlContext ctx(config);
  Rng rng(43);
  la::Matrix x = la::RandomMatrix(rng, 10, 9);  // 3 block columns
  auto xd = systemml::DmlMatrix::FromDense(&ctx, x);
  auto gram = xd.Tsmm();
  ASSERT_TRUE(gram.ok()) << gram.status();
  auto dense = gram->ToDense();
  ASSERT_TRUE(dense.ok());
  EXPECT_LT(dense->MaxAbsDiff(la::TransposeSelfMultiply(x)), 1e-9);
}

TEST(SystemMlTest, MapMmBroadcastsSmallSide) {
  systemml::DmlConfig config;
  config.num_workers = 4;
  config.block_size = 8;
  config.local_threshold_bytes = 300;  // small side local, big side not
  systemml::DmlContext ctx(config);
  Rng rng(44);
  la::Matrix big = la::RandomMatrix(rng, 32, 6);   // 1.5 KiB: distributed
  la::Matrix small = la::RandomMatrix(rng, 6, 4);  // 192 B: local
  auto bigd = systemml::DmlMatrix::FromDense(&ctx, big);
  auto smalld = systemml::DmlMatrix::FromDense(&ctx, small);
  EXPECT_FALSE(bigd.IsLocal());
  EXPECT_TRUE(smalld.IsLocal());
  ctx.ResetMetrics();
  auto prod = bigd.Multiply(smalld);
  ASSERT_TRUE(prod.ok()) << prod.status();
  auto dense = prod->ToDense();
  ASSERT_TRUE(dense.ok());
  auto expected = la::Multiply(big, small);
  EXPECT_LT(dense->MaxAbsDiff(*expected), 1e-10);
  bool saw_mapmm = false;
  for (const auto& op : ctx.metrics().operators) {
    if (op.name.find("mapmm(broadcast)") != std::string::npos) {
      saw_mapmm = true;
      EXPECT_GT(op.bytes_shuffled, 0u);  // broadcast is charged
    }
  }
  EXPECT_TRUE(saw_mapmm);
}

TEST(SystemMlTest, DimensionMismatchErrors) {
  systemml::DmlConfig config;
  systemml::DmlContext ctx(config);
  auto a = systemml::DmlMatrix::FromDense(&ctx, la::Matrix(3, 4));
  auto b = systemml::DmlMatrix::FromDense(&ctx, la::Matrix(3, 4));
  EXPECT_FALSE(a.Multiply(b).ok());
  EXPECT_FALSE(a.AddToDiagonal(la::Vector(3)).ok());
  auto c = systemml::DmlMatrix::FromDense(&ctx, la::Matrix(2, 2));
  EXPECT_FALSE(a.Add(c).ok());
}

}  // namespace
}  // namespace radb
