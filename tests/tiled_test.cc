#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/random.h"
#include "la/tiled.h"

namespace radb::la {
namespace {

TEST(TiledTest, SplitAssembleRoundTrip) {
  Rng rng(1);
  Matrix m = RandomMatrix(rng, 10, 14);
  auto tiles = SplitIntoTiles(m, 3, 5);
  EXPECT_EQ(tiles.size(), 4u * 3u);
  auto back = AssembleTiles(tiles);
  ASSERT_TRUE(back.ok());
  EXPECT_LT(back->MaxAbsDiff(m), 1e-15);
}

TEST(TiledTest, AssembleRejectsHoles) {
  Rng rng(2);
  Matrix m = RandomMatrix(rng, 4, 4);
  auto tiles = SplitIntoTiles(m, 2, 2);
  tiles.pop_back();
  EXPECT_FALSE(AssembleTiles(tiles).ok());
}

TEST(TiledTest, AssembleRejectsDuplicates) {
  Rng rng(3);
  Matrix m = RandomMatrix(rng, 4, 4);
  auto tiles = SplitIntoTiles(m, 2, 2);
  tiles.push_back(tiles[0]);
  EXPECT_FALSE(AssembleTiles(tiles).ok());
}

TEST(TiledTest, AssembleRejectsInconsistentSizes) {
  std::vector<Tile> tiles;
  tiles.push_back(Tile{0, 0, Matrix(2, 2)});
  tiles.push_back(Tile{0, 1, Matrix(3, 2)});  // wrong height
  EXPECT_FALSE(AssembleTiles(tiles).ok());
}

class TiledMultiplyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TiledMultiplyTest, MatchesDense) {
  const auto [m, k, n, tile] = GetParam();
  Rng rng(17 + m + k + n + tile);
  Matrix a = RandomMatrix(rng, m, k);
  Matrix b = RandomMatrix(rng, k, n);
  auto dense = Multiply(a, b);
  ASSERT_TRUE(dense.ok());
  auto prod_tiles = TiledMultiply(SplitIntoTiles(a, tile, tile),
                                  SplitIntoTiles(b, tile, tile));
  ASSERT_TRUE(prod_tiles.ok());
  auto assembled = AssembleTiles(*prod_tiles);
  ASSERT_TRUE(assembled.ok());
  EXPECT_LT(assembled->MaxAbsDiff(*dense), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledMultiplyTest,
    ::testing::Values(std::make_tuple(4, 4, 4, 2),
                      std::make_tuple(10, 8, 6, 3),
                      std::make_tuple(7, 7, 7, 7),
                      std::make_tuple(9, 5, 11, 4),
                      std::make_tuple(16, 16, 16, 5),
                      std::make_tuple(1, 12, 1, 5)));

}  // namespace
}  // namespace radb::la
