#include <gtest/gtest.h>

#include "storage/table.h"

namespace radb {
namespace {

Schema TwoColSchema() {
  return Schema({Column{"", "id", DataType::Integer()},
                 Column{"", "vec", DataType::MakeVector(3)}});
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  Table t("t", TwoColSchema(), 4);
  EXPECT_TRUE(
      t.Insert(Row{Value::Int(1), Value::FromVector(la::Vector(3))}).ok());
  // Wrong arity.
  EXPECT_FALSE(t.Insert(Row{Value::Int(1)}).ok());
  // Wrong kind.
  EXPECT_FALSE(
      t.Insert(Row{Value::String("x"), Value::FromVector(la::Vector(3))})
          .ok());
  // Known dim mismatch: declared VECTOR[3], inserting length 4.
  EXPECT_FALSE(
      t.Insert(Row{Value::Int(2), Value::FromVector(la::Vector(4))}).ok());
  // NULLs are allowed anywhere.
  EXPECT_TRUE(t.Insert(Row{Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, RoundRobinSpreadsRows) {
  Table t("t", TwoColSchema(), 4);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        t.Insert(Row{Value::Int(i), Value::FromVector(la::Vector(3))}).ok());
  }
  for (size_t p = 0; p < t.num_partitions(); ++p) {
    EXPECT_EQ((*t.GatherPartition(p)).size(), 2u);
  }
}

TEST(TableTest, RepartitionByHashColocatesKeys) {
  Table t("t", TwoColSchema(), 4);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.Insert(Row{Value::Int(i % 5),
                             Value::FromVector(la::Vector(3))})
                    .ok());
  }
  ASSERT_TRUE(t.RepartitionByHash(0).ok());
  EXPECT_TRUE(t.partitioning().IsHashOn(0));
  EXPECT_FALSE(t.partitioning().IsHashOn(1));
  // All rows with equal keys are in the same partition.
  for (size_t p = 0; p < t.num_partitions(); ++p) {
    RowSet part = *t.GatherPartition(p);
    for (const Row& row : part) {
      const size_t expected = row[0].Hash() % t.num_partitions();
      EXPECT_EQ(expected, p);
    }
  }
  EXPECT_EQ(t.num_rows(), 20u);
  EXPECT_FALSE(t.RepartitionByHash(9).ok());
}

TEST(TableTest, GatherAndByteSize) {
  Table t("t", TwoColSchema(), 2);
  ASSERT_TRUE(
      t.Insert(Row{Value::Int(1), Value::FromVector(la::Vector(3))}).ok());
  EXPECT_EQ((*t.Gather()).size(), 1u);
  EXPECT_GT(t.byte_size(), 3 * sizeof(double));
}

TEST(TableTest, NumericFlexibility) {
  // DOUBLE columns accept INTEGER values and vice versa (coerced at
  // read time by AsDouble/AsInt).
  Table t("t", Schema({Column{"", "d", DataType::Double()}}), 1);
  EXPECT_TRUE(t.Insert(Row{Value::Int(3)}).ok());
}

}  // namespace
}  // namespace radb
