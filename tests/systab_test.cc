#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/cancellation.h"
#include "obs/exporter.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"
#include "service/session.h"
#include "testing/query_gen.h"

namespace radb {
namespace {

using service::SessionManager;

Database::Config MetricsConfig() {
  Database::Config config;
  config.num_workers = 4;
  config.num_threads = 2;
  config.obs.enable_metrics = true;
  return config;
}

Status LoadTinyTable(Database* db) {
  return db
      ->Execute(
          "CREATE TABLE t (a INTEGER, b DOUBLE);"
          "INSERT INTO t VALUES (1, 2.0);"
          "INSERT INTO t VALUES (2, 4.0);"
          "INSERT INTO t VALUES (3, 6.0)")
      .status();
}

// ----------------------------------------------------------------------
// System tables through ordinary SQL.
// ----------------------------------------------------------------------

TEST(SystemTablesTest, MetricsTableSelects) {
  Database db(MetricsConfig());
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  auto rs = db.Execute("SELECT name, value FROM radb_metrics");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_GT(rs->last().num_rows(), 0u);
  // Known counters appear by name.
  auto named = db.Execute(
      "SELECT value FROM radb_metrics "
      "WHERE name = 'optimizer.queries_planned'");
  ASSERT_TRUE(named.ok()) << named.status();
  ASSERT_EQ(named->last().num_rows(), 1u);
  EXPECT_GT(named->last().at(0, 0).double_value(), 0.0);
}

TEST(SystemTablesTest, QueriesTablePhaseFilter) {
  Database db(MetricsConfig());
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT SUM(b) FROM t").ok());
  // Every completed OK query has execute time and total >= sum of
  // phases it contains.
  auto rs = db.Execute(
      "SELECT query_id, sql, execute_micros, total_micros "
      "FROM radb_queries WHERE status = 'OK' AND execute_micros >= 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_GT(rs->last().num_rows(), 0u);
  // The phase long-format view agrees with the wide columns.
  auto phases = db.Execute(
      "SELECT phase, SUM(micros) AS total FROM radb_query_phases "
      "GROUP BY phase");
  ASSERT_TRUE(phases.ok()) << phases.status();
  EXPECT_EQ(phases->last().num_rows(), obs::kNumQueryPhases);
}

TEST(SystemTablesTest, OperatorsJoinQueries) {
  Database db(MetricsConfig());
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT SUM(a), COUNT(*) FROM t WHERE a > 1").ok());
  auto rs = db.Execute(
      "SELECT o.name, o.est_rows, o.actual_rows, q.sql "
      "FROM radb_operators AS o, radb_queries AS q "
      "WHERE o.query_id = q.query_id AND q.status = 'OK'");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_GT(rs->last().num_rows(), 0u);
  // est_error is the symmetric q-error, >= 1 wherever an estimate
  // exists (0 marks "no estimate").
  auto err = db.Execute(
      "SELECT COUNT(*) FROM radb_operators "
      "WHERE est_error < 1.0 AND est_error <> 0.0");
  ASSERT_TRUE(err.ok()) << err.status();
  EXPECT_EQ(err->last().at(0, 0).int_value(), 0);
}

TEST(SystemTablesTest, TablesListsUserTables) {
  Database db(MetricsConfig());
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  auto rs = db.Execute(
      "SELECT name, num_rows, bytes, num_partitions FROM radb_tables");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->last().num_rows(), 1u);
  EXPECT_EQ(rs->last().at(0, 0).string_value(), "t");
  EXPECT_EQ(rs->last().at(0, 1).int_value(), 3);
  EXPECT_GT(rs->last().at(0, 2).int_value(), 0);
  // System tables never list themselves.
  auto self = db.Execute(
      "SELECT COUNT(*) FROM radb_tables WHERE name = 'radb_tables'");
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->last().at(0, 0).int_value(), 0);
}

TEST(SystemTablesTest, UnknownSystemTableNamesTheProblem) {
  Database db(MetricsConfig());
  auto rs = db.Execute("SELECT * FROM radb_nope");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kCatalogError);
  EXPECT_NE(rs.status().message().find("unknown system table"),
            std::string::npos);
}

TEST(SystemTablesTest, DisabledProviderKeepsPrefixReserved) {
  Database::Config config = MetricsConfig();
  config.telemetry.enable_system_tables = false;
  Database db(config);
  EXPECT_FALSE(db.Execute("SELECT * FROM radb_metrics").ok());
  EXPECT_FALSE(db.Execute("CREATE TABLE radb_mine (a INTEGER)").ok());
}

// ----------------------------------------------------------------------
// Reserved prefix.
// ----------------------------------------------------------------------

TEST(SystemTablesTest, ReservedPrefixRejectsDdlAndDml) {
  Database db(MetricsConfig());
  auto create = db.Execute("CREATE TABLE radb_mine (a INTEGER)");
  ASSERT_FALSE(create.ok());
  EXPECT_EQ(create.status().code(), StatusCode::kCatalogError);
  EXPECT_NE(create.status().message().find("reserved"), std::string::npos);
  // Case-insensitive: RADB_ is the same prefix.
  EXPECT_FALSE(db.Execute("CREATE TABLE RADB_mine (a INTEGER)").ok());
  EXPECT_FALSE(db.Execute("CREATE VIEW radb_v AS SELECT 1 AS x").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO radb_metrics VALUES (1)").ok());
  EXPECT_FALSE(db.Execute("DROP TABLE radb_metrics").ok());
}

// ----------------------------------------------------------------------
// Query record ring.
// ----------------------------------------------------------------------

TEST(SystemTablesTest, RingEvictsOldestFirst) {
  Database::Config config = MetricsConfig();
  config.telemetry.query_log_capacity = 4;
  Database db(config);
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(db.Execute("SELECT COUNT(*) FROM t").ok());
  }
  const std::vector<obs::QueryRecord> records =
      db.telemetry_store()->SnapshotQueries();
  ASSERT_EQ(records.size(), 4u);
  // Ordinals are contiguous and ascending: the ring kept the newest 4
  // of the 8 recorded calls (setup script + 7 selects).
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].ordinal, records[i - 1].ordinal + 1);
  }
  EXPECT_EQ(records.back().ordinal,
            db.telemetry_store()->queries_recorded());
}

TEST(SystemTablesTest, FailedQueriesAreRecordedWithStatus) {
  Database db(MetricsConfig());
  ASSERT_TRUE(LoadTinyTable(&db).ok());

  // Cancelled: pre-fired token.
  QueryOptions cancelled_opts;
  cancelled_opts.cancellation = std::make_shared<CancellationToken>();
  cancelled_opts.cancellation->Cancel();
  auto cancelled = db.Execute("SELECT SUM(b) FROM t", cancelled_opts);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  // ResourceExhausted: a 1-byte budget no query fits in.
  auto exhausted = db.Execute("SELECT SUM(b), COUNT(*) FROM t",
                              QueryOptions{.memory_budget_bytes = 1});
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);

  auto rs = db.Execute(
      "SELECT status, COUNT(*) AS n FROM radb_queries "
      "WHERE status = 'Cancelled' OR status = 'ResourceExhausted' "
      "GROUP BY status");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->last().num_rows(), 2u);
}

// ----------------------------------------------------------------------
// Concurrent sessions scanning system tables (the TSan target).
// ----------------------------------------------------------------------

TEST(SystemTablesTest, EightSessionsMixSystemScansWithWorkload) {
  Database db(MetricsConfig());
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  SessionManager manager(&db);

  const std::vector<std::string> mix = {
      "SELECT SUM(b), COUNT(*) FROM t",
      "SELECT name, value FROM radb_metrics",
      "SELECT COUNT(*) FROM radb_queries WHERE status = 'OK'",
      "SELECT session_id, state FROM radb_sessions",
      "SELECT kind, tasks FROM radb_threads",
      "SELECT o.name FROM radb_operators AS o, radb_queries AS q "
      "WHERE o.query_id = q.query_id",
  };
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t s = 0; s < 8; ++s) {
    threads.emplace_back([&, s] {
      auto session = manager.CreateSession();
      for (size_t i = 0; i < 12; ++i) {
        const std::string& sql = mix[(s + i) % mix.size()];
        if (!session->Execute(sql).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);

  // Afterwards every session is deregistered and the histories are
  // visible: 96 session queries all completed OK.
  auto sessions = db.Execute("SELECT COUNT(*) FROM radb_sessions");
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ(sessions->last().at(0, 0).int_value(), 0);
  auto ok = db.Execute(
      "SELECT COUNT(*) FROM radb_queries "
      "WHERE session_id > 0 AND status = 'OK'");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->last().at(0, 0).int_value(), 96);
}

// ----------------------------------------------------------------------
// Histogram percentile edge cases.
// ----------------------------------------------------------------------

TEST(HistogramEdgeTest, EmptyHistogramReportsZero) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("edge.empty");
  EXPECT_EQ(h->Percentile(0.0), 0.0);
  EXPECT_EQ(h->Percentile(0.5), 0.0);
  EXPECT_EQ(h->Percentile(1.0), 0.0);
  EXPECT_EQ(h->min(), 0.0);
  EXPECT_EQ(h->max(), 0.0);
}

TEST(HistogramEdgeTest, SingleSampleIsEveryQuantile) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("edge.single");
  h->Observe(0.125);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(h->Percentile(0.99), 0.125);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 0.125);
}

TEST(HistogramEdgeTest, AllEqualSamplesClampToTheValue) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("edge.equal");
  for (int i = 0; i < 1000; ++i) h->Observe(3.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.01), 3.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.999), 3.0);
}

// ----------------------------------------------------------------------
// Exporter.
// ----------------------------------------------------------------------

TEST(ExporterTest, PrometheusRenderHasTypedFamilies) {
  Database::Config config = MetricsConfig();
  std::string prom;
  config.telemetry.prometheus_callback = [&](const std::string& text) {
    prom = text;
  };
  Database db(config);
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT SUM(b) FROM t").ok());
  ASSERT_NE(db.exporter(), nullptr);
  ASSERT_TRUE(db.exporter()->ExportOnce().ok());

  EXPECT_NE(prom.find("# TYPE radb_exec_rows_out counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE radb_exec_operator_seconds summary"),
            std::string::npos);
  EXPECT_NE(prom.find("radb_exec_operator_seconds_count"),
            std::string::npos);
  EXPECT_NE(prom.find("{quantile=\"0.99\"}"), std::string::npos);
  // Sanitization: no dotted names survive.
  EXPECT_EQ(prom.find("exec.rows_out"), std::string::npos);
}

TEST(ExporterTest, JsonlIsIncrementalAndParses) {
  Database::Config config = MetricsConfig();
  std::vector<std::string> batches;
  config.telemetry.jsonl_callback = [&](const std::string& text) {
    batches.push_back(text);
  };
  Database db(config);
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT COUNT(*) FROM t").ok());
  ASSERT_TRUE(db.exporter()->ExportOnce().ok());
  // Nothing ran since: the second export carries no records.
  ASSERT_TRUE(db.exporter()->ExportOnce().ok());
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_FALSE(batches[0].empty());
  EXPECT_TRUE(batches[1].empty());
  // Each line is one self-contained record with the phase breakdown.
  EXPECT_NE(batches[0].find("\"phases\": {\"queue\": "), std::string::npos);
  EXPECT_NE(batches[0].find("\"status\": \"OK\""), std::string::npos);
  EXPECT_NE(batches[0].find("\"operators\": ["), std::string::npos);
}

TEST(ExporterTest, SamplerStartsAndStopsCleanly) {
  Database::Config config = MetricsConfig();
  std::atomic<int> exports{0};
  config.telemetry.prometheus_callback = [&](const std::string&) {
    exports.fetch_add(1);
  };
  config.telemetry.sampler_interval_ms = 1;
  {
    Database db(config);
    ASSERT_NE(db.exporter(), nullptr);
    EXPECT_TRUE(db.exporter()->sampler_running());
    while (exports.load() == 0) {
      std::this_thread::yield();
    }
  }  // ~Database joins the sampler; no further exports after return.
  const int after_shutdown = exports.load();
  EXPECT_GT(after_shutdown, 0);
}

// ----------------------------------------------------------------------
// Slow-query log.
// ----------------------------------------------------------------------

TEST(SlowQueryLogTest, ThresholdEmitsStructuredLine) {
  Database::Config config = MetricsConfig();
  std::vector<std::string> lines;
  config.telemetry.slow_query_micros = 1;  // everything is "slow"
  config.telemetry.slow_query_sink = [&](const std::string& line) {
    lines.push_back(line);
  };
  Database db(config);
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT SUM(b) FROM t").ok());
  ASSERT_GE(lines.size(), 2u);  // setup script + select
  const std::string& line = lines.back();
  EXPECT_NE(line.find("\"sql\": \"SELECT SUM(b) FROM t\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"total_micros\""), std::string::npos);
  EXPECT_NE(line.find("\"execute\""), std::string::npos);
  // The counter tracks emissions.
  auto rs = db.Execute(
      "SELECT value FROM radb_metrics WHERE name = 'obs.slow_queries'");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->last().num_rows(), 1u);
  EXPECT_GE(rs->last().at(0, 0).double_value(), 2.0);
}

TEST(SlowQueryLogTest, FastQueriesStayQuiet) {
  Database::Config config = MetricsConfig();
  std::vector<std::string> lines;
  config.telemetry.slow_query_micros = 60ULL * 1000 * 1000;  // one minute
  config.telemetry.slow_query_sink = [&](const std::string& line) {
    lines.push_back(line);
  };
  Database db(config);
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT COUNT(*) FROM t").ok());
  EXPECT_TRUE(lines.empty());
}

// ----------------------------------------------------------------------
// Fuzz-schema drift guard: every column the fuzzer's curated system
// table schemas promise must bind with the promised type kind.
// ----------------------------------------------------------------------

TEST(SystemTablesTest, FuzzSchemasMatchLiveTables) {
  Database db(MetricsConfig());
  ASSERT_TRUE(LoadTinyTable(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT COUNT(*) FROM t").ok());
  for (const testing::TableSpec& spec : testing::SystemTableFuzzSchemas()) {
    for (const testing::ColumnSpec& col : spec.columns) {
      auto rs =
          db.Execute("SELECT " + col.name + " FROM " + spec.name);
      ASSERT_TRUE(rs.ok()) << spec.name << "." << col.name << ": "
                           << rs.status();
      ASSERT_EQ(rs->last().num_columns(), 1u);
      EXPECT_EQ(rs->last().columns[0].type.kind(), col.type.kind())
          << spec.name << "." << col.name;
    }
  }
}

}  // namespace
}  // namespace radb
