#include <gtest/gtest.h>

#include "api/database.h"

#include "test_util.h"

namespace radb {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Exec(db_, "CREATE TABLE t (a INTEGER, b DOUBLE); "
                               "CREATE TABLE u (a INTEGER, c STRING); "
                               "CREATE TABLE mats (m1 MATRIX[10][], "
                               "m2 MATRIX[][5], v VECTOR[10])")
                    .ok());
  }
  Database db_;
};

TEST_F(BinderTest, PartialDimsPropagateThroughSignatures) {
  // MATRIX[10][] x MATRIX[][5] -> MATRIX[10][5]: unknown inner dims
  // compile; outer dims are inferred exactly.
  auto plan = db_.PlanQuery(
      "SELECT matrix_multiply(m1, m2) FROM mats");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ((*plan)->output[0].type.ToString(), "MATRIX[10][5]");
  // trans_matrix flips what is known.
  auto plan2 = db_.PlanQuery("SELECT trans_matrix(m1) FROM mats");
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ((*plan2)->output[0].type.ToString(), "MATRIX[][10]");
  // VECTOR[10] through matrix_vector_multiply with MATRIX[10][].
  auto plan3 =
      db_.PlanQuery("SELECT matrix_vector_multiply(m1, v) FROM mats");
  ASSERT_TRUE(plan3.ok());
  EXPECT_EQ((*plan3)->output[0].type.ToString(), "VECTOR[10]");
}

TEST_F(BinderTest, AggregatesRejectedOutsideSelect) {
  EXPECT_EQ(Exec(db_, "SELECT a FROM t WHERE SUM(b) > 1")
                .status()
                .code(),
            StatusCode::kBindError);
  EXPECT_EQ(
      Exec(db_, "SELECT SUM(b) FROM t GROUP BY SUM(b)").status().code(),
      StatusCode::kBindError);
}

TEST_F(BinderTest, QualifiedStarDisallowedWithGroupBy) {
  EXPECT_EQ(Exec(db_, "SELECT * FROM t GROUP BY a").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, ViewColumnRenames) {
  ASSERT_TRUE(Exec(db_, "CREATE VIEW renamed (x, y) AS "
                             "SELECT a, b FROM t")
                  .ok());
  auto plan = db_.PlanQuery("SELECT renamed.x, renamed.y FROM renamed");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Original names are hidden.
  EXPECT_EQ(Exec(db_, "SELECT renamed.a FROM renamed")
                .status()
                .code(),
            StatusCode::kBindError);
  // Alias count mismatch is caught at CREATE VIEW.
  EXPECT_EQ(Exec(db_, "CREATE VIEW bad (x) AS SELECT a, b FROM t")
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, NestedViewsExpand) {
  ASSERT_TRUE(Exec(db_, 
                    "INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0)")
                  .ok());
  ASSERT_TRUE(Exec(db_, "CREATE VIEW v1 AS SELECT a, b FROM t "
                             "WHERE a > 1")
                  .ok());
  ASSERT_TRUE(Exec(db_, "CREATE VIEW v2 AS SELECT a, b * 2 AS b2 "
                             "FROM v1")
                  .ok());
  ASSERT_TRUE(
      Exec(db_, "CREATE VIEW v3 AS SELECT SUM(b2) AS s FROM v2").ok());
  auto rs = Exec(db_, "SELECT s FROM v3");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_DOUBLE_EQ(rs->at(0, 0).AsDouble().value(), 100.0);
}

TEST_F(BinderTest, UnqualifiedAmbiguityAcrossTables) {
  // Column `a` exists in both t and u.
  EXPECT_EQ(Exec(db_, "SELECT a FROM t, u").status().code(),
            StatusCode::kBindError);
  auto ok = db_.PlanQuery("SELECT t.a FROM t, u");
  EXPECT_TRUE(ok.ok());
  // `b` is unique, so unqualified works.
  auto ok2 = db_.PlanQuery("SELECT b FROM t, u");
  EXPECT_TRUE(ok2.ok());
}

TEST_F(BinderTest, SubqueryScopesAreIsolated) {
  // Inner alias not visible outside.
  EXPECT_EQ(Exec(db_, "SELECT inner_t.a FROM "
                           "(SELECT t.a AS a FROM t AS inner_t) AS s")
                .status()
                .code(),
            StatusCode::kBindError);
  // Outer columns not visible inside (no correlated subqueries).
  EXPECT_FALSE(
      Exec(db_, "SELECT s.x FROM t, (SELECT t.a AS x FROM u) AS s")
          .ok());
}

TEST_F(BinderTest, ExplainStatementProducesPlanRows) {
  auto rs = Exec(db_, "EXPLAIN SELECT a FROM t WHERE a > 1");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_GT(rs->num_rows(), 1u);
  EXPECT_EQ(rs->columns[0].name, "plan");
  bool saw_scan = false, saw_cost = false;
  for (size_t i = 0; i < rs->num_rows(); ++i) {
    const std::string& line = rs->at(i, 0).string_value();
    if (line.find("Scan") != std::string::npos) saw_scan = true;
    if (line.find("estimated cost") != std::string::npos) saw_cost = true;
  }
  EXPECT_TRUE(saw_scan);
  EXPECT_TRUE(saw_cost);
  // EXPLAIN of invalid SQL fails like the query would.
  EXPECT_FALSE(Exec(db_, "EXPLAIN SELECT nope FROM t").ok());
}

TEST_F(BinderTest, SelectItemAliasesVisibleInOrderBy) {
  ASSERT_TRUE(
      Exec(db_, "INSERT INTO t VALUES (3, 1.0), (1, 2.0), (2, 0.5)")
          .ok());
  auto rs = Exec(db_, 
      "SELECT a * 10 AS scaled FROM t ORDER BY scaled DESC");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 30);
  EXPECT_EQ(rs->at(2, 0).AsInt().value(), 10);
}

TEST_F(BinderTest, GroupKeySubtreesReplacedInComplexSelects) {
  ASSERT_TRUE(
      Exec(db_, "INSERT INTO t VALUES (1, 1.0), (1, 2.0), (2, 3.0)")
          .ok());
  // The select expression uses the group key inside arithmetic and a
  // function call.
  auto rs = Exec(db_, 
      "SELECT a + 100, abs_val(a - 10) + SUM(b) FROM t "
      "GROUP BY a ORDER BY a");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 101);
  EXPECT_DOUBLE_EQ(rs->at(0, 1).AsDouble().value(), 9 + 3.0);
  EXPECT_DOUBLE_EQ(rs->at(1, 1).AsDouble().value(), 8 + 3.0);
}

TEST_F(BinderTest, HiddenSortColumnsAreTrimmed) {
  ASSERT_TRUE(
      Exec(db_, "INSERT INTO t VALUES (3, 30.0), (1, 10.0), (2, 20.0)")
          .ok());
  // ORDER BY a non-selected column: allowed, sorted correctly, and the
  // hidden key does not appear in the result.
  auto rs = Exec(db_, "SELECT b FROM t ORDER BY a DESC");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_columns(), 1u);
  EXPECT_DOUBLE_EQ(rs->at(0, 0).AsDouble().value(), 30.0);
  EXPECT_DOUBLE_EQ(rs->at(2, 0).AsDouble().value(), 10.0);
  // With DISTINCT this is ill-defined and rejected.
  EXPECT_EQ(Exec(db_, "SELECT DISTINCT b FROM t ORDER BY a")
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, DuplicateColumnNamesInSubqueryOutput) {
  // Derived tables can expose duplicate names; referencing one is
  // ambiguous, COUNT(*) still works.
  auto rs = Exec(db_, 
      "SELECT COUNT(*) FROM (SELECT a, a FROM t) AS s");
  EXPECT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(Exec(db_, "SELECT s.a FROM (SELECT a, a FROM t) AS s")
                .status()
                .code(),
            StatusCode::kBindError);
}

}  // namespace
}  // namespace radb
