#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"

#include "test_util.h"
#include "common/rng.h"
#include "dist/metrics.h"
#include "la/vector.h"

namespace radb {
namespace {

/// Executor-level behaviours exercised through the public API: join
/// strategy selection, two-phase aggregation, shuffle accounting,
/// NULL semantics, and operator metrics.
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Config config;
    config.num_workers = 4;
    db_ = std::make_unique<Database>(config);
  }
  std::unique_ptr<Database> db_;
};

TEST_F(ExecTest, BroadcastJoinChosenForTinySide) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE big (k INTEGER, v DOUBLE); "
                              "CREATE TABLE tiny (k INTEGER)")
                  .ok());
  std::vector<Row> big_rows;
  for (int i = 0; i < 2000; ++i) {
    big_rows.push_back({Value::Int(i % 100), Value::Double(i)});
  }
  ASSERT_TRUE(db_->BulkInsert("big", std::move(big_rows)).ok());
  ASSERT_TRUE(
      db_->BulkInsert("tiny", {{Value::Int(7)}, {Value::Int(13)}}).ok());
  auto rs = Exec(*db_, 
      "SELECT COUNT(*) FROM big, tiny WHERE big.k = tiny.k");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 40);
  bool saw_broadcast = false;
  for (const auto& op : db_->last_metrics().operators) {
    if (op.name.find("bcast") != std::string::npos) saw_broadcast = true;
  }
  EXPECT_TRUE(saw_broadcast);
}

TEST_F(ExecTest, ShuffleJoinForComparableSides) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE l (k INTEGER, p DOUBLE); "
                              "CREATE TABLE r (k INTEGER, q DOUBLE)")
                  .ok());
  std::vector<Row> lr, rr;
  for (int i = 0; i < 500; ++i) {
    lr.push_back({Value::Int(i), Value::Double(i)});
    rr.push_back({Value::Int(i), Value::Double(-i)});
  }
  ASSERT_TRUE(db_->BulkInsert("l", std::move(lr)).ok());
  ASSERT_TRUE(db_->BulkInsert("r", std::move(rr)).ok());
  auto rs = Exec(*db_, 
      "SELECT COUNT(*), SUM(l.p + r.q) FROM l, r WHERE l.k = r.k");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 500);
  EXPECT_DOUBLE_EQ(rs->at(0, 1).AsDouble().value(), 0.0);
  bool saw_shuffle_join = false;
  size_t shuffled = 0;
  for (const auto& op : db_->last_metrics().operators) {
    if (op.name == "HashJoin(shuffle)") {
      saw_shuffle_join = true;
      shuffled = op.bytes_shuffled;
    }
  }
  EXPECT_TRUE(saw_shuffle_join);
  EXPECT_GT(shuffled, 0u);
}

TEST_F(ExecTest, PrePartitionedSideSkipsShuffle) {
  // The paper's §2.1 scenario: one side is already hash-partitioned on
  // the join key, so only the other side moves.
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE lhs (k INTEGER, p DOUBLE); "
                              "CREATE TABLE rhs (k INTEGER, q DOUBLE)")
                  .ok());
  std::vector<Row> lr, rr;
  for (int i = 0; i < 400; ++i) {
    lr.push_back({Value::Int(i), Value::Double(i)});
    rr.push_back({Value::Int(i), Value::Double(-i)});
  }
  ASSERT_TRUE(db_->BulkInsert("lhs", std::move(lr)).ok());
  ASSERT_TRUE(db_->BulkInsert("rhs", std::move(rr)).ok());
  ASSERT_TRUE(db_->RepartitionTable("rhs", "k").ok());
  ASSERT_FALSE(db_->RepartitionTable("rhs", "nope").ok());

  auto rs = Exec(*db_, 
      "SELECT COUNT(*) FROM lhs, rhs WHERE lhs.k = rhs.k");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 400);
  bool saw_elision = false;
  for (const auto& op : db_->last_metrics().operators) {
    if (op.name == "HashJoin(shuffle one side)") saw_elision = true;
  }
  EXPECT_TRUE(saw_elision) << db_->last_metrics().ToString();

  // Both sides pre-partitioned: co-located join with zero shuffle.
  ASSERT_TRUE(db_->RepartitionTable("lhs", "k").ok());
  auto rs2 = Exec(*db_, 
      "SELECT COUNT(*) FROM lhs, rhs WHERE lhs.k = rhs.k");
  ASSERT_TRUE(rs2.ok()) << rs2.status();
  EXPECT_EQ(rs2->at(0, 0).AsInt().value(), 400);
  for (const auto& op : db_->last_metrics().operators) {
    if (op.name.find("HashJoin") != std::string::npos) {
      EXPECT_EQ(op.name, "HashJoin(co-located)");
      EXPECT_EQ(op.bytes_shuffled, 0u);
    }
  }
  // Predicates on the partitioned side don't break co-location.
  auto rs3 = Exec(*db_, 
      "SELECT COUNT(*) FROM lhs, rhs WHERE lhs.k = rhs.k AND rhs.q < 0");
  ASSERT_TRUE(rs3.ok()) << rs3.status();
  EXPECT_EQ(rs3->at(0, 0).AsInt().value(), 399);
}

TEST_F(ExecTest, CompositeJoinKeys) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE a (x INTEGER, y INTEGER); "
                              "CREATE TABLE b (x INTEGER, y INTEGER)")
                  .ok());
  std::vector<Row> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({Value::Int(i % 5), Value::Int(i % 3)});
  }
  ASSERT_TRUE(db_->BulkInsert("a", rows).ok());
  ASSERT_TRUE(db_->BulkInsert("b", std::move(rows)).ok());
  auto rs = Exec(*db_, 
      "SELECT COUNT(*) FROM a, b WHERE a.x = b.x AND a.y = b.y");
  ASSERT_TRUE(rs.ok()) << rs.status();
  // Each (x, y) combo appears exactly twice in 30 rows (15 combos).
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 60);
}

TEST_F(ExecTest, JoinOnExpressionKeys) {
  // Keys may be arbitrary expressions over one side — the paper's
  // blocking join `x.id / 1000 = ind.mi` is the canonical use.
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE items (id INTEGER); "
                              "CREATE TABLE groups (g INTEGER)")
                  .ok());
  std::vector<Row> items, groups;
  for (int i = 0; i < 40; ++i) items.push_back({Value::Int(i)});
  for (int g = 0; g < 4; ++g) groups.push_back({Value::Int(g)});
  ASSERT_TRUE(db_->BulkInsert("items", std::move(items)).ok());
  ASSERT_TRUE(db_->BulkInsert("groups", std::move(groups)).ok());
  auto rs = Exec(*db_, 
      "SELECT groups.g, COUNT(*) FROM items, groups "
      "WHERE items.id / 10 = groups.g GROUP BY groups.g ORDER BY groups.g");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 4u);
  for (size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(rs->at(g, 1).AsInt().value(), 10);
  }
}

TEST_F(ExecTest, NullSemantics) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE t (a INTEGER, b DOUBLE); "
                              "INSERT INTO t VALUES (1, 1.0), (2, NULL), "
                              "(NULL, 3.0), (4, 4.0)")
                  .ok());
  // NULLs don't match in equality predicates.
  auto rs = Exec(*db_, "SELECT COUNT(*) FROM t WHERE a = a");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 3);
  // Aggregates skip NULLs; COUNT(col) counts non-null.
  auto rs2 = Exec(*db_, "SELECT COUNT(b), SUM(b), AVG(b) FROM t");
  ASSERT_TRUE(rs2.ok()) << rs2.status();
  EXPECT_EQ(rs2->at(0, 0).AsInt().value(), 3);
  EXPECT_DOUBLE_EQ(rs2->at(0, 1).AsDouble().value(), 8.0);
  EXPECT_NEAR(rs2->at(0, 2).AsDouble().value(), 8.0 / 3.0, 1e-12);
  // Three-valued logic: NULL OR TRUE is TRUE, NULL AND TRUE is NULL.
  auto rs3 = Exec(*db_, 
      "SELECT COUNT(*) FROM t WHERE a = 1 OR b > 0");
  ASSERT_TRUE(rs3.ok()) << rs3.status();
  EXPECT_EQ(rs3->at(0, 0).AsInt().value(), 3);
}

TEST_F(ExecTest, NullJoinKeysNeverMatch) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE n1 (k INTEGER); "
                              "CREATE TABLE n2 (k INTEGER); "
                              "INSERT INTO n1 VALUES (1), (NULL); "
                              "INSERT INTO n2 VALUES (1), (NULL)")
                  .ok());
  auto rs =
      Exec(*db_, "SELECT COUNT(*) FROM n1, n2 WHERE n1.k = n2.k");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 1);
}

TEST_F(ExecTest, TwoPhaseAggregationShufflesPartialStates) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE t (g INTEGER, v DOUBLE)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back({Value::Int(i % 10), Value::Double(1.0)});
  }
  ASSERT_TRUE(db_->BulkInsert("t", std::move(rows)).ok());
  auto rs = Exec(*db_, "SELECT g, SUM(v) FROM t GROUP BY g");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 10u);
  // The shuffle moved partial states (at most groups x workers), not
  // the thousand input rows.
  for (const auto& op : db_->last_metrics().operators) {
    if (op.name == "Aggregate(final)") {
      EXPECT_LE(op.rows_shuffled, 10u * 4u);
      EXPECT_GT(op.rows_shuffled, 0u);
    }
  }
}

TEST_F(ExecTest, SortStabilityAndDirections) {
  ASSERT_TRUE(Exec(*db_, 
                    "CREATE TABLE t (a INTEGER, b STRING); "
                    "INSERT INTO t VALUES (2, 'x'), (1, 'y'), (2, 'a'), "
                    "(1, 'b')")
                  .ok());
  auto rs = Exec(*db_, "SELECT a, b FROM t ORDER BY a DESC, b");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 4u);
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 2);
  EXPECT_EQ(rs->at(0, 1).string_value(), "a");
  EXPECT_EQ(rs->at(1, 1).string_value(), "x");
  EXPECT_EQ(rs->at(2, 0).AsInt().value(), 1);
  EXPECT_EQ(rs->at(2, 1).string_value(), "b");
}

TEST_F(ExecTest, LimitEdgeCases) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE t (a INTEGER); "
                              "INSERT INTO t VALUES (1), (2), (3)")
                  .ok());
  auto rs = Exec(*db_, "SELECT a FROM t LIMIT 0");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 0u);
  auto rs2 = Exec(*db_, "SELECT a FROM t LIMIT 99");
  ASSERT_TRUE(rs2.ok());
  EXPECT_EQ(rs2->num_rows(), 3u);
  auto rs3 = Exec(*db_, "SELECT a FROM t ORDER BY a DESC LIMIT 1");
  ASSERT_TRUE(rs3.ok());
  ASSERT_EQ(rs3->num_rows(), 1u);
  EXPECT_EQ(rs3->at(0, 0).AsInt().value(), 3);
}

TEST_F(ExecTest, DistinctOnLaValues) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE v (vec VECTOR[2])").ok());
  la::Vector a(std::vector<double>{1, 2});
  la::Vector b(std::vector<double>{3, 4});
  ASSERT_TRUE(db_->BulkInsert("v", {{Value::FromVector(a)},
                                    {Value::FromVector(b)},
                                    {Value::FromVector(a)}})
                  .ok());
  auto rs = Exec(*db_, "SELECT DISTINCT vec FROM v");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 2u);
}

TEST_F(ExecTest, CrossJoinOfEmptyInput) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE e (a INTEGER); "
                              "CREATE TABLE f (b INTEGER); "
                              "INSERT INTO f VALUES (1)")
                  .ok());
  auto rs = Exec(*db_, "SELECT COUNT(*) FROM e, f");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).AsInt().value(), 0);
}

TEST_F(ExecTest, MetricsSkewAndSimulatedTime) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE t (a INTEGER)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 400; ++i) rows.push_back({Value::Int(i)});
  ASSERT_TRUE(db_->BulkInsert("t", std::move(rows)).ok());
  ASSERT_TRUE(Exec(*db_, "SELECT SUM(a) FROM t").ok());
  const QueryMetrics& m = db_->last_metrics();
  EXPECT_GT(m.operators.size(), 0u);
  EXPECT_GE(m.wall_seconds, m.SimulatedParallelSeconds() * 0.0);
  for (const auto& op : m.operators) {
    EXPECT_GE(op.Skew(), 1.0 - 1e-9) << op.name;
    EXPECT_EQ(op.worker_seconds.size(), 4u);
  }
}

TEST_F(ExecTest, RuntimeErrorsCarryOperatorContext) {
  // Division by zero inside a projection aborts the query cleanly.
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE t (a INTEGER); "
                              "INSERT INTO t VALUES (0), (1)")
                  .ok());
  auto rs = Exec(*db_, "SELECT 10 / a FROM t");
  EXPECT_EQ(rs.status().code(), StatusCode::kNumericError);
}

TEST(OperatorMetricsTest, SkewMath) {
  OperatorMetrics m;
  m.worker_seconds = {1.0, 1.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(m.TotalSeconds(), 8.0);
  EXPECT_DOUBLE_EQ(m.MaxWorkerSeconds(), 5.0);
  EXPECT_DOUBLE_EQ(m.Skew(), 5.0 / 2.0);
  OperatorMetrics idle;
  idle.worker_seconds = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(idle.Skew(), 1.0);
}

TEST(QueryMetricsTest, AggregationAcrossOperators) {
  QueryMetrics q;
  OperatorMetrics a;
  a.name = "HashJoin(shuffle)";
  a.worker_seconds = {1.0, 3.0};
  a.bytes_shuffled = 100;
  a.rows_out = 5;
  OperatorMetrics b;
  b.name = "Aggregate(final)";
  b.worker_seconds = {2.0, 2.0};
  b.bytes_shuffled = 50;
  b.rows_out = 2;
  q.operators = {a, b};
  EXPECT_DOUBLE_EQ(q.SimulatedParallelSeconds(), 5.0);
  EXPECT_EQ(q.TotalBytesShuffled(), 150u);
  EXPECT_EQ(q.TotalRowsProcessed(), 7u);
  EXPECT_DOUBLE_EQ(q.SecondsForOperatorsContaining("Join"), 4.0);
  EXPECT_DOUBLE_EQ(q.SecondsForOperatorsContaining("Aggregate"), 4.0);
  EXPECT_NE(q.ToString().find("HashJoin"), std::string::npos);
}

// --- thread-count determinism ----------------------------------------

/// Runs a full workload — scans, filters, shuffle and broadcast
/// joins, two-phase group-by aggregation, DISTINCT, ORDER BY, and a
/// vector-coded Gram computation — on a database with the given
/// thread count and returns every result set.
std::vector<ResultSet> RunWorkloadWithThreads(size_t num_threads) {
  Database::Config config;
  config.num_workers = 4;
  config.num_threads = num_threads;
  Database db(config);
  EXPECT_TRUE(Exec(db, "CREATE TABLE points (id INTEGER, grp INTEGER, "
                            "val DOUBLE, vec VECTOR[8]); "
                            "CREATE TABLE labels (grp INTEGER, bonus DOUBLE)")
                  .ok());
  std::vector<Row> point_rows;
  for (int i = 0; i < 600; ++i) {
    la::Vector v(8);
    for (size_t c = 0; c < 8; ++c) {
      v[c] = static_cast<double>((i * 31 + static_cast<int>(c) * 7) % 97) / 9.0;
    }
    point_rows.push_back({Value::Int(i), Value::Int(i % 23),
                          Value::Double(static_cast<double>(i % 41) / 3.0),
                          Value::FromVector(std::move(v))});
  }
  EXPECT_TRUE(db.BulkInsert("points", std::move(point_rows)).ok());
  std::vector<Row> label_rows;
  for (int g = 0; g < 23; ++g) {
    label_rows.push_back({Value::Int(g), Value::Double(g * 1.5)});
  }
  EXPECT_TRUE(db.BulkInsert("labels", std::move(label_rows)).ok());

  const std::vector<std::string> queries = {
      "SELECT grp, COUNT(*), SUM(val), AVG(val) FROM points GROUP BY grp",
      "SELECT points.id, labels.bonus FROM points, labels "
      "WHERE points.grp = labels.grp AND points.val > 5.0",
      "SELECT DISTINCT grp FROM points WHERE id < 400",
      "SELECT id, val FROM points ORDER BY val DESC, id LIMIT 50",
      "SELECT SUM(outer_product(vec, vec)) FROM points",
      "SELECT grp, SUM(outer_product(vec, vec)) FROM points GROUP BY grp",
  };
  std::vector<ResultSet> results;
  for (const std::string& q : queries) {
    auto rs = Exec(db, q);
    EXPECT_TRUE(rs.ok()) << q << ": " << rs.status();
    results.push_back(rs.ok() ? std::move(*rs) : ResultSet{});
  }
  return results;
}

TEST(ExecDeterminismTest, ResultsIdenticalAtOneAndEightThreads) {
  const std::vector<ResultSet> seq = RunWorkloadWithThreads(1);
  const std::vector<ResultSet> par = RunWorkloadWithThreads(8);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t q = 0; q < seq.size(); ++q) {
    ASSERT_EQ(seq[q].num_rows(), par[q].num_rows()) << "query " << q;
    ASSERT_EQ(seq[q].num_columns(), par[q].num_columns()) << "query " << q;
    for (size_t r = 0; r < seq[q].num_rows(); ++r) {
      for (size_t c = 0; c < seq[q].num_columns(); ++c) {
        // Deep bit-exact equality, including row order: the parallel
        // runtime must be invisible in every result.
        EXPECT_TRUE(seq[q].at(r, c).Equals(par[q].at(r, c)))
            << "query " << q << " row " << r << " col " << c << ": "
            << seq[q].at(r, c).ToString() << " vs "
            << par[q].at(r, c).ToString();
      }
    }
  }
}

TEST(ExecDeterminismTest, ShuffleAccountingMatchesAcrossThreadCounts) {
  // Shuffle accounting is summed from per-worker tallies when
  // parallel; totals must equal the sequential run's exactly.
  std::vector<std::pair<size_t, size_t>> totals;  // (rows, bytes) per run
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    Database::Config config;
    config.num_workers = 4;
    config.num_threads = threads;
    Database db(config);
    ASSERT_TRUE(Exec(db, "CREATE TABLE t (k INTEGER, v DOUBLE)").ok());
    std::vector<Row> rows;
    for (int i = 0; i < 800; ++i) {
      rows.push_back({Value::Int(i % 50), Value::Double(i)});
    }
    ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());
    auto rs = Exec(db, "SELECT k, SUM(v) FROM t GROUP BY k");
    ASSERT_TRUE(rs.ok()) << rs.status();
    EXPECT_EQ(rs->num_rows(), 50u);
    size_t rows_shuffled = 0;
    size_t bytes_shuffled = 0;
    for (const auto& op : db.last_metrics().operators) {
      rows_shuffled += op.rows_shuffled;
      bytes_shuffled += op.bytes_shuffled;
    }
    EXPECT_GT(rows_shuffled, 0u);
    totals.emplace_back(rows_shuffled, bytes_shuffled);
  }
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0], totals[1]);
}

}  // namespace
}  // namespace radb
