#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"

#include "test_util.h"
#include "common/thread_pool.h"
#include "mem/spill_file.h"
#include "obs/metrics_registry.h"
#include "service/admission.h"
#include "service/session.h"
#include "storage/serialize.h"

namespace radb {
namespace {

using service::AdmissionConfig;
using service::AdmissionController;
using service::ServiceConfig;
using service::Session;
using service::SessionManager;

std::string Fingerprint(const ResultSet& rs) {
  std::ostringstream os(std::ios::binary);
  for (const Row& row : rs.rows) WriteRowBinary(os, row);
  return os.str();
}

// ----------------------------------------------------------------------
// AdmissionController: concurrency gate, FIFO queue, budget, timeout.
// ----------------------------------------------------------------------

TEST(AdmissionTest, ImmediateAdmissionWhenIdle) {
  AdmissionConfig cfg;
  cfg.max_concurrent_queries = 2;
  AdmissionController ac(cfg);
  double wait = -1.0;
  auto slot = ac.Admit(0, nullptr, &wait);
  ASSERT_TRUE(slot.ok()) << slot.status();
  EXPECT_TRUE(slot->admitted());
  EXPECT_EQ(wait, 0.0);
  EXPECT_EQ(ac.running(), 1u);
  slot->Release();
  EXPECT_EQ(ac.running(), 0u);
}

TEST(AdmissionTest, ConcurrencyCapBlocksUntilRelease) {
  AdmissionConfig cfg;
  cfg.max_concurrent_queries = 1;
  AdmissionController ac(cfg);
  auto first = ac.Admit(0, nullptr);
  ASSERT_TRUE(first.ok());

  std::atomic<bool> second_admitted{false};
  std::thread waiter([&] {
    double wait = 0.0;
    auto second = ac.Admit(0, nullptr, &wait);
    ASSERT_TRUE(second.ok()) << second.status();
    EXPECT_GT(wait, 0.0);
    second_admitted.store(true);
  });
  // The waiter must actually queue before we release.
  while (ac.queued() == 0) std::this_thread::yield();
  EXPECT_FALSE(second_admitted.load());
  first->Release();
  waiter.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_EQ(ac.running(), 0u);
}

TEST(AdmissionTest, GlobalMemoryBudgetGatesClaims) {
  AdmissionConfig cfg;
  cfg.max_concurrent_queries = 8;
  cfg.global_memory_budget_bytes = 100;
  cfg.queue_timeout_ms = 50;
  AdmissionController ac(cfg);
  auto a = ac.Admit(60, nullptr);
  ASSERT_TRUE(a.ok());
  auto b = ac.Admit(40, nullptr);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ac.claimed_bytes(), 100u);
  // No budget headroom left: the third claim times out.
  auto c = ac.Admit(1, nullptr);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted) << c.status();
  // Release frees headroom; the same claim is admitted immediately.
  a->Release();
  auto d = ac.Admit(1, nullptr);
  EXPECT_TRUE(d.ok()) << d.status();
}

TEST(AdmissionTest, OversizedClaimIsClampedToGlobalBudget) {
  AdmissionConfig cfg;
  cfg.global_memory_budget_bytes = 100;
  AdmissionController ac(cfg);
  // A query claiming more than the whole budget still runs (alone).
  auto slot = ac.Admit(1000, nullptr);
  ASSERT_TRUE(slot.ok()) << slot.status();
  EXPECT_EQ(slot->claim_bytes(), 100u);
}

TEST(AdmissionTest, QueueFullRejectsImmediately) {
  AdmissionConfig cfg;
  cfg.max_concurrent_queries = 1;
  cfg.max_queue_length = 0;  // no waiting at all
  AdmissionController ac(cfg);
  auto slot = ac.Admit(0, nullptr);
  ASSERT_TRUE(slot.ok());
  auto rejected = ac.Admit(0, nullptr);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, CancelWhileQueuedReturnsCancelled) {
  AdmissionConfig cfg;
  cfg.max_concurrent_queries = 1;
  AdmissionController ac(cfg);
  auto slot = ac.Admit(0, nullptr);
  ASSERT_TRUE(slot.ok());

  CancellationToken token;
  std::thread canceller([&] {
    while (ac.queued() == 0) std::this_thread::yield();
    token.Cancel();
  });
  auto waiting = ac.Admit(0, &token);
  canceller.join();
  ASSERT_FALSE(waiting.ok());
  EXPECT_EQ(waiting.status().code(), StatusCode::kCancelled)
      << waiting.status();
  // The cancelled waiter left the queue.
  EXPECT_EQ(ac.queued(), 0u);
}

TEST(AdmissionTest, DeadlineExpiringWhileQueuedReturnsDeadlineExceeded) {
  AdmissionConfig cfg;
  cfg.max_concurrent_queries = 1;
  cfg.queue_timeout_ms = 60000;  // the DEADLINE must fire, not this
  AdmissionController ac(cfg);
  auto slot = ac.Admit(0, nullptr);
  ASSERT_TRUE(slot.ok());

  CancellationToken token;
  token.ArmDeadlineMs(30);
  auto waiting = ac.Admit(0, &token);
  ASSERT_FALSE(waiting.ok());
  EXPECT_EQ(waiting.status().code(), StatusCode::kDeadlineExceeded)
      << waiting.status();
  EXPECT_EQ(ac.queued(), 0u);
}

TEST(AdmissionTest, FifoOrderIsPreserved) {
  AdmissionConfig cfg;
  cfg.max_concurrent_queries = 1;
  AdmissionController ac(cfg);
  auto gate = ac.Admit(0, nullptr);
  ASSERT_TRUE(gate.ok());

  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      auto slot = ac.Admit(0, nullptr);
      ASSERT_TRUE(slot.ok());
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(i);
      }
      slot->Release();
    });
    // Serialize arrival so queue order equals thread index.
    while (ac.queued() != static_cast<size_t>(i + 1)) {
      std::this_thread::yield();
    }
  }
  gate->Release();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// ----------------------------------------------------------------------
// SpillFile naming: query-id tag + process-wide sequence (satellite
// regression for concurrent queries sharing one spill_dir).
// ----------------------------------------------------------------------

TEST(SpillNamingTest, TaggedSpillFilesGetDistinctAttributablePaths) {
  mem::SpillFile a, b, c;
  ASSERT_TRUE(a.Create("", "q7").ok());
  ASSERT_TRUE(b.Create("", "q7").ok());
  ASSERT_TRUE(c.Create("", "q8-tiles").ok());
  EXPECT_NE(a.path(), b.path());  // same query, distinct sequence
  EXPECT_NE(a.path(), c.path());
  EXPECT_NE(a.path().find("radb-spill-q7-"), std::string::npos) << a.path();
  EXPECT_NE(c.path().find("radb-spill-q8-tiles-"), std::string::npos)
      << c.path();
  // Untagged files keep working (standalone queries).
  mem::SpillFile plain;
  ASSERT_TRUE(plain.Create().ok());
  EXPECT_NE(plain.path().find("radb-spill-"), std::string::npos);
}

// ----------------------------------------------------------------------
// Scoped global installs: two Databases may live at once and be
// destroyed in any order without stomping each other's process
// globals (satellite regression).
// ----------------------------------------------------------------------

TEST(GlobalInstallTest, TwoDatabasesDestroyedOutOfLifoOrderStaySafe) {
  Database::Config cfg;
  cfg.obs.enable_metrics = true;
  auto first = std::make_unique<Database>(cfg);
  auto second = std::make_unique<Database>(cfg);
  // Newest install wins while both live.
  EXPECT_EQ(obs::GlobalMetrics(), second->metrics_registry());
  EXPECT_EQ(GlobalPool(), second->pool());
  // Destroy the OLDER one first — the newer installs must survive
  // (the old save/restore scheme would have resurrected a stale
  // pointer here on the NEXT destruction).
  first.reset();
  EXPECT_EQ(obs::GlobalMetrics(), second->metrics_registry());
  EXPECT_EQ(GlobalPool(), second->pool());
  // And queries still run on the survivor.
  ASSERT_TRUE(Exec(*second, "CREATE TABLE t (k INTEGER)").ok());
  ASSERT_TRUE(Exec(*second, "INSERT INTO t VALUES (1), (2)").ok());
  auto rs = Exec(*second, "SELECT SUM(k) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).int_value(), 3);
  second.reset();
  EXPECT_EQ(obs::GlobalMetrics(), nullptr);
  EXPECT_EQ(GlobalPool(), nullptr);
}

// ----------------------------------------------------------------------
// Sessions on one Database.
// ----------------------------------------------------------------------

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Config cfg;
    cfg.obs.enable_metrics = true;
    db_ = std::make_unique<Database>(cfg);
    ASSERT_TRUE(
        Exec(*db_, "CREATE TABLE pts (k INTEGER, x DOUBLE)").ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 5000; ++i) {
      rows.push_back({Value::Int(i % 50), Value::Double(0.25 * (i % 97))});
    }
    ASSERT_TRUE(db_->BulkInsert("pts", std::move(rows)).ok());
    manager_ = std::make_unique<SessionManager>(db_.get());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SessionManager> manager_;
};

TEST_F(SessionTest, ConcurrentSessionsMatchSerialBitForBit) {
  const std::vector<std::string> queries = {
      "SELECT k, SUM(x), COUNT(*) FROM pts GROUP BY k ORDER BY k",
      "SELECT COUNT(*) FROM pts WHERE x > 10.0",
      "SELECT a.k, COUNT(*) FROM pts a, pts b "
      "WHERE a.k = b.k AND a.k < 5 GROUP BY a.k ORDER BY a.k",
  };
  // Serial reference, straight through the Database.
  std::vector<std::string> want;
  for (const auto& q : queries) {
    auto ref = Exec(*db_, q);
    ASSERT_TRUE(ref.ok()) << ref.status();
    want.push_back(Fingerprint(*ref));
  }

  constexpr int kSessions = 8;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(manager_->CreateSession());
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      for (size_t q = 0; q < queries.size(); ++q) {
        auto got = sessions[s]->Execute(queries[(s + q) % queries.size()]);
        if (!got.ok() || !got->has_results() ||
            Fingerprint(got->last()) != want[(s + q) % queries.size()]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Service accounting drained cleanly.
  EXPECT_EQ(manager_->admission().running(), 0u);
  EXPECT_EQ(manager_->admission().claimed_bytes(), 0u);
  EXPECT_EQ(manager_->admission().global_tracker()->bytes_in_use(), 0u);
}

TEST_F(SessionTest, DdlAndReadersInterleaveSafely) {
  auto writer = manager_->CreateSession();
  auto reader = manager_->CreateSession();
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::thread reads([&] {
    while (!stop.load()) {
      auto rs = reader->Execute("SELECT COUNT(*) FROM pts");
      if (!rs.ok()) reader_errors.fetch_add(1);
    }
  });
  for (int i = 0; i < 10; ++i) {
    auto ddl = writer->Execute(
        "CREATE TABLE scratch (v INTEGER);"
        "INSERT INTO scratch VALUES (1), (2), (3);"
        "DROP TABLE scratch");
    ASSERT_TRUE(ddl.ok()) << ddl.status();
  }
  stop.store(true);
  reads.join();
  EXPECT_EQ(reader_errors.load(), 0);
}

TEST_F(SessionTest, PreCancelWinsTheRaceAgainstExecute) {
  auto session = manager_->CreateSession();
  // Cancel the NEXT query before submitting it: the token is
  // pre-armed, so Execute observes Cancelled before running anything.
  session->Cancel(session->next_query_seq());
  uint64_t seq = 0;
  auto got = session->Execute("SELECT COUNT(*) FROM pts", &seq);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << got.status();
  EXPECT_EQ(seq, 1u);
  // The session is not poisoned: the following query runs normally.
  auto next = session->Execute("SELECT COUNT(*) FROM pts");
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_EQ(next->last().at(0, 0).int_value(), 5000);
}

TEST_F(SessionTest, ServiceMetricsAndPercentilesAreExported) {
  auto session = manager_->CreateSession();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(session->Execute("SELECT COUNT(*) FROM pts").ok());
  }
  session->Cancel(session->next_query_seq());
  EXPECT_FALSE(session->Execute("SELECT COUNT(*) FROM pts").ok());

  obs::MetricsRegistry* metrics = db_->metrics_registry();
  ASSERT_NE(metrics, nullptr);
  // Only the first SELECT goes through admission: the four repeats are
  // whole-script result-cache hits served by the pre-admission fast
  // path (they still land in service.query_seconds below).
  EXPECT_EQ(metrics->counter("service.queries_admitted")->value(), 1u);
  EXPECT_EQ(metrics->counter("cache.result_hits")->value(), 4u);
  EXPECT_EQ(metrics->counter("service.queries_cancelled")->value(), 1u);
  EXPECT_EQ(metrics->counter("service.queries_rejected")->value(), 0u);
  EXPECT_EQ(metrics->histogram("service.query_seconds")->count(), 6u);
  // Percentiles are live on the histogram and present in the export.
  EXPECT_GT(metrics->histogram("service.query_seconds")->Percentile(0.5),
            0.0);
  const std::string json = metrics->ToJson();
  EXPECT_NE(json.find("service.query_seconds"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(SessionTest, PerCallDeadlineRejectsLongQueued) {
  // One-slot service: a held slot forces the second query to queue,
  // where its 30 ms deadline expires.
  ServiceConfig cfg;
  cfg.admission.max_concurrent_queries = 1;
  SessionManager tight(db_.get(), cfg);
  auto blocker_session = tight.CreateSession();
  auto victim_session = tight.CreateSession();

  std::atomic<bool> blocker_started{false};
  std::thread blocker([&] {
    // A ~5M-pair cross join: heavy enough to hold the slot well past
    // the victim's 30 ms deadline, small enough to finish promptly.
    blocker_started.store(true);
    auto rs = blocker_session->Execute(
        "SELECT a.k, COUNT(*) FROM pts a, pts b WHERE a.k < 10 GROUP BY a.k");
    EXPECT_TRUE(rs.ok()) << rs.status();
  });
  while (!blocker_started.load() || tight.admission().running() == 0) {
    std::this_thread::yield();
  }
  QueryOptions opts;
  opts.deadline_ms = 30;
  auto got = victim_session->Execute("SELECT COUNT(*) FROM pts", opts);
  blocker.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
      << got.status();
}

// ----------------------------------------------------------------------
// Two budgeted queries spilling side by side (satellite regression:
// per-query spill-file attribution under a shared spill_dir).
// ----------------------------------------------------------------------

TEST(ConcurrentSpillTest, TwoBudgetedQueriesSpillSideBySideBitIdentical) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE big (k INTEGER, pad STRING)").ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 4000; ++i) {
    rows.push_back(
        {Value::Int(i), Value::String(std::string(100, 'a' + (i % 26)))});
  }
  ASSERT_TRUE(db.BulkInsert("big", std::move(rows)).ok());

  const std::string sql =
      "SELECT a.k, a.pad, b.pad FROM big a, big b WHERE a.k = b.k";
  auto ref = Exec(db, sql);
  ASSERT_TRUE(ref.ok()) << ref.status();
  const std::string want = Fingerprint(*ref);

  // Both sessions run the join under a 64 KB budget at the same time,
  // spilling into the same directory; tagged file names keep their
  // runs apart and both results stay bit-identical.
  ServiceConfig cfg;
  cfg.default_options.memory_budget_bytes = 64u << 10;
  SessionManager manager(&db, cfg);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&] {
      auto session = manager.CreateSession();
      auto got = session->Execute(sql);
      if (!got.ok() || !got->has_results() ||
          Fingerprint(got->last()) != want) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager.admission().global_tracker()->bytes_in_use(), 0u);
}

}  // namespace
}  // namespace radb
