#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"

#include "test_util.h"
#include "common/rng.h"
#include "la/random.h"
#include "la/tiled.h"
#include "mem/memory_tracker.h"
#include "storage/serialize.h"

namespace radb {
namespace {

/// Binary fingerprint of a result set — byte-exact row comparison,
/// including FP bit patterns and row order.
std::string Fingerprint(const ResultSet& rs) {
  std::ostringstream os(std::ios::binary);
  for (const Row& row : rs.rows) WriteRowBinary(os, row);
  return os.str();
}

constexpr size_t kTinyBudget = 64u << 10;
constexpr size_t kSmallBudget = 256u << 10;

/// Every suite here reruns the same SQL under a tight budget to drive
/// the spill paths. With the result cache on, the rerun can be served
/// from the unbudgeted reference fill and never execute — so these
/// databases run with it off.
Database::Config SpillConfig() {
  Database::Config config;
  config.cache.enable_result_cache = false;
  return config;
}

// ----------------------------------------------------------------------
// Join build spill (Grace-hash partitions).
// ----------------------------------------------------------------------

class SpillJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(SpillConfig());
    ASSERT_TRUE(Exec(*db_, "CREATE TABLE lhs (k INTEGER, pad STRING)")
                    .ok());
    ASSERT_TRUE(Exec(*db_, "CREATE TABLE rhs (k INTEGER, pad STRING)")
                    .ok());
    // ~470 KB per side: far over the 64 KB budget, so the shuffle-hash
    // join's per-worker build always misses TryReserve and takes the
    // Grace partition-spill path.
    std::vector<Row> l, r;
    for (int64_t i = 0; i < 4000; ++i) {
      l.push_back({Value::Int(i),
                   Value::String(std::string(100, 'a' + (i % 26)))});
      r.push_back({Value::Int(i),
                   Value::String(std::string(100, 'A' + (i % 26)))});
    }
    ASSERT_TRUE(db_->BulkInsert("lhs", std::move(l)).ok());
    ASSERT_TRUE(db_->BulkInsert("rhs", std::move(r)).ok());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SpillJoinTest, GraceSpillIsBitIdenticalAt1And8Threads) {
  const std::string sql =
      "SELECT lhs.k, lhs.pad, rhs.pad FROM lhs, rhs WHERE lhs.k = rhs.k";
  auto ref = Exec(*db_, sql);
  ASSERT_TRUE(ref.ok()) << ref.status();
  ASSERT_EQ(ref->num_rows(), 4000u);
  const std::string want = Fingerprint(*ref);
  for (size_t threads : {size_t{1}, size_t{8}}) {
    auto got = db_->Execute(sql, QueryOptions{
                                     .memory_budget_bytes = kTinyBudget,
                                     .num_threads_override = threads,
                                 });
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got->has_results());
    EXPECT_EQ(Fingerprint(got->last()), want) << "threads=" << threads;
    EXPECT_GT(db_->last_spill_bytes(), 0u) << "threads=" << threads;
    // The tracked peak respects the budget (replay windows and single
    // oversized items may overshoot it slightly, never unboundedly).
    EXPECT_LT(db_->last_peak_memory_bytes(), 2 * kTinyBudget);
  }
}

// ----------------------------------------------------------------------
// Aggregation state spill (multi-pass admission overflow).
// ----------------------------------------------------------------------

class SpillAggTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(SpillConfig());
    ASSERT_TRUE(
        Exec(*db_, "CREATE TABLE pts (k INTEGER, x DOUBLE)").ok());
    // 100 groups of accumulator state fit the 256 KB budget even with
    // per-worker phase-1 partials (8 workers x 100 groups x ~190 B
    // each, about 150 KB) — group state is unspillable, so it must.
    // The 30000 input rows (~540 KB) do not: the scan and shuffle
    // buffers spill and the aggregate streams them back from disk.
    Rng rng(20170419);
    std::vector<Row> rows;
    for (int64_t i = 0; i < 30000; ++i) {
      rows.push_back({Value::Int(i / 300), Value::Double(rng.NextDouble())});
    }
    ASSERT_TRUE(db_->BulkInsert("pts", std::move(rows)).ok());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SpillAggTest, AggregationOverSpilledInputIsBitIdenticalAt1And8Threads) {
  const std::string sql =
      "SELECT k, SUM(x), COUNT(*) FROM pts GROUP BY k ORDER BY k";
  auto ref = Exec(*db_, sql);
  ASSERT_TRUE(ref.ok()) << ref.status();
  ASSERT_EQ(ref->num_rows(), 100u);
  const std::string want = Fingerprint(*ref);
  for (size_t threads : {size_t{1}, size_t{8}}) {
    auto got = db_->Execute(sql, QueryOptions{
                                     .memory_budget_bytes = kSmallBudget,
                                     .num_threads_override = threads,
                                 });
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got->has_results());
    EXPECT_EQ(Fingerprint(got->last()), want) << "threads=" << threads;
    EXPECT_GT(db_->last_spill_bytes(), 0u) << "threads=" << threads;
  }
}

// ----------------------------------------------------------------------
// The §3.4 tiled-multiply SQL path under the 16 MB acceptance budget.
// ----------------------------------------------------------------------

TEST(TiledSqlTest, SixteenMbBudgetSpillsAndStaysBitIdentical) {
  // 16x16 grids of 25x25 tiles (400x400 matrices). The join emits
  // 16^3 product tiles (~20 MB) through the shuffle — over budget, so
  // those buffers spill — while the aggregate's unspillable state is
  // 16^2 groups seen by up to 8 workers (~10 MB), which must fit.
  constexpr size_t kGrid = 16;
  constexpr size_t kTile = 25;
  Database db(SpillConfig());
  ASSERT_TRUE(Exec(db, "CREATE TABLE lhs (tileRow INTEGER, "
                            "tileCol INTEGER, mat MATRIX[25][25])")
                  .ok());
  ASSERT_TRUE(Exec(db, "CREATE TABLE rhs (tileRow INTEGER, "
                            "tileCol INTEGER, mat MATRIX[25][25])")
                  .ok());
  Rng rng(20170419);
  std::vector<Row> l, r;
  for (size_t i = 0; i < kGrid; ++i) {
    for (size_t j = 0; j < kGrid; ++j) {
      l.push_back({Value::Int(static_cast<int64_t>(i)),
                   Value::Int(static_cast<int64_t>(j)),
                   Value::FromMatrix(la::RandomMatrix(rng, kTile, kTile))});
      r.push_back({Value::Int(static_cast<int64_t>(i)),
                   Value::Int(static_cast<int64_t>(j)),
                   Value::FromMatrix(la::RandomMatrix(rng, kTile, kTile))});
    }
  }
  ASSERT_TRUE(db.BulkInsert("lhs", std::move(l)).ok());
  ASSERT_TRUE(db.BulkInsert("rhs", std::move(r)).ok());

  const std::string sql =
      "SELECT lhs.tileRow, rhs.tileCol, "
      "SUM(matrix_multiply(lhs.mat, rhs.mat)) "
      "FROM lhs, rhs WHERE lhs.tileCol = rhs.tileRow "
      "GROUP BY lhs.tileRow, rhs.tileCol "
      "ORDER BY lhs.tileRow, rhs.tileCol";
  auto ref = Exec(db, sql);
  ASSERT_TRUE(ref.ok()) << ref.status();
  ASSERT_EQ(ref->num_rows(), kGrid * kGrid);
  const std::string want = Fingerprint(*ref);
  for (size_t threads : {size_t{1}, size_t{8}}) {
    auto got = db.Execute(sql, QueryOptions{
                                   .memory_budget_bytes = 16u << 20,
                                   .num_threads_override = threads,
                               });
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got->has_results());
    EXPECT_EQ(Fingerprint(got->last()), want) << "threads=" << threads;
    EXPECT_GT(db.last_spill_bytes(), 0u) << "threads=" << threads;
  }
}

// ----------------------------------------------------------------------
// Tiled-matrix intermediates (LRU tile eviction).
// ----------------------------------------------------------------------

TEST(TileEvictionTest, BudgetedTiledMultiplyIsBitIdentical) {
  Rng rng(7);
  la::Matrix a = la::RandomMatrix(rng, 64, 64);
  la::Matrix b = la::RandomMatrix(rng, 64, 64);
  const auto ta = la::SplitIntoTiles(a, 16, 16);
  const auto tb = la::SplitIntoTiles(b, 16, 16);
  auto ref_tiles = la::TiledMultiply(ta, tb);
  ASSERT_TRUE(ref_tiles.ok());
  auto ref = la::AssembleTiles(*ref_tiles);
  ASSERT_TRUE(ref.ok());

  // 16 accumulator tiles of 2 KB each want 32 KB; an 8 KB budget
  // forces LRU evictions to disk and bit-exact reloads.
  mem::MemoryTracker tracker("query", 8u << 10);
  la::TiledOptions options;
  options.tracker = &tracker;
  auto got_tiles = la::TiledMultiply(ta, tb, options);
  ASSERT_TRUE(got_tiles.ok()) << got_tiles.status();
  auto got = la::AssembleTiles(*got_tiles);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->MaxAbsDiff(*ref), 0.0);
  EXPECT_GT(tracker.spill_bytes(), 0u);
  EXPECT_EQ(tracker.bytes_in_use(), 0u);  // everything handed back
}

// ----------------------------------------------------------------------
// Unspillable over-budget state fails the query, not the Database.
// ----------------------------------------------------------------------

TEST(ResourceExhaustedTest, FailedQueryDoesNotPoisonTheDatabase) {
  Database db(SpillConfig());
  ASSERT_TRUE(Exec(db, "CREATE TABLE t (k INTEGER, pad STRING)").ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 4000; ++i) {
    rows.push_back({Value::Int(i),
                    Value::String(std::string(200, 'x'))});
  }
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());

  // ORDER BY gathers everything in memory (~830 KB) — unspillable,
  // and far over a 64 KB budget.
  auto sorted = db.Execute("SELECT k, pad FROM t ORDER BY k",
                           QueryOptions{.memory_budget_bytes = kTinyBudget});
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.status().code(), StatusCode::kResourceExhausted)
      << sorted.status();

  // The same Database keeps answering: unbudgeted...
  auto count = Exec(db, "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->at(0, 0).int_value(), 4000);
  // ...and under the same tight budget, when the query can spill.
  auto filtered =
      db.Execute("SELECT k FROM t WHERE k < 10",
                 QueryOptions{.memory_budget_bytes = kTinyBudget});
  ASSERT_TRUE(filtered.ok()) << filtered.status();
  EXPECT_EQ(filtered->last().num_rows(), 10u);
}

// ----------------------------------------------------------------------
// Redesigned API: ScriptResult and safe ResultSet accessors.
// ----------------------------------------------------------------------

TEST(ScriptResultTest, CarriesAllSelectResultsAndPerStatementStats) {
  Database db(SpillConfig());
  auto script = db.Execute(
      "CREATE TABLE s (k INTEGER);"
      "INSERT INTO s VALUES (1), (2), (3);"
      "SELECT k FROM s ORDER BY k;"
      "SELECT SUM(k) FROM s");
  ASSERT_TRUE(script.ok()) << script.status();
  ASSERT_EQ(script->statements.size(), 4u);
  // Both SELECTs are kept, in script order — not just the last one.
  ASSERT_EQ(script->result_sets.size(), 2u);
  ASSERT_EQ(script->result_sets[0].num_rows(), 3u);
  EXPECT_EQ(script->result_sets[0].at(0, 0).int_value(), 1);
  EXPECT_EQ(script->last().at(0, 0).int_value(), 6);
  EXPECT_EQ(script->statements[2].rows, 3u);
  EXPECT_EQ(script->statements[3].rows, 1u);
  for (const QueryStats& stats : script->statements) {
    EXPECT_GE(stats.wall_seconds, 0.0);
  }
}

TEST(ResultSetAccessorTest, GetAndColumnIndexAreBoundsChecked) {
  Database db(SpillConfig());
  ASSERT_TRUE(Exec(db, "CREATE TABLE s (k INTEGER, name STRING)").ok());
  ASSERT_TRUE(Exec(db, "INSERT INTO s VALUES (7, 'seven')").ok());
  auto rs = Exec(db, "SELECT k, name FROM s");
  ASSERT_TRUE(rs.ok()) << rs.status();

  auto cell = rs->Get(0, 1);
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(cell->string_value(), "seven");
  EXPECT_FALSE(rs->Get(1, 0).ok());  // row out of range
  EXPECT_FALSE(rs->Get(0, 2).ok());  // column out of range
  EXPECT_EQ(rs->Get(5, 9).status().code(), StatusCode::kInvalidArgument);

  auto idx = rs->ColumnIndex("name");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  auto missing = rs->ColumnIndex("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace radb
