// Plan/result cache behavior: hit/miss accounting, invalidation on
// DDL and DML, prepared-statement rebinding across catalog changes,
// memory-governed eviction (ResourceExhausted is never masked by a
// cached result), the concurrent hit-storm determinism contract, and
// cancellation never poisoning the cache. Selected with
// `ctest -L cache`; scripts/fuzz.sh (ASan) and scripts/stress.sh
// (TSan) rerun the label.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/database.h"
#include "parser/normalize.h"
#include "service/session.h"

namespace radb {
namespace {

Database::Config MetricsConfig() {
  Database::Config cfg;
  cfg.obs.enable_metrics = true;
  return cfg;
}

Status Exec(Database* db, const std::string& sql) {
  return db->Execute(sql, QueryOptions{}).status();
}

Result<ResultSet> Query(Database* db, const std::string& sql) {
  auto r = db->Execute(sql, QueryOptions{});
  if (!r.ok()) return r.status();
  return r->last();
}

std::vector<int64_t> IntColumn(const ResultSet& rs) {
  std::vector<int64_t> out;
  for (const Row& row : rs.rows) out.push_back(row[0].int_value());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(NormalizeTest, KeyIsWhitespaceAndCaseInsensitive) {
  auto a = parser::NormalizeStatement("SELECT k FROM t WHERE k > 1");
  auto b = parser::NormalizeStatement("select   K \n FROM  T where k>1");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(*a, *b);
}

TEST(NormalizeTest, DistinctLiteralsStayDistinct) {
  // std::to_string-style 6-digit rendering would collide these; the
  // %.17g canonical form must not.
  auto a = parser::NormalizeStatement("SELECT 0.30000000000000004");
  auto b = parser::NormalizeStatement("SELECT 0.3");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  // String case is significant inside quotes, not outside.
  auto s1 = parser::NormalizeStatement("SELECT 'Ab'");
  auto s2 = parser::NormalizeStatement("SELECT 'ab'");
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(*s1, *s2);
}

TEST(ResultCacheTest, HitMissAndStatsAccounting) {
  Database db(MetricsConfig());
  ASSERT_TRUE(Exec(&db,
                  "CREATE TABLE t (k INTEGER); "
                  "INSERT INTO t VALUES (1); INSERT INTO t VALUES (2)")
                  .ok());
  ASSERT_NE(db.result_cache(), nullptr);

  auto cold = Query(&db, "SELECT k FROM t");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(db.result_cache()->stats().hits, 0u);

  auto warm = Query(&db, "SELECT k FROM t");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(db.result_cache()->stats().hits, 1u);
  EXPECT_EQ(IntColumn(*warm), IntColumn(*cold));

  // The key is the normalized statement: different spelling, same hit.
  auto spaced = Query(&db, "select   K   from T");
  ASSERT_TRUE(spaced.ok());
  EXPECT_EQ(db.result_cache()->stats().hits, 2u);
  EXPECT_EQ(IntColumn(*spaced), IntColumn(*cold));
}

TEST(ResultCacheTest, InvalidatedByInsert) {
  Database db(MetricsConfig());
  ASSERT_TRUE(
      Exec(&db, "CREATE TABLE t (k INTEGER); INSERT INTO t VALUES (1)").ok());
  auto before = Query(&db, "SELECT k FROM t");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.size(), 1u);

  ASSERT_TRUE(Exec(&db, "INSERT INTO t VALUES (2)").ok());
  auto after = Query(&db, "SELECT k FROM t");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.size(), 2u) << "stale cached result served after "
                                       "INSERT bumped the table version";

  // BulkInsert (the non-SQL write path) must invalidate too.
  ASSERT_TRUE(db.BulkInsert("t", {{Value::Int(3)}}).ok());
  auto bulk = Query(&db, "SELECT k FROM t");
  ASSERT_TRUE(bulk.ok());
  EXPECT_EQ(bulk->rows.size(), 3u);
}

TEST(ResultCacheTest, DropCreateAliasingServesNewContents) {
  Database db(MetricsConfig());
  ASSERT_TRUE(
      Exec(&db, "CREATE TABLE t (k INTEGER); INSERT INTO t VALUES (7)").ok());
  auto first = Query(&db, "SELECT k FROM t");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(IntColumn(*first), std::vector<int64_t>({7}));
  // Warm the cache, then replace the table wholesale under the same
  // name. A cache keyed on name alone (without table identity +
  // version) would keep serving 7.
  ASSERT_TRUE(Query(&db, "SELECT k FROM t").ok());
  ASSERT_TRUE(Exec(&db,
                  "DROP TABLE t; CREATE TABLE t (k INTEGER); "
                  "INSERT INTO t VALUES (8); INSERT INTO t VALUES (9)")
                  .ok());
  auto second = Query(&db, "SELECT k FROM t");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(IntColumn(*second), std::vector<int64_t>({8, 9}));
}

TEST(ResultCacheTest, SystemTablesNeverCached) {
  Database db(MetricsConfig());
  ASSERT_TRUE(
      Exec(&db, "CREATE TABLE t (k INTEGER); INSERT INTO t VALUES (1)").ok());
  // radb_queries grows with every query; a cached snapshot would
  // freeze it. Two consecutive scans must differ.
  auto a = Query(&db, "SELECT query_id FROM radb_queries");
  ASSERT_TRUE(a.ok());
  auto b = Query(&db, "SELECT query_id FROM radb_queries");
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->rows.size(), a->rows.size());
  EXPECT_EQ(db.result_cache()->stats().hits, 0u);
}

TEST(ResultCacheTest, EvictionUnderTightBudget) {
  Database::Config cfg = MetricsConfig();
  cfg.cache.result_cache_bytes = 2048;
  Database db(cfg);
  ASSERT_TRUE(Exec(&db, "CREATE TABLE t (k INTEGER)").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        Exec(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  // Distinct keys with non-trivial results: residency must stay under
  // budget, so filling far past it forces LRU eviction.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        Query(&db, "SELECT k FROM t WHERE k >= " + std::to_string(i)).ok());
  }
  EXPECT_LE(db.result_cache()->bytes_in_use(), 2048u);
  EXPECT_GT(db.result_cache()->stats().evictions, 0u);
}

TEST(ResultCacheTest, TightBudgetIsNotMaskedByCachedResult) {
  Database db(MetricsConfig());
  ASSERT_TRUE(Exec(&db, "CREATE TABLE a (k INTEGER); CREATE TABLE b (k INTEGER)")
                  .ok());
  for (int i = 0; i < 64; ++i) {
    const std::string v = std::to_string(i);
    ASSERT_TRUE(Exec(&db, "INSERT INTO a VALUES (" + v + ")").ok());
    ASSERT_TRUE(Exec(&db, "INSERT INTO b VALUES (" + v + ")").ok());
  }
  const std::string sql =
      "SELECT DISTINCT a.k * b.k AS p FROM a AS a, b AS b";
  // Unbudgeted run fills the cache and records its peak memory.
  auto cold = db.Execute(sql, QueryOptions{});
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(Query(&db, sql).ok());
  const uint64_t hits_before = db.result_cache()->stats().hits;
  EXPECT_GT(hits_before, 0u);
  // A 1 KB call could never have produced this result itself, so the
  // cache must not serve it; the statement runs cold and reports its
  // honest ResourceExhausted.
  auto tight = db.Execute(sql, QueryOptions{.memory_budget_bytes = 1024});
  ASSERT_FALSE(tight.ok());
  EXPECT_EQ(tight.status().code(), StatusCode::kResourceExhausted)
      << tight.status().ToString();
  EXPECT_EQ(db.result_cache()->stats().hits, hits_before);
}

TEST(PlanCacheTest, ReusedAcrossDataChangesInvalidatedByIt) {
  Database db(MetricsConfig());
  ASSERT_TRUE(
      Exec(&db, "CREATE TABLE t (k INTEGER); INSERT INTO t VALUES (1)").ok());
  ASSERT_NE(db.plan_cache(), nullptr);
  const std::string sql = "SELECT k FROM t WHERE k > 0";
  ASSERT_TRUE(Query(&db, sql).ok());
  EXPECT_EQ(db.plan_cache()->entries(), 1u);
  // The plan cache is keyed on the full catalog version: any data
  // change re-plans (estimates depend on row counts), so a hit is
  // only legal when literally nothing changed. The result cache
  // short-circuits the repeat-query case, so exercise the plan path
  // via a version bump + re-run: stale entry detected and replaced.
  const uint64_t invalidations_before = db.plan_cache()->stats().invalidations;
  ASSERT_TRUE(Exec(&db, "INSERT INTO t VALUES (2)").ok());
  auto after = Query(&db, sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.size(), 2u);
  EXPECT_EQ(db.plan_cache()->stats().invalidations, invalidations_before + 1);
}

TEST(PlanCacheTest, ExplainAnalyzeReportsCacheState) {
  Database db(MetricsConfig());
  ASSERT_TRUE(
      Exec(&db, "CREATE TABLE t (k INTEGER); INSERT INTO t VALUES (1)").ok());
  auto first = Query(&db, "EXPLAIN ANALYZE SELECT k FROM t");
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->rows.empty());
  const std::string cold = first->rows.back()[0].string_value();
  EXPECT_NE(cold.find("cache=miss"), std::string::npos) << cold;
  auto second = Query(&db, "EXPLAIN ANALYZE SELECT k FROM t");
  ASSERT_TRUE(second.ok());
  const std::string warm = second->rows.back()[0].string_value();
  EXPECT_NE(warm.find("cache=plan-hit"), std::string::npos) << warm;
}

TEST(PreparedTest, ExecuteBindsParamsAndReusesTemplate) {
  Database db(MetricsConfig());
  ASSERT_TRUE(Exec(&db,
                  "CREATE TABLE t (k INTEGER); "
                  "INSERT INTO t VALUES (1); INSERT INTO t VALUES (2)")
                  .ok());
  ASSERT_TRUE(
      Exec(&db, "PREPARE p AS SELECT k FROM t WHERE k = ?").ok());
  EXPECT_EQ(db.prepared_count(), 1u);

  auto one = Query(&db, "EXECUTE p(1)");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(IntColumn(*one), std::vector<int64_t>({1}));
  auto two = Query(&db, "EXECUTE p(2)");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(IntColumn(*two), std::vector<int64_t>({2}));

  // Arity and existence errors surface as bind errors.
  EXPECT_FALSE(Exec(&db, "EXECUTE p(1, 2)").ok());
  EXPECT_FALSE(Exec(&db, "EXECUTE nosuch(1)").ok());
  // Bare ? outside PREPARE is rejected at bind time.
  EXPECT_FALSE(Exec(&db, "SELECT k FROM t WHERE k = ?").ok());

  ASSERT_TRUE(Exec(&db, "DEALLOCATE p").ok());
  EXPECT_EQ(db.prepared_count(), 0u);
  EXPECT_FALSE(Exec(&db, "EXECUTE p(1)").ok());
}

TEST(PreparedTest, RebindsAcrossCatalogChanges) {
  Database db(MetricsConfig());
  ASSERT_TRUE(
      Exec(&db, "CREATE TABLE t (k INTEGER); INSERT INTO t VALUES (5)").ok());
  ASSERT_TRUE(Exec(&db, "PREPARE p AS SELECT k FROM t WHERE k = ?").ok());
  auto before = Query(&db, "EXECUTE p(5)");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.size(), 1u);

  // Data churn: the stored plan template is version-stale; EXECUTE
  // must re-plan, not serve the old estimate-bound plan blindly.
  ASSERT_TRUE(Exec(&db, "INSERT INTO t VALUES (5)").ok());
  auto after_insert = Query(&db, "EXECUTE p(5)");
  ASSERT_TRUE(after_insert.ok());
  EXPECT_EQ(after_insert->rows.size(), 2u);

  // Schema churn: drop and re-create the target under the same name.
  ASSERT_TRUE(Exec(&db,
                  "DROP TABLE t; "
                  "CREATE TABLE t (k INTEGER, v DOUBLE); "
                  "INSERT INTO t VALUES (5, 1.5)")
                  .ok());
  auto after_ddl = Query(&db, "EXECUTE p(5)");
  ASSERT_TRUE(after_ddl.ok());
  EXPECT_EQ(after_ddl->rows.size(), 1u);

  // And when the new shape no longer binds, EXECUTE reports it.
  ASSERT_TRUE(Exec(&db, "DROP TABLE t; CREATE TABLE t (x DOUBLE)").ok());
  EXPECT_FALSE(Exec(&db, "EXECUTE p(5)").ok());
}

TEST(CacheSystemTableTest, ReportsAllThreeCaches) {
  Database db(MetricsConfig());
  ASSERT_TRUE(
      Exec(&db, "CREATE TABLE t (k INTEGER); INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(Query(&db, "SELECT k FROM t").ok());
  ASSERT_TRUE(Query(&db, "SELECT k FROM t").ok());
  ASSERT_TRUE(Exec(&db, "PREPARE p AS SELECT k FROM t WHERE k = ?").ok());
  auto rs = Query(&db, "SELECT cache, entries, hits FROM radb_cache");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 3u);
  uint64_t result_hits = 0;
  int64_t prepared_entries = -1;
  for (const Row& row : rs->rows) {
    if (row[0].string_value() == "result") {
      result_hits = static_cast<uint64_t>(row[2].int_value());
    } else if (row[0].string_value() == "prepared") {
      prepared_entries = row[1].int_value();
    }
  }
  EXPECT_GE(result_hits, 1u);
  EXPECT_EQ(prepared_entries, 1);
}

TEST(CacheSystemTableTest, DisabledCachesDropTheirRows) {
  Database::Config cfg = MetricsConfig();
  cfg.cache.enable_plan_cache = false;
  cfg.cache.enable_result_cache = false;
  Database db(cfg);
  EXPECT_EQ(db.plan_cache(), nullptr);
  EXPECT_EQ(db.result_cache(), nullptr);
  ASSERT_TRUE(
      Exec(&db, "CREATE TABLE t (k INTEGER); INSERT INTO t VALUES (1)").ok());
  auto warm = Query(&db, "SELECT k FROM t");
  ASSERT_TRUE(warm.ok());
  auto rs = Query(&db, "SELECT cache FROM radb_cache");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);  // only the prepared row remains
}

TEST(ServiceCacheTest, ConcurrentHitStormIsBitIdentical) {
  Database db(MetricsConfig());
  ASSERT_TRUE(Exec(&db, "CREATE TABLE t (k INTEGER, v DOUBLE)").ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(Exec(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                             std::to_string(i) + ".5)")
                    .ok());
  }
  const std::string sql = "SELECT k, v FROM t WHERE k < 12 ORDER BY k";
  // The serial oracle, computed before any concurrency.
  auto oracle = Query(&db, sql);
  ASSERT_TRUE(oracle.ok());

  service::SessionManager manager(&db);
  constexpr int kSessions = 8;
  constexpr int kPerSession = 25;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&] {
      auto session = manager.CreateSession();
      for (int i = 0; i < kPerSession; ++i) {
        auto r = session->Execute(sql);
        if (!r.ok() || !r->has_results()) {
          failures.fetch_add(1);
          continue;
        }
        const ResultSet& rs = r->last();
        bool same = rs.rows.size() == oracle->rows.size();
        for (size_t j = 0; same && j < rs.rows.size(); ++j) {
          for (size_t c = 0; same && c < rs.rows[j].size(); ++c) {
            same = rs.rows[j][c].Equals(oracle->rows[j][c]);
          }
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // The storm must actually have been a storm: the very first fill is
  // the only cold execution the cache needs.
  EXPECT_GE(db.result_cache()->stats().hits,
            static_cast<uint64_t>(kSessions * kPerSession - kSessions));
}

TEST(ServiceCacheTest, CancelledFillNeverPoisonsTheCache) {
  Database db(MetricsConfig());
  ASSERT_TRUE(Exec(&db, "CREATE TABLE t (k INTEGER)").ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        Exec(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  service::SessionManager manager(&db);
  auto session = manager.CreateSession();
  const std::string sql = "SELECT DISTINCT a.k + b.k AS s FROM t AS a, t AS b";

  // Pre-cancel the next sequence number: the fill is aborted (possibly
  // before it starts — the strictest version of "during").
  session->Cancel(session->next_query_seq());
  auto cancelled = session->Execute(sql);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(db.result_cache()->entries(), 0u)
      << "a cancelled (partial) execution must never fill the cache";

  // The next, uncancelled run both succeeds and fills normally.
  auto clean = session->Execute(sql);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->last().rows.size(), 63u);
  auto warm = session->Execute(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_GE(db.result_cache()->stats().hits, 1u);
}

TEST(ServiceCacheTest, FastPathSkipsAdmissionQueue) {
  // One admission slot: with the fast path, cached readers never
  // claim it, so a hot query storm proceeds even though the gate
  // would serialize (or reject) cold executions.
  Database db(MetricsConfig());
  ASSERT_TRUE(
      Exec(&db, "CREATE TABLE t (k INTEGER); INSERT INTO t VALUES (1)").ok());
  service::ServiceConfig cfg;
  cfg.admission.max_concurrent_queries = 1;
  service::SessionManager manager(&db, cfg);
  auto warmup = manager.CreateSession();
  ASSERT_TRUE(warmup->Execute("SELECT k FROM t").ok());

  const uint64_t hits_before = db.result_cache()->stats().hits;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 8; ++s) {
    threads.emplace_back([&] {
      auto session = manager.CreateSession();
      for (int i = 0; i < 10; ++i) {
        if (!session->Execute("SELECT k FROM t").ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(db.result_cache()->stats().hits, hits_before + 80);
}

}  // namespace
}  // namespace radb
