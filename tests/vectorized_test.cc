// Vectorized-engine battery: the columnar batch engine must be
// bit-identical to the row engine on every query it accepts, fall
// back (silently and correctly) on everything else, and honor
// selection-vector edge cases at any batch size or thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/database.h"

#include "test_util.h"
#include "common/rng.h"
#include "testing/catalog_gen.h"
#include "testing/differ.h"
#include "testing/query_gen.h"

namespace radb {
namespace {

using testing::Normalized;
using testing::SameCells;

Database::Config EngineConfig(bool vectorized, size_t threads,
                              size_t batch_rows = 1024) {
  Database::Config cfg;
  cfg.num_workers = 8;
  cfg.num_threads = threads;
  cfg.enable_vectorized = vectorized;
  cfg.vectorized_batch_rows = batch_rows;
  return cfg;
}

/// Runs `sql` (after `setup`) on the row engine at 1 thread — the
/// baseline — and on {row-8t, batch-1t, batch-8t}; every run must
/// produce the same cells (or the same error) as the baseline.
void ExpectEnginesAgree(const std::string& setup, const std::string& sql,
                        size_t batch_rows = 1024) {
  struct Variant {
    const char* name;
    bool vectorized;
    size_t threads;
  };
  const Variant variants[] = {{"row-1t", false, 1},
                              {"row-8t", false, 8},
                              {"batch-1t", true, 1},
                              {"batch-8t", true, 8}};
  Result<ResultSet> baseline = Status::OK();
  for (const Variant& v : variants) {
    Database db(EngineConfig(v.vectorized, v.threads, batch_rows));
    ASSERT_TRUE(Exec(db, setup).ok()) << v.name;
    Result<ResultSet> got = Exec(db, sql);
    if (std::string(v.name) == "row-1t") {
      baseline = std::move(got);
      continue;
    }
    ASSERT_EQ(baseline.ok(), got.ok())
        << v.name << ": " << (got.ok() ? "ok" : got.status().message());
    if (!baseline.ok()) {
      EXPECT_EQ(baseline.status().code(), got.status().code()) << v.name;
      EXPECT_EQ(baseline.status().message(), got.status().message())
          << v.name;
      continue;
    }
    EXPECT_TRUE(SameCells(Normalized(baseline->rows), Normalized(got->rows)))
        << v.name << " diverged on: " << sql;
  }
}

constexpr const char* kSetup =
    "CREATE TABLE t (a INTEGER, b DOUBLE, c STRING, d INTEGER);"
    "INSERT INTO t VALUES"
    " (1, 1.5, 'x', 10), (2, 2.5, 'y', NULL), (3, -3.5, 'x', 30),"
    " (4, 0.0, 'z', 40), (NULL, 4.5, NULL, 50), (6, NULL, 'y', NULL),"
    " (-7, 7.25, 'w', 70), (8, -0.0, 'x', 80)";

TEST(VectorizedTest, FilterProjectBitIdentity) {
  ExpectEnginesAgree(kSetup, "SELECT a * 2 + d, b - a FROM t WHERE a > 1");
  ExpectEnginesAgree(kSetup, "SELECT -a, -b, a - d * 2 FROM t WHERE b < 3.0");
  ExpectEnginesAgree(kSetup, "SELECT a FROM t WHERE c = 'x' OR c = 'y'");
  ExpectEnginesAgree(kSetup, "SELECT a, b FROM t WHERE NOT (a >= 4)");
  ExpectEnginesAgree(kSetup, "SELECT a + b FROM t WHERE a <> d");
}

TEST(VectorizedTest, MixedIntDoubleArithmeticWidensIdentically) {
  // INTEGER x INTEGER stays int64; any DOUBLE operand widens through
  // AsDouble — the cell kinds must match exactly, not just the values.
  ExpectEnginesAgree(kSetup, "SELECT a + 1, a + 1.0, b * a, a * a FROM t");
}

TEST(VectorizedTest, ThreeValuedLogicAndNullPropagation) {
  ExpectEnginesAgree(kSetup, "SELECT a FROM t WHERE d > 20 AND b > 0.0");
  ExpectEnginesAgree(kSetup, "SELECT a FROM t WHERE d > 20 OR b > 0.0");
  ExpectEnginesAgree(kSetup,
                     "SELECT a FROM t WHERE (a > 2 AND d < 60) OR c = 'w'");
  // NULL comparisons stay NULL and the filter drops them.
  ExpectEnginesAgree(kSetup, "SELECT a FROM t WHERE d = d");
}

TEST(VectorizedTest, LogicShortCircuitSuppressesRhsErrors) {
  // Row engine: a non-null false lhs skips the rhs entirely, so the
  // division never errors on the a = 0 row. The batch engine must
  // evaluate the rhs only on undecided lanes to match.
  const char* setup =
      "CREATE TABLE s (a INTEGER);"
      "INSERT INTO s VALUES (0), (1), (2), (5)";
  ExpectEnginesAgree(setup,
                     "SELECT a FROM s WHERE a <> 0 AND 10 / a > 1");
}

TEST(VectorizedTest, DivisionByZeroErrorsIdentically) {
  const char* setup =
      "CREATE TABLE s (a INTEGER);"
      "INSERT INTO s VALUES (4), (0), (2)";
  // Both engines must fail with the same NumericError.
  ExpectEnginesAgree(setup, "SELECT 8 / a FROM s");
  // Double division by zero is inf, never an error.
  ExpectEnginesAgree(setup, "SELECT 8.0 / a FROM s");
}

TEST(VectorizedTest, AggregateBattery) {
  ExpectEnginesAgree(kSetup,
                     "SELECT COUNT(*), COUNT(a), COUNT(d), SUM(a), SUM(b), "
                     "AVG(a), AVG(b), MIN(a), MAX(b), MIN(c), MAX(c) FROM t");
  ExpectEnginesAgree(kSetup,
                     "SELECT c, COUNT(*), SUM(a), AVG(b), MIN(d), MAX(a) "
                     "FROM t GROUP BY c");
  ExpectEnginesAgree(kSetup,
                     "SELECT a > 2, SUM(b), COUNT(d) FROM t GROUP BY a > 2");
  // Aggregate over a filtered + projected chain.
  ExpectEnginesAgree(kSetup,
                     "SELECT c, SUM(a * 2 + 1) FROM t WHERE a > 0 GROUP BY c");
}

TEST(VectorizedTest, NullGroupKeysAndNullArguments) {
  // NULL keys form their own group in both engines; SUM of an all-NULL
  // group is NULL while COUNT is 0.
  ExpectEnginesAgree(kSetup, "SELECT c, COUNT(b), SUM(d) FROM t GROUP BY c");
  ExpectEnginesAgree(kSetup, "SELECT d, COUNT(*) FROM t GROUP BY d");
}

TEST(VectorizedTest, ScalarAggregateOverZeroRows) {
  ExpectEnginesAgree(kSetup,
                     "SELECT COUNT(*), SUM(a), AVG(b), MIN(c) FROM t "
                     "WHERE a > 1000");
  ExpectEnginesAgree("CREATE TABLE e (x INTEGER);",
                     "SELECT COUNT(*), SUM(x) FROM e");
  // Grouped aggregate over zero rows emits zero rows.
  ExpectEnginesAgree("CREATE TABLE e (x INTEGER);",
                     "SELECT x, COUNT(*) FROM e GROUP BY x");
}

TEST(VectorizedTest, NegativeZeroSurvivesSumFirstValue) {
  // SUM keeps the first non-null value raw: a leading -0.0 must
  // surface as -0.0 from both engines (SameCells treats -0.0 == 0.0,
  // so compare the sign bit explicitly).
  for (const bool vectorized : {false, true}) {
    Database db(EngineConfig(vectorized, 1));
    ASSERT_TRUE(Exec(db, "CREATE TABLE z (g INTEGER, v DOUBLE);"
                              "INSERT INTO z VALUES (1, -0.0)")
                    .ok());
    auto rs = Exec(db, "SELECT SUM(v) FROM z GROUP BY g");
    ASSERT_TRUE(rs.ok()) << rs.status();
    ASSERT_EQ(rs->num_rows(), 1u);
    EXPECT_TRUE(std::signbit(rs->at(0, 0).double_value()))
        << (vectorized ? "batch" : "row");
  }
}

TEST(VectorizedTest, JoinFeedsVectorizedAggregate) {
  // The join runs on the row engine; its output crosses the boundary
  // into a vectorized aggregate chain.
  const char* setup =
      "CREATE TABLE r (k INTEGER, v INTEGER);"
      "CREATE TABLE s (k INTEGER, w DOUBLE);"
      "INSERT INTO r VALUES (1, 10), (2, 20), (2, 21), (3, 30), (4, 40);"
      "INSERT INTO s VALUES (1, 0.5), (2, 1.5), (3, 2.5), (3, 3.5), (5, 9.9)";
  ExpectEnginesAgree(setup,
                     "SELECT r.k, SUM(r.v), AVG(s.w) FROM r, s "
                     "WHERE r.k = s.k GROUP BY r.k");
  ExpectEnginesAgree(setup,
                     "SELECT COUNT(*) FROM r, s WHERE r.k = s.k AND r.v > 15");
}

TEST(VectorizedTest, FallbackOperatorsStillAgree) {
  // DISTINCT / ORDER BY / LIMIT run on the row engine above (or
  // below) vectorized segments; results must be unchanged.
  ExpectEnginesAgree(kSetup, "SELECT DISTINCT c FROM t");
  ExpectEnginesAgree(kSetup, "SELECT a, b FROM t ORDER BY a, b");
  ExpectEnginesAgree(kSetup,
                     "SELECT a FROM t WHERE a > 0 ORDER BY a LIMIT 3");
  ExpectEnginesAgree(kSetup,
                     "SELECT c, SUM(a) FROM t GROUP BY c HAVING SUM(a) > 2");
}

TEST(VectorizedTest, LinearAlgebraStaysOnRowEngine) {
  const char* setup =
      "CREATE TABLE v (id INTEGER, vec VECTOR[3]);"
      "INSERT INTO v VALUES (1, ones_vector(3)), (2, ones_vector(3))";
  ExpectEnginesAgree(setup, "SELECT SUM(outer_product(vec, vec)) FROM v");
  ExpectEnginesAgree(setup, "SELECT id + 1 FROM v WHERE id > 0");
}

TEST(VectorizedTest, BatchBoundaryAndOddBatchSizes) {
  // 1030 rows with batch sizes that do and do not divide the row
  // count: partial batches, batch-spanning groups, LIMIT across a
  // batch edge.
  std::string setup = "CREATE TABLE big (a INTEGER, b DOUBLE);";
  setup += "INSERT INTO big VALUES ";
  for (int i = 0; i < 1030; ++i) {
    if (i > 0) setup += ", ";
    setup += "(" + std::to_string(i % 97) + ", " +
             std::to_string((i % 13) * 0.25) + ")";
  }
  for (const size_t batch_rows : {1u, 3u, 256u, 1024u, 4096u}) {
    ExpectEnginesAgree(setup,
                       "SELECT a, COUNT(*), SUM(b) FROM big GROUP BY a",
                       batch_rows);
    ExpectEnginesAgree(setup, "SELECT SUM(a), AVG(b) FROM big WHERE a > 11",
                       batch_rows);
  }
  ExpectEnginesAgree(setup, "SELECT a FROM big ORDER BY a, b LIMIT 1024");
  ExpectEnginesAgree(setup, "SELECT a FROM big ORDER BY a, b LIMIT 1025");
}

TEST(VectorizedTest, AllRowsFilteredOutMidPipeline) {
  // The selection vector collapses to empty before the project /
  // aggregate stages — downstream stages must cope with 0 live lanes.
  ExpectEnginesAgree(kSetup, "SELECT a * 2 FROM t WHERE a > 100");
  ExpectEnginesAgree(kSetup,
                     "SELECT c, SUM(a) FROM t WHERE a > 100 GROUP BY c");
}

TEST(VectorizedTest, KindImpureColumnFallsBackToRowEngine) {
  // ValidateRow legally admits an INTEGER value into a DOUBLE column;
  // the row engine then groups/aggregates by the RUNTIME kind. The
  // scan's purity flag must force the row path so the stored Int cell
  // survives identically.
  for (const bool vectorized : {false, true}) {
    Database db(EngineConfig(vectorized, 1));
    ASSERT_TRUE(Exec(db, "CREATE TABLE p (d DOUBLE)").ok());
    // The INSERT parser may coerce; BulkInsert stores the raw value.
    ASSERT_TRUE(db.BulkInsert("p", {{Value::Int(1)}, {Value::Double(1.0)},
                                    {Value::Double(2.5)}})
                    .ok());
    auto rs = Exec(db, "SELECT d, COUNT(*) FROM p GROUP BY d");
    ASSERT_TRUE(rs.ok()) << rs.status();
    // Int(1) and Double(1.0) are distinct group keys in the row
    // engine; the batch config must agree (by falling back).
    EXPECT_EQ(rs->num_rows(), 3u) << (vectorized ? "batch" : "row");
  }
}

TEST(VectorizedTest, ExplainAnalyzeReportsExecMode) {
  Database batch_db(EngineConfig(true, 1));
  ASSERT_TRUE(Exec(batch_db, kSetup).ok());
  auto rs = Exec(batch_db, 
      "EXPLAIN ANALYZE SELECT c, SUM(a) FROM t WHERE a > 0 GROUP BY c");
  ASSERT_TRUE(rs.ok()) << rs.status();
  std::string plan;
  for (size_t i = 0; i < rs->num_rows(); ++i) {
    plan += rs->at(i, 0).string_value() + "\n";
  }
  EXPECT_NE(plan.find("exec=batch"), std::string::npos) << plan;
  EXPECT_NE(plan.find("batches="), std::string::npos) << plan;

  Database row_db(EngineConfig(false, 1));
  ASSERT_TRUE(Exec(row_db, kSetup).ok());
  auto row_rs = Exec(row_db, 
      "EXPLAIN ANALYZE SELECT c, SUM(a) FROM t WHERE a > 0 GROUP BY c");
  ASSERT_TRUE(row_rs.ok()) << row_rs.status();
  std::string row_plan;
  for (size_t i = 0; i < row_rs->num_rows(); ++i) {
    row_plan += row_rs->at(i, 0).string_value() + "\n";
  }
  EXPECT_EQ(row_plan.find("exec=batch"), std::string::npos) << row_plan;
}

TEST(VectorizedTest, RadbOperatorsExposesExecMode) {
  Database db(EngineConfig(true, 1));
  ASSERT_TRUE(Exec(db, kSetup).ok());
  ASSERT_TRUE(Exec(db, "SELECT c, SUM(a) FROM t GROUP BY c").ok());
  auto rs = Exec(db, 
      "SELECT COUNT(*) FROM radb_operators WHERE exec_mode = 'batch' "
      "AND batches > 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_GT(rs->at(0, 0).AsInt().value(), 0);
}

TEST(VectorizedTest, MiniFuzzRowVsBatch) {
  // A focused row-vs-batch sweep over generated queries: quicker than
  // the full 12-config differ, run on every ctest invocation.
  const testing::CatalogSpec spec = testing::GenerateCatalog(20170419);
  Database row_db(EngineConfig(false, 1));
  Database batch_db(EngineConfig(true, 8, 256));
  ASSERT_TRUE(testing::LoadCatalog(spec, &row_db).ok());
  ASSERT_TRUE(testing::LoadCatalog(spec, &batch_db).ok());
  Rng rng(7);
  int compared = 0;
  for (int i = 0; i < 60; ++i) {
    const testing::QuerySpec q = testing::GenerateQuery(spec, &rng);
    const std::string sql = q.ToSql();
    auto a = Exec(row_db, sql);
    auto b = Exec(batch_db, sql);
    ASSERT_EQ(a.ok(), b.ok()) << sql << "\nrow: "
                              << (a.ok() ? "ok" : a.status().message())
                              << "\nbatch: "
                              << (b.ok() ? "ok" : b.status().message());
    if (!a.ok()) continue;
    EXPECT_TRUE(SameCells(Normalized(a->rows), Normalized(b->rows)))
        << "row-vs-batch divergence on: " << sql;
    ++compared;
  }
  EXPECT_GT(compared, 30);
}

}  // namespace
}  // namespace radb
