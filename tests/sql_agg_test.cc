#include <gtest/gtest.h>

#include "api/database.h"

#include "test_util.h"
#include "common/rng.h"
#include "la/random.h"

namespace radb {
namespace {

/// Aggregates over LA types through SQL, including distributed
/// two-phase execution at several cluster widths.
class SqlAggTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    Database::Config config;
    config.num_workers = GetParam();
    db_ = std::make_unique<Database>(config);
    ASSERT_TRUE(Exec(*db_, "CREATE TABLE v (g INTEGER, vec VECTOR[4], "
                                "w DOUBLE)")
                    .ok());
    Rng rng(71);
    std::vector<Row> rows;
    for (int i = 0; i < 60; ++i) {
      la::Vector x = la::RandomVector(rng, 4);
      sums_[i % 3] = sums_.count(i % 3)
                         ? *la::Add(sums_[i % 3], x)
                         : x;
      rows.push_back({Value::Int(i % 3), Value::FromVector(std::move(x)),
                      Value::Double(i * 0.5)});
    }
    ASSERT_TRUE(db_->BulkInsert("v", std::move(rows)).ok());
  }

  std::unique_ptr<Database> db_;
  std::map<int, la::Vector> sums_;
};

TEST_P(SqlAggTest, GroupedVectorSum) {
  auto rs = Exec(*db_, 
      "SELECT g, SUM(vec) FROM v GROUP BY g ORDER BY g");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    const int g = static_cast<int>(rs->at(r, 0).AsInt().value());
    EXPECT_LT(rs->at(r, 1).vector().MaxAbsDiff(sums_[g]), 1e-10) << g;
  }
}

TEST_P(SqlAggTest, VectorAvgIsSumOverCount) {
  auto rs = Exec(*db_, 
      "SELECT g, AVG(vec), COUNT(*) FROM v GROUP BY g ORDER BY g");
  ASSERT_TRUE(rs.ok()) << rs.status();
  for (size_t r = 0; r < 3; ++r) {
    const int g = static_cast<int>(rs->at(r, 0).AsInt().value());
    const double n = static_cast<double>(rs->at(r, 2).AsInt().value());
    EXPECT_LT(rs->at(r, 1).vector().MaxAbsDiff(
                  la::DivScalar(sums_[g], n)),
              1e-10);
  }
}

TEST_P(SqlAggTest, ElementWiseMinMaxOverVectors) {
  auto rs = Exec(*db_, 
      "SELECT EMIN(vec), EMAX(vec) FROM v");
  ASSERT_TRUE(rs.ok()) << rs.status();
  const la::Vector& lo = rs->at(0, 0).vector();
  const la::Vector& hi = rs->at(0, 1).vector();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_LE(lo[i], hi[i]);
    EXPECT_GE(lo[i], -1.0);
    EXPECT_LE(hi[i], 1.0);
  }
}

TEST_P(SqlAggTest, WeightedVectorSum) {
  // SUM(vec * w): vector-scalar broadcast inside an aggregate.
  auto rs = Exec(*db_, "SELECT SUM(vec * w) FROM v");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).vector().size(), 4u);
}

TEST_P(SqlAggTest, SumShapeMismatchIsRuntimeError) {
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE mixed (vec VECTOR[])").ok());
  ASSERT_TRUE(db_->BulkInsert("mixed",
                              {{Value::FromVector(la::Vector(3))},
                               {Value::FromVector(la::Vector(4))}})
                  .ok());
  EXPECT_EQ(
      Exec(*db_, "SELECT SUM(vec) FROM mixed").status().code(),
      StatusCode::kDimensionMismatch);
}

TEST_P(SqlAggTest, ColMatrixFromGroupedVectors) {
  // Build a matrix whose columns are the per-group vector sums.
  auto rs = Exec(*db_, 
      "SELECT COLMATRIX(label_vector(s.sv, s.g)) FROM "
      "(SELECT g, SUM(vec) AS sv FROM v GROUP BY g) AS s");
  ASSERT_TRUE(rs.ok()) << rs.status();
  const la::Matrix& m = rs->at(0, 0).matrix();
  ASSERT_EQ(m.rows(), 4u);
  ASSERT_EQ(m.cols(), 3u);
  for (int g = 0; g < 3; ++g) {
    EXPECT_LT(m.Col(static_cast<size_t>(g)).MaxAbsDiff(sums_[g]), 1e-10);
  }
}

TEST_P(SqlAggTest, GroupByVectorValue) {
  // Vectors are hashable and comparable, so they can be group keys
  // (the k-means example's assignment step relies on this).
  ASSERT_TRUE(Exec(*db_, "CREATE TABLE dup (vec VECTOR[2])").ok());
  la::Vector a(std::vector<double>{1, 2});
  la::Vector b(std::vector<double>{3, 4});
  ASSERT_TRUE(db_->BulkInsert("dup", {{Value::FromVector(a)},
                                      {Value::FromVector(b)},
                                      {Value::FromVector(a)}})
                  .ok());
  auto rs =
      Exec(*db_, "SELECT vec, COUNT(*) FROM dup GROUP BY vec");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 2u);
  int64_t total = 0;
  for (size_t r = 0; r < rs->num_rows(); ++r) {
    total += rs->at(r, 1).AsInt().value();
  }
  EXPECT_EQ(total, 3);
}

INSTANTIATE_TEST_SUITE_P(Workers, SqlAggTest,
                         ::testing::Values(1, 3, 8));

}  // namespace
}  // namespace radb
