#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <utime.h>

#include "common/string_util.h"
#include "mem/spill_file.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "mem/memory_tracker.h"
#include "storage/serialize.h"
#include "storage/spill.h"
#include "types/value.h"

namespace radb {
namespace {

// ----------------------------------------------------------------------
// Byte sizing: the tracker's accounting is only as good as
// Value::ByteSize(), which must be EXACTLY the radb binary
// serialization size — including MATRIX/VECTOR element payloads.
// ----------------------------------------------------------------------

size_t SerializedSize(const Value& v) {
  std::ostringstream os(std::ios::binary);
  WriteValueBinary(os, v);
  return os.str().size();
}

TEST(ByteSizeTest, PinnedScalarSizes) {
  EXPECT_EQ(Value::Null().ByteSize(), 1u);
  EXPECT_EQ(Value::Bool(true).ByteSize(), 2u);
  EXPECT_EQ(Value::Int(42).ByteSize(), 9u);
  EXPECT_EQ(Value::Double(3.5).ByteSize(), 9u);
  EXPECT_EQ(Value::String("").ByteSize(), 9u);
  EXPECT_EQ(Value::String("hello").ByteSize(), 14u);
  EXPECT_EQ(Value::Labeled(1.0, 7).ByteSize(), 17u);
}

TEST(ByteSizeTest, PinnedLaSizes) {
  // tag + label + size + 8 bytes per element.
  EXPECT_EQ(Value::FromVector(la::Vector(100)).ByteSize(), 17u + 800u);
  // tag + rows + cols + 8 bytes per element — element data, not
  // sizeof(Value).
  EXPECT_EQ(Value::FromMatrix(la::Matrix(20, 30)).ByteSize(),
            17u + 8u * 20 * 30);
}

TEST(ByteSizeTest, MatchesSerializer) {
  const std::vector<Value> values = {
      Value::Null(),
      Value::Bool(false),
      Value::Int(-1),
      Value::Double(2.75),
      Value::String("abcdefg"),
      Value::Labeled(0.5, 3),
      Value::FromVector(la::Vector(17)),
      Value::FromMatrix(la::Matrix(5, 9)),
  };
  for (const Value& v : values) {
    EXPECT_EQ(v.ByteSize(), SerializedSize(v)) << v.ToString();
  }
  Row row = {Value::Int(1), Value::FromVector(la::Vector(8))};
  // Row charge excludes the arity prefix on purpose: it counts the
  // payload the engine keeps in memory.
  EXPECT_EQ(RowByteSize(row), row[0].ByteSize() + row[1].ByteSize());
}

TEST(ByteSizeTest, ParseByteSizeUnits) {
  EXPECT_EQ(ParseByteSize("1024"), 1024u);
  EXPECT_EQ(ParseByteSize("16MB"), size_t{16} << 20);
  EXPECT_EQ(ParseByteSize("16MiB"), size_t{16} << 20);
  EXPECT_EQ(ParseByteSize(" 64 kb "), size_t{64} << 10);
  EXPECT_EQ(ParseByteSize("2g"), size_t{2} << 30);
  EXPECT_EQ(ParseByteSize("1.5k"), 1536u);
  EXPECT_EQ(ParseByteSize("garbage"), 0u);
  EXPECT_EQ(ParseByteSize("12parsecs"), 0u);
}

// ----------------------------------------------------------------------
// MemoryTracker: budget enforcement and hierarchical accounting.
// ----------------------------------------------------------------------

TEST(MemoryTrackerTest, UnlimitedIsPureBookkeeping) {
  mem::MemoryTracker t("query", size_t{0});
  EXPECT_FALSE(t.has_budget());
  EXPECT_TRUE(t.TryReserve(size_t{1} << 40));
  EXPECT_EQ(t.bytes_in_use(), size_t{1} << 40);
  EXPECT_EQ(t.peak_bytes(), size_t{1} << 40);
  t.Release(size_t{1} << 40);
  EXPECT_EQ(t.bytes_in_use(), 0u);
  EXPECT_EQ(t.peak_bytes(), size_t{1} << 40);  // peak survives
}

TEST(MemoryTrackerTest, BudgetEnforced) {
  mem::MemoryTracker t("query", 1000);
  EXPECT_TRUE(t.TryReserve(600));
  EXPECT_EQ(t.remaining(), 400u);
  EXPECT_FALSE(t.TryReserve(500));  // refused, nothing charged
  EXPECT_EQ(t.bytes_in_use(), 600u);
  Status s = t.Reserve(500);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // ForceReserve overshoots without failing.
  t.ForceReserve(500);
  EXPECT_EQ(t.bytes_in_use(), 1100u);
  EXPECT_EQ(t.remaining(), 0u);
  t.Release(1100);
  EXPECT_TRUE(t.TryReserve(1000));
}

TEST(MemoryTrackerTest, ChildChargesRootAndAutoReleases) {
  mem::MemoryTracker root("query", 1000);
  {
    mem::MemoryTracker child("operator", &root);
    EXPECT_TRUE(child.TryReserve(700));
    EXPECT_EQ(child.bytes_in_use(), 700u);
    EXPECT_EQ(root.bytes_in_use(), 700u);
    EXPECT_EQ(child.budget(), 1000u);
    // The root's budget gates the child's reservations.
    EXPECT_FALSE(child.TryReserve(400));
    // The child destructor releases whatever it still holds — an
    // aborted operator cannot poison later queries.
  }
  EXPECT_EQ(root.bytes_in_use(), 0u);
}

TEST(MemoryTrackerTest, UnspillableClassIgnoresSpillableResidency) {
  mem::MemoryTracker root("query", 1000);
  // Spillable charges (buffers) nearly fill the total pool...
  ASSERT_TRUE(root.TryReserve(900));
  // ...but an operator-state child is gated only against other
  // unspillable state, so its reservation is deterministic.
  mem::MemoryTracker state("operator", &root);
  EXPECT_TRUE(state.Reserve(700).ok());
  EXPECT_EQ(root.unspillable_bytes(), 700u);
  EXPECT_EQ(root.bytes_in_use(), 1600u);  // total is honest
  // Spillable reservations now see a full total pool: spill signal.
  EXPECT_FALSE(root.TryReserve(1));
  // The unspillable pool still enforces the budget among state.
  EXPECT_FALSE(state.TryReserve(400));
  EXPECT_EQ(state.Reserve(400).code(), StatusCode::kResourceExhausted);
  state.Release(700);
  EXPECT_EQ(root.unspillable_bytes(), 0u);
  EXPECT_EQ(root.bytes_in_use(), 900u);
  root.Release(900);
}

TEST(MemoryTrackerTest, SpillCountersRollUp) {
  mem::MemoryTracker root("query", 1000);
  mem::MemoryTracker child("operator", &root);
  child.RecordSpill(256, 2);
  EXPECT_EQ(child.spill_bytes(), 256u);
  EXPECT_EQ(child.spill_runs(), 2u);
  EXPECT_EQ(root.spill_bytes(), 256u);
  EXPECT_EQ(root.spill_runs(), 2u);
}

// ----------------------------------------------------------------------
// SpillableRowBuffer: spill under pressure, replay in exact order.
// ----------------------------------------------------------------------

Row MakeRow(int64_t i) {
  return {Value::Int(i), Value::String("row-" + std::to_string(i))};
}

TEST(SpillableRowBufferTest, NoContextDegeneratesToVector) {
  SpillableRowBuffer buf;
  for (int64_t i = 0; i < 10; ++i) ASSERT_TRUE(buf.Append(MakeRow(i)).ok());
  EXPECT_FALSE(buf.has_spilled_rows());
  EXPECT_EQ(buf.num_rows(), 10u);
  auto rows = buf.Drain();
  ASSERT_TRUE(rows.ok());
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*rows)[i][0].int_value(), i);
  }
}

TEST(SpillableRowBufferTest, SpillsUnderPressureAndReplaysInOrder) {
  mem::MemoryTracker tracker("query", 2048);  // a few rows' worth
  MemoryContext ctx{&tracker, ""};
  SpillableRowBuffer buf(ctx);
  constexpr int64_t kRows = 200;
  for (int64_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(buf.Append(MakeRow(i)).ok());
  }
  EXPECT_TRUE(buf.has_spilled_rows());
  EXPECT_GT(buf.spill_bytes(), 0u);
  EXPECT_GT(buf.spill_runs(), 0u);
  EXPECT_EQ(buf.num_rows(), static_cast<size_t>(kRows));
  // The resident charge never exceeded the budget.
  EXPECT_LE(tracker.peak_bytes(), 2048u + RowByteSize(MakeRow(0)));
  // Replay: spilled runs first, then the tail — exactly append order.
  SpillableRowBuffer::Reader reader(&buf);
  for (int64_t i = 0; i < kRows; ++i) {
    auto row = reader.Next();
    ASSERT_TRUE(row.ok());
    ASSERT_TRUE(row->has_value());
    EXPECT_EQ((**row)[0].int_value(), i);
    EXPECT_EQ((**row)[1].string_value(), "row-" + std::to_string(i));
  }
  auto end = reader.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST(SpillableRowBufferTest, SpillTotalsSurviveClear) {
  mem::MemoryTracker tracker("query", 1024);
  SpillableRowBuffer buf(MemoryContext{&tracker, ""});
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(buf.Append(MakeRow(i)).ok());
  }
  ASSERT_TRUE(buf.has_spilled_rows());
  const size_t spilled = buf.spill_bytes();
  const size_t runs = buf.spill_runs();
  buf.Clear();
  EXPECT_EQ(buf.num_rows(), 0u);
  EXPECT_EQ(buf.spill_bytes(), spilled);  // cumulative, for operators
  EXPECT_EQ(buf.spill_runs(), runs);
  EXPECT_EQ(tracker.bytes_in_use(), 0u);
}

TEST(SpillableRowBufferTest, SpillToDiskFreesTheBudget) {
  mem::MemoryTracker tracker("query", 1u << 20);
  SpillableRowBuffer buf(MemoryContext{&tracker, ""});
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(buf.Append(MakeRow(i)).ok());
  }
  EXPECT_FALSE(buf.has_spilled_rows());  // fits comfortably
  EXPECT_GT(tracker.bytes_in_use(), 0u);
  ASSERT_TRUE(buf.SpillToDisk().ok());
  EXPECT_TRUE(buf.has_spilled_rows());
  EXPECT_EQ(tracker.bytes_in_use(), 0u);  // charge moved to disk
  auto rows = buf.Drain();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 50u);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*rows)[i][0].int_value(), i);
  }
}

TEST(SpillFileTest, NameEmbedsTagAndOwnerPid) {
  char tmpl[] = "/tmp/radb-spill-testXXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  mem::SpillFile f;
  ASSERT_TRUE(f.Create(dir, "q7").ok());
  // service_test pins the "radb-spill-<tag>-" prefix in attribution
  // messages; the pid rides AFTER the tag so those substrings survive.
  EXPECT_NE(f.path().find("radb-spill-q7-p" + std::to_string(::getpid()) +
                          "-"),
            std::string::npos)
      << f.path();
  f = mem::SpillFile();  // close
  ::rmdir(dir.c_str());
}

TEST(SpillFileTest, SweepRemovesOrphansKeepsLiveAndYoung) {
  char tmpl[] = "/tmp/radb-spill-sweepXXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  auto touch = [&](const std::string& name) {
    const std::string path = dir + "/" + name;
    std::ofstream(path) << "x";
    return path;
  };
  // A pid that is guaranteed dead: fork a child that exits
  // immediately, reap it, and use its (not-yet-recycled) pid.
  const pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) ::_exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(dead, &status, 0), dead);

  const std::string orphan =
      touch("radb-spill-q3-p" + std::to_string(dead) + "-0-AbCdEf");
  const std::string live =
      touch("radb-spill-q4-p" + std::to_string(::getpid()) + "-1-GhIjKl");
  const std::string young_pidless = touch("radb-spill-q5-2-MnOpQr");
  const std::string old_pidless = touch("radb-spill-q6-3-StUvWx");
  const std::string unrelated = touch("other-file.tmp");
  // Age the pid-less candidate past the sweep horizon.
  struct utimbuf old_times;
  old_times.actime = old_times.modtime = ::time(nullptr) - 7200;
  ASSERT_EQ(::utime(old_pidless.c_str(), &old_times), 0);

  EXPECT_EQ(mem::SweepOrphanedSpillFiles(dir, 3600), 2u);
  struct stat st;
  EXPECT_NE(::stat(orphan.c_str(), &st), 0) << "dead-owner file kept";
  EXPECT_NE(::stat(old_pidless.c_str(), &st), 0) << "stale pid-less kept";
  EXPECT_EQ(::stat(live.c_str(), &st), 0) << "live owner's file removed";
  EXPECT_EQ(::stat(young_pidless.c_str(), &st), 0) << "young file removed";
  EXPECT_EQ(::stat(unrelated.c_str(), &st), 0) << "non-spill file removed";

  for (const auto& p : {live, young_pidless, unrelated}) {
    ::unlink(p.c_str());
  }
  ::rmdir(dir.c_str());
}

TEST(SpillableRowBufferTest, MoveTransfersCharges) {
  mem::MemoryTracker tracker("query", 1u << 20);
  SpillableRowBuffer a(MemoryContext{&tracker, ""});
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.Append(MakeRow(i)).ok());
  }
  const size_t in_use = tracker.bytes_in_use();
  SpillableRowBuffer b(std::move(a));
  // The move must not double-release: dropping the moved-from buffer
  // leaves b's charge intact.
  a.Clear();
  EXPECT_EQ(tracker.bytes_in_use(), in_use);
  b.Clear();
  EXPECT_EQ(tracker.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace radb
