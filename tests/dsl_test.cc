#include <gtest/gtest.h>

#include "api/database.h"

#include "test_util.h"
#include "common/rng.h"
#include "dsl/expr.h"
#include "la/random.h"

namespace radb::dsl {
namespace {

class DslTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(31);
    a_ = la::RandomMatrix(rng, 6, 4);
    b_ = la::RandomMatrix(rng, 4, 9);
    c_ = la::RandomMatrix(rng, 9, 2);
    spd_ = la::RandomSpdMatrix(rng, 4);
    ASSERT_TRUE(Exec(db_, "CREATE TABLE a (mat MATRIX[6][4]);"
                               "CREATE TABLE b (mat MATRIX[4][9]);"
                               "CREATE TABLE c (mat MATRIX[9][2]);"
                               "CREATE TABLE s (mat MATRIX[4][4])")
                    .ok());
    ASSERT_TRUE(db_.BulkInsert("a", {{Value::FromMatrix(a_)}}).ok());
    ASSERT_TRUE(db_.BulkInsert("b", {{Value::FromMatrix(b_)}}).ok());
    ASSERT_TRUE(db_.BulkInsert("c", {{Value::FromMatrix(c_)}}).ok());
    ASSERT_TRUE(db_.BulkInsert("s", {{Value::FromMatrix(spd_)}}).ok());
  }

  Database db_;
  la::Matrix a_, b_, c_, spd_;
};

TEST_F(DslTest, ChainMultiplyMatchesDense) {
  Expr e = Expr::Ref("a", "mat") * Expr::Ref("b", "mat") *
           Expr::Ref("c", "mat");
  auto result = e.Eval(&db_);
  ASSERT_TRUE(result.ok()) << result.status();
  auto ab = la::Multiply(a_, b_);
  ASSERT_TRUE(ab.ok());
  auto abc = la::Multiply(*ab, c_);
  ASSERT_TRUE(abc.ok());
  EXPECT_LT(result->MaxAbsDiff(*abc), 1e-9);
}

TEST_F(DslTest, ChainReassociationReducesCost) {
  // a (6x4) * b (4x9) * c (9x2): left-to-right costs
  // 6*4*9 + 6*9*2 = 324; the optimal order (a * (b * c)) costs
  // 4*9*2 + 6*4*2 = 120.
  Expr chain = Expr::Ref("a", "mat") * Expr::Ref("b", "mat") *
               Expr::Ref("c", "mat");
  auto cost = chain.MultiplyCost(db_.catalog());
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 120.0);
  auto sql = chain.ToSql(db_.catalog());
  ASSERT_TRUE(sql.ok());
  // The emitted SQL parenthesizes b*c first.
  EXPECT_NE(sql->find("matrix_multiply(d0.mat, matrix_multiply(d1.mat, "
                      "d2.mat))"),
            std::string::npos)
      << *sql;
}

TEST_F(DslTest, TypeInferenceAndErrors) {
  Expr good = Expr::Ref("a", "mat") * Expr::Ref("b", "mat");
  auto t = good.InferType(db_.catalog());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToString(), "MATRIX[6][9]");
  // Inner-dim mismatch caught before any SQL runs.
  Expr bad = Expr::Ref("b", "mat") * Expr::Ref("a", "mat");
  EXPECT_EQ(bad.ToSql(db_.catalog()).status().code(),
            StatusCode::kTypeError);
  // Non-square inverse rejected.
  EXPECT_FALSE(Expr::Ref("a", "mat").Inv().ToSql(db_.catalog()).ok());
  // Unknown table / column.
  EXPECT_FALSE(Expr::Ref("zz", "mat").ToSql(db_.catalog()).ok());
  EXPECT_FALSE(Expr::Ref("a", "zz").ToSql(db_.catalog()).ok());
}

TEST_F(DslTest, TransposeInverseAndElementWise) {
  // (aᵀ a)⁻¹ — a well-conditioned normal-equation kernel.
  Expr a = Expr::Ref("a", "mat");
  Expr e = (a.T() * a).Inv();
  auto result = e.Eval(&db_);
  ASSERT_TRUE(result.ok()) << result.status();
  la::Matrix ata = la::TransposeSelfMultiply(a_);
  auto expected = la::Inverse(ata);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(result->MaxAbsDiff(*expected), 1e-8);

  // Element-wise ops and scaling.
  Expr s = Expr::Ref("s", "mat");
  Expr mixed = (s + s).Hadamard(s) - s.Scale(3.0);
  auto got = mixed.Eval(&db_);
  ASSERT_TRUE(got.ok()) << got.status();
  la::Matrix expected2(spd_.rows(), spd_.cols());
  for (size_t i = 0; i < spd_.rows(); ++i) {
    for (size_t j = 0; j < spd_.cols(); ++j) {
      const double v = spd_.At(i, j);
      expected2.At(i, j) = 2 * v * v - 3 * v;
    }
  }
  EXPECT_LT(got->MaxAbsDiff(expected2), 1e-9);
}

TEST_F(DslTest, SameTableReferencedTwice) {
  Expr s = Expr::Ref("s", "mat");
  Expr e = s * s;
  auto result = e.Eval(&db_);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = la::Multiply(spd_, spd_);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(result->MaxAbsDiff(*expected), 1e-9);
  // Only one FROM entry is emitted for the shared table.
  auto sql = e.ToSql(db_.catalog());
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(sql->find("s AS d0"), sql->rfind("s AS d0")) << *sql;
}

TEST_F(DslTest, LongChainPicksGlobalOptimum) {
  // Five-factor chain with strongly skewed dims; verify both the
  // result and that the cost equals the DP optimum computed here.
  Database db;
  Rng rng(77);
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {30, 1}, {1, 40}, {40, 10}, {10, 25}, {25, 6}};
  std::vector<la::Matrix> mats;
  for (size_t i = 0; i < shapes.size(); ++i) {
    mats.push_back(
        la::RandomMatrix(rng, shapes[i].first, shapes[i].second));
    ASSERT_TRUE(Exec(db, "CREATE TABLE m" + std::to_string(i) +
                              " (mat MATRIX[" +
                              std::to_string(shapes[i].first) + "][" +
                              std::to_string(shapes[i].second) + "])")
                    .ok());
    ASSERT_TRUE(db.BulkInsert("m" + std::to_string(i),
                              {{Value::FromMatrix(mats[i])}})
                    .ok());
  }
  Expr chain = Expr::Ref("m0", "mat");
  la::Matrix expected = mats[0];
  for (size_t i = 1; i < mats.size(); ++i) {
    chain = chain * Expr::Ref("m" + std::to_string(i), "mat");
    auto next = la::Multiply(expected, mats[i]);
    ASSERT_TRUE(next.ok());
    expected = std::move(next).value();
  }
  auto result = chain.Eval(&db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(result->MaxAbsDiff(expected), 1e-8);

  // Reference DP over the dimension sequence.
  std::vector<double> p = {30, 1, 40, 10, 25, 6};
  const size_t k = 5;
  std::vector<std::vector<double>> dp(k, std::vector<double>(k, 0));
  for (size_t len = 2; len <= k; ++len) {
    for (size_t i = 0; i + len <= k; ++i) {
      const size_t j = i + len - 1;
      dp[i][j] = 1e300;
      for (size_t s = i; s < j; ++s) {
        dp[i][j] = std::min(
            dp[i][j], dp[i][s] + dp[s + 1][j] + p[i] * p[s + 1] * p[j + 1]);
      }
    }
  }
  auto cost = chain.MultiplyCost(db.catalog());
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, dp[0][k - 1]);
}

TEST_F(DslTest, EmittedSqlTypeChecksInTheDatabase) {
  // The normal-equation kernel (XᵀX)⁻¹Xᵀy with X = a (6x4) and a
  // 6x3 outcome matrix; the DSL's output must pass the SQL binder's
  // own dimension checks and carry exact output dims.
  ASSERT_TRUE(Exec(db_, "CREATE TABLE y6 (mat MATRIX[6][3])").ok());
  Rng rng(99);
  ASSERT_TRUE(db_.BulkInsert(
                    "y6", {{Value::FromMatrix(la::RandomMatrix(rng, 6, 3))}})
                  .ok());
  Expr a = Expr::Ref("a", "mat");
  Expr e = (a.T() * a).Inv() * a.T() * Expr::Ref("y6", "mat");
  auto sql = e.ToSql(db_.catalog());
  ASSERT_TRUE(sql.ok()) << sql.status();
  auto plan = db_.PlanQuery(*sql);
  ASSERT_TRUE(plan.ok()) << plan.status() << "\nSQL: " << *sql;
  EXPECT_EQ((*plan)->output[0].type.ToString(), "MATRIX[4][3]");
}

}  // namespace
}  // namespace radb::dsl
