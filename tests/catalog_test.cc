#include <gtest/gtest.h>

#include "catalog/aggregate.h"
#include "catalog/catalog.h"
#include "catalog/function_registry.h"

namespace radb {
namespace {

TEST(FunctionRegistryTest, PaperBuiltinsPresent) {
  const FunctionRegistry& reg = FunctionRegistry::Global();
  // The paper reports 22 built-ins; this implementation has at least
  // that many.
  EXPECT_GE(reg.size(), 22u);
  for (const char* name :
       {"matrix_multiply", "matrix_vector_multiply", "outer_product",
        "inner_product", "trans_matrix", "matrix_inverse", "diag",
        "label_scalar", "label_vector", "get_scalar"}) {
    EXPECT_TRUE(reg.Contains(name)) << name;
  }
  EXPECT_FALSE(reg.Contains("no_such_function"));
  EXPECT_FALSE(reg.Lookup("no_such_function").ok());
}

TEST(FunctionRegistryTest, LookupIsCaseInsensitive) {
  EXPECT_TRUE(FunctionRegistry::Global().Contains("MATRIX_MULTIPLY"));
  EXPECT_TRUE(FunctionRegistry::Global().Lookup("Diag").ok());
}

TEST(FunctionRegistryTest, EvalMatrixMultiply) {
  auto fn = FunctionRegistry::Global().Lookup("matrix_multiply");
  ASSERT_TRUE(fn.ok());
  Value a = Value::FromMatrix(la::Matrix(2, 2, {1, 2, 3, 4}));
  Value b = Value::FromMatrix(la::Matrix(2, 2, {5, 6, 7, 8}));
  auto out = (*fn)->eval({a, b});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->matrix().At(0, 0), 19);
}

TEST(FunctionRegistryTest, LabelFunctions) {
  const FunctionRegistry& reg = FunctionRegistry::Global();
  auto ls = reg.Lookup("label_scalar").value()->eval(
      {Value::Double(3.5), Value::Int(7)});
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ls->labeled().label, 7);
  EXPECT_DOUBLE_EQ(ls->labeled().value, 3.5);

  Value vec = Value::FromVector(la::Vector(std::vector<double>{1, 2, 3}));
  auto lv =
      reg.Lookup("label_vector").value()->eval({vec, Value::Int(4)});
  ASSERT_TRUE(lv.ok());
  EXPECT_EQ(lv->vector_value().label, 4);

  auto gs = reg.Lookup("get_scalar").value()->eval({vec, Value::Int(1)});
  ASSERT_TRUE(gs.ok());
  EXPECT_DOUBLE_EQ(gs->double_value(), 2.0);
  // Out of range is a runtime error.
  EXPECT_FALSE(
      reg.Lookup("get_scalar").value()->eval({vec, Value::Int(9)}).ok());
}

TEST(AggregateTest, SumOverMatrices) {
  auto agg = AggregateRegistry::Global().Lookup("sum").value()->make();
  ASSERT_TRUE(
      agg->Update(Value::FromMatrix(la::Matrix(2, 2, {1, 1, 1, 1}))).ok());
  ASSERT_TRUE(
      agg->Update(Value::FromMatrix(la::Matrix(2, 2, {2, 2, 2, 2}))).ok());
  auto out = agg->Finalize();
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->matrix().At(1, 1), 3.0);
  // Shape mismatch within a SUM is a runtime error.
  EXPECT_FALSE(agg->Update(Value::FromMatrix(la::Matrix(1, 1))).ok());
}

TEST(AggregateTest, VectorizeBuildsVector) {
  auto agg =
      AggregateRegistry::Global().Lookup("vectorize").value()->make();
  ASSERT_TRUE(agg->Update(Value::Labeled(10.0, 2)).ok());
  ASSERT_TRUE(agg->Update(Value::Labeled(5.0, 0)).ok());
  auto out = agg->Finalize();
  ASSERT_TRUE(out.ok());
  // Holes (label 1) become zero; length = max label + 1.
  EXPECT_EQ(out->vector().values(), (std::vector<double>{5, 0, 10}));
}

TEST(AggregateTest, VectorizeRejectsDuplicatesAndUnlabeled) {
  auto agg =
      AggregateRegistry::Global().Lookup("vectorize").value()->make();
  ASSERT_TRUE(agg->Update(Value::Labeled(1.0, 0)).ok());
  ASSERT_TRUE(agg->Update(Value::Labeled(2.0, 0)).ok());
  EXPECT_FALSE(agg->Finalize().ok());
  auto agg2 =
      AggregateRegistry::Global().Lookup("vectorize").value()->make();
  EXPECT_FALSE(agg2->Update(Value::Labeled(1.0, -1)).ok());
}

TEST(AggregateTest, RowMatrixAndColMatrix) {
  auto rm = AggregateRegistry::Global().Lookup("rowmatrix").value()->make();
  ASSERT_TRUE(rm->Update(Value::FromVector(
                             la::Vector(std::vector<double>{1, 2}), 1))
                  .ok());
  ASSERT_TRUE(rm->Update(Value::FromVector(
                             la::Vector(std::vector<double>{3, 4}), 0))
                  .ok());
  auto m = rm->Finalize();
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->matrix().At(0, 0), 3);
  EXPECT_DOUBLE_EQ(m->matrix().At(1, 1), 2);

  auto cm = AggregateRegistry::Global().Lookup("colmatrix").value()->make();
  ASSERT_TRUE(cm->Update(Value::FromVector(
                             la::Vector(std::vector<double>{1, 2}), 0))
                  .ok());
  ASSERT_TRUE(cm->Update(Value::FromVector(
                             la::Vector(std::vector<double>{3, 4}), 1))
                  .ok());
  auto m2 = cm->Finalize();
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->matrix().rows(), 2u);
  EXPECT_DOUBLE_EQ(m2->matrix().At(0, 1), 3);
}

TEST(AggregateTest, MergeMatchesSingleShot) {
  // Two-phase aggregation (local partials + merge) must equal a
  // single-pass aggregate.
  for (const char* name : {"sum", "count", "avg", "min", "max"}) {
    auto whole = AggregateRegistry::Global().Lookup(name).value()->make();
    auto p1 = AggregateRegistry::Global().Lookup(name).value()->make();
    auto p2 = AggregateRegistry::Global().Lookup(name).value()->make();
    for (int i = 1; i <= 6; ++i) {
      ASSERT_TRUE(whole->Update(Value::Double(i)).ok());
      ASSERT_TRUE(((i % 2) ? p1 : p2)->Update(Value::Double(i)).ok());
    }
    ASSERT_TRUE(p1->Merge(*p2).ok());
    auto a = whole->Finalize();
    auto b = p1->Finalize();
    ASSERT_TRUE(a.ok() && b.ok()) << name;
    EXPECT_TRUE(a->Equals(*b)) << name << ": " << a->ToString() << " vs "
                               << b->ToString();
  }
}

TEST(AggregateTest, EmptyGroupSemantics) {
  auto sum = AggregateRegistry::Global().Lookup("sum").value()->make();
  EXPECT_TRUE(sum->Finalize()->is_null());
  auto count = AggregateRegistry::Global().Lookup("count").value()->make();
  EXPECT_EQ(count->Finalize()->int_value(), 0);
}

TEST(AggregateTest, ElementWiseMinMax) {
  auto emin = AggregateRegistry::Global().Lookup("emin").value()->make();
  ASSERT_TRUE(
      emin->Update(Value::FromVector(la::Vector(std::vector<double>{1, 5})))
          .ok());
  ASSERT_TRUE(
      emin->Update(Value::FromVector(la::Vector(std::vector<double>{3, 2})))
          .ok());
  auto out = emin->Finalize();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->vector().values(), (std::vector<double>{1, 2}));
}

TEST(CatalogTest, TableLifecycle) {
  Catalog catalog(4);
  Schema schema({Column{"", "a", DataType::Integer()}});
  ASSERT_TRUE(catalog.CreateTable("t", schema).ok());
  EXPECT_TRUE(catalog.HasTable("T"));  // case-insensitive
  EXPECT_FALSE(catalog.CreateTable("t", schema).ok());  // duplicate
  EXPECT_TRUE(catalog.GetTable("t").ok());
  EXPECT_TRUE(catalog.DropTable("t").ok());
  EXPECT_FALSE(catalog.GetTable("t").ok());
  EXPECT_FALSE(catalog.DropTable("t").ok());
}

TEST(CatalogTest, ViewLifecycleAndNameConflicts) {
  Catalog catalog(4);
  Schema schema({Column{"", "a", DataType::Integer()}});
  ASSERT_TRUE(catalog.CreateTable("t", schema).ok());
  ASSERT_TRUE(catalog.CreateView({"v", {}, "SELECT a FROM t"}).ok());
  EXPECT_TRUE(catalog.HasView("v"));
  // A view cannot shadow a table and vice versa.
  EXPECT_FALSE(catalog.CreateView({"t", {}, "SELECT a FROM t"}).ok());
  EXPECT_FALSE(catalog.CreateTable("v", schema).ok());
  EXPECT_TRUE(catalog.DropView("v").ok());
}

}  // namespace
}  // namespace radb
