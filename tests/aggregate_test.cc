// Regression tests for the aggregate-layer fixes:
//  - SUM must reject scalar/LA mixtures in BOTH directions (the
//    scalar-first direction used to silently broadcast the scalar).
//  - VECTORIZE / ROWMATRIX / COLMATRIX must distinguish "no label
//    set" from a genuinely negative user label, and report the
//    offending value.

#include <gtest/gtest.h>

#include "api/database.h"

#include "test_util.h"
#include "catalog/aggregate.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "types/value.h"

namespace radb {
namespace {

std::unique_ptr<Aggregator> Make(const std::string& name) {
  auto fn = AggregateRegistry::Global().Lookup(name);
  EXPECT_TRUE(fn.ok()) << name;
  return (*fn)->make();
}

// ---------------------------------------------------------------------
// SUM mixed-kind groups.
// ---------------------------------------------------------------------

TEST(SumAggregatorTest, RejectsScalarThenMatrix) {
  auto agg = Make("sum");
  ASSERT_TRUE(agg->Update(Value::Double(1.5)).ok());
  Status s = agg->Update(Value::FromMatrix(la::Matrix(2, 2, 1.0)));
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_NE(s.message().find("mixed"), std::string::npos) << s.message();
}

TEST(SumAggregatorTest, RejectsMatrixThenScalar) {
  auto agg = Make("sum");
  ASSERT_TRUE(agg->Update(Value::FromMatrix(la::Matrix(2, 2, 1.0))).ok());
  EXPECT_EQ(agg->Update(Value::Double(1.5)).code(), StatusCode::kTypeError);
  EXPECT_EQ(agg->Update(Value::Int(7)).code(), StatusCode::kTypeError);
}

TEST(SumAggregatorTest, RejectsScalarThenVector) {
  auto agg = Make("sum");
  ASSERT_TRUE(agg->Update(Value::Int(2)).ok());
  EXPECT_EQ(agg->Update(Value::FromVector(la::Vector(3, 1.0))).code(),
            StatusCode::kTypeError);
}

TEST(SumAggregatorTest, RejectsVectorThenMatrix) {
  auto agg = Make("sum");
  ASSERT_TRUE(agg->Update(Value::FromVector(la::Vector(3, 1.0))).ok());
  EXPECT_EQ(agg->Update(Value::FromMatrix(la::Matrix(3, 3, 1.0))).code(),
            StatusCode::kTypeError);
}

TEST(SumAggregatorTest, HomogeneousGroupsStillWork) {
  auto scalars = Make("sum");
  ASSERT_TRUE(scalars->Update(Value::Int(2)).ok());
  ASSERT_TRUE(scalars->Update(Value::Double(0.5)).ok());  // numeric widening
  EXPECT_DOUBLE_EQ(scalars->Finalize()->AsDouble().value(), 2.5);

  auto matrices = Make("sum");
  ASSERT_TRUE(matrices->Update(Value::FromMatrix(la::Matrix(2, 2, 1.0))).ok());
  ASSERT_TRUE(matrices->Update(Value::FromMatrix(la::Matrix(2, 2, 2.0))).ok());
  EXPECT_DOUBLE_EQ(matrices->Finalize()->matrix().At(1, 1), 3.0);
}

// ---------------------------------------------------------------------
// Label diagnostics: unset vs genuinely negative.
// ---------------------------------------------------------------------

TEST(VectorizeAggregatorTest, UnsetLabelReportedAsUnset) {
  auto agg = Make("vectorize");
  Status s = agg->Update(Value::Labeled(1.0, kNoLabel));
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_NE(s.message().find("no label set"), std::string::npos)
      << s.message();
}

TEST(VectorizeAggregatorTest, NegativeLabelReportedWithValue) {
  auto agg = Make("vectorize");
  Status s = agg->Update(Value::Labeled(1.0, -1000));
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_NE(s.message().find("-1000"), std::string::npos) << s.message();
  EXPECT_EQ(s.message().find("no label set"), std::string::npos)
      << s.message();
}

TEST(RowColMatrixAggregatorTest, UnsetVsNegativeLabel) {
  for (const char* name : {"rowmatrix", "colmatrix"}) {
    auto unset = Make(name);
    Status s1 = unset->Update(Value::FromVector(la::Vector(2, 1.0)));
    EXPECT_EQ(s1.code(), StatusCode::kExecutionError);
    EXPECT_NE(s1.message().find("no label set"), std::string::npos)
        << name << ": " << s1.message();

    auto negative = Make(name);
    Status s2 =
        negative->Update(Value::FromVector(la::Vector(2, 1.0), -7));
    EXPECT_EQ(s2.code(), StatusCode::kExecutionError);
    EXPECT_NE(s2.message().find("-7"), std::string::npos)
        << name << ": " << s2.message();
    EXPECT_EQ(s2.message().find("no label set"), std::string::npos)
        << name << ": " << s2.message();
  }
}

// End-to-end: a blocking-style query whose computed labels go
// negative (the paper's `x.id - mi*1000` pattern with a wrong block
// offset) must name the bad label, not claim the label was never set.
TEST(VectorizeAggregatorTest, NegativeComputedLabelThroughSql) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE t (k INTEGER, d DOUBLE)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 3; ++i) {
    rows.push_back({Value::Int(i), Value::Double(i + 0.5)});
  }
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());
  auto rs =
      Exec(db, "SELECT VECTORIZE(label_scalar(d, k - 1000)) FROM t");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(rs.status().message().find("negative label"), std::string::npos)
      << rs.status().message();
  EXPECT_EQ(rs.status().message().find("no label set"), std::string::npos)
      << rs.status().message();
}

// The legacy introspection builtins still report -1 for "unset" (the
// documented public contract) even though the internal sentinel moved
// off -1.
TEST(LabelSentinelTest, GetLabelStillReportsMinusOneForUnset) {
  Database db;
  ASSERT_TRUE(Exec(db, "CREATE TABLE v (x VECTOR[3])").ok());
  ASSERT_TRUE(db.BulkInsert("v", {{Value::FromVector(la::Vector(3, 1.0))}})
                  .ok());
  auto rs = Exec(db, "SELECT get_vector_label(x) FROM v");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->at(0, 0).int_value(), -1);
}

}  // namespace
}  // namespace radb
