#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace radb::parser {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT x.y, 42, 3.14, 'it''s' <> <= >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "x");
  EXPECT_EQ((*tokens)[2].type, TokenType::kDot);
  EXPECT_EQ((*tokens)[5].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[7].double_value, 3.14);
  EXPECT_EQ((*tokens)[9].text, "it's");
  EXPECT_EQ((*tokens)[10].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[11].type, TokenType::kLe);
  EXPECT_EQ((*tokens)[12].type, TokenType::kGe);
}

TEST(LexerTest, CommentsAndErrors) {
  auto ok = Tokenize("SELECT 1 -- trailing comment\n, 2");
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

TEST(LexerTest, ScientificNotation) {
  auto tokens = Tokenize("1e300 2.5e-3 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].double_value, 1e300);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 2.5e-3);
  EXPECT_EQ((*tokens)[2].int_value, 7);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseStatement("SELECT a, b AS c FROM t WHERE a = 1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "c");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].name, "t");
  ASSERT_NE(s.where, nullptr);
}

TEST(ParserTest, CreateTableWithLaTypes) {
  auto stmt = ParseStatement(
      "CREATE TABLE m (mat MATRIX[10][10], vec VECTOR[100], "
      "id INTEGER, lbl LABELED_SCALAR, v2 VECTOR[], m2 MATRIX[10][])");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  ASSERT_EQ(stmt->columns.size(), 6u);
  EXPECT_EQ(stmt->columns[0].type.ToString(), "MATRIX[10][10]");
  EXPECT_EQ(stmt->columns[1].type.ToString(), "VECTOR[100]");
  EXPECT_EQ(stmt->columns[3].type.ToString(), "LABELED_SCALAR");
  EXPECT_EQ(stmt->columns[4].type.ToString(), "VECTOR[]");
  EXPECT_EQ(stmt->columns[5].type.ToString(), "MATRIX[10][]");
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseStatement("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->items[0].expr->ToString(), "(a + (b * c))");
  auto stmt2 = ParseStatement("SELECT (a + b) * c FROM t");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(stmt2->select->items[0].expr->ToString(), "((a + b) * c)");
  auto stmt3 =
      ParseStatement("SELECT 1 FROM t WHERE a = 1 AND b = 2 OR c = 3");
  ASSERT_TRUE(stmt3.ok());
  EXPECT_EQ(stmt3->select->where->ToString(),
            "(((a = 1) AND (b = 2)) OR (c = 3))");
}

TEST(ParserTest, FunctionCallsAndNesting) {
  auto stmt = ParseStatement(
      "SELECT matrix_vector_multiply(matrix_inverse("
      "SUM(outer_product(x.x_i, x.x_i))), SUM(x.x_i * y.y_i)) "
      "FROM x, y WHERE x.i = y.i");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *stmt->select->items[0].expr;
  EXPECT_EQ(e.kind, Expr::Kind::kFunctionCall);
  EXPECT_EQ(e.name, "matrix_vector_multiply");
  ASSERT_EQ(e.children.size(), 2u);
}

TEST(ParserTest, GroupByOrderLimit) {
  auto stmt = ParseStatement(
      "SELECT a, SUM(b) FROM t GROUP BY a ORDER BY a DESC, b LIMIT 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->group_by.size(), 1u);
  ASSERT_EQ(stmt->select->order_by.size(), 2u);
  EXPECT_TRUE(stmt->select->order_by[0].descending);
  EXPECT_FALSE(stmt->select->order_by[1].descending);
  EXPECT_EQ(stmt->select->limit, 5);
}

TEST(ParserTest, SubqueryInFrom) {
  auto stmt = ParseStatement(
      "SELECT t.a FROM (SELECT x AS a FROM u) AS t WHERE t.a > 0");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->select->from[0].kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(stmt->select->from[0].alias, "t");
  // Alias is mandatory for derived tables.
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM (SELECT 2 FROM v)").ok());
}

TEST(ParserTest, JoinOnDesugarsToWhere) {
  auto stmt = ParseStatement(
      "SELECT 1 FROM a JOIN b ON a.x = b.y WHERE a.z > 2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->from.size(), 2u);
  // Both the ON and WHERE conditions are ANDed.
  EXPECT_NE(stmt->select->where->ToString().find("AND"), std::string::npos);
}

TEST(ParserTest, CreateViewStoresSql) {
  auto stmt = ParseStatement(
      "CREATE VIEW v (a, b) AS SELECT x, y FROM t WHERE x > 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kCreateView);
  EXPECT_EQ(stmt->view_aliases,
            (std::vector<std::string>{"a", "b"}));
  // The stored text must itself re-parse.
  auto reparsed = ParseSelect(stmt->view_sql);
  EXPECT_TRUE(reparsed.ok());
}

TEST(ParserTest, InsertValues) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 2.5, 'a'), (-3, 4e2, 'b')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kInsert);
  ASSERT_EQ(stmt->insert_rows.size(), 2u);
  EXPECT_EQ(stmt->insert_rows[0].size(), 3u);
}

TEST(ParserTest, ScriptWithMultipleStatements) {
  auto script = ParseScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); "
      "SELECT a FROM t;");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 3u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELEC 1").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a BADTYPE)").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a VECTOR[-1])").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM t GROUP a").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1; SELECT 2 extra").ok());
}

TEST(ParserTest, SelectToStringRoundTrips) {
  const char* queries[] = {
      "SELECT a, SUM(b * 2) AS s FROM t, u WHERE t.x = u.y GROUP BY a",
      "SELECT VECTORIZE(label_scalar(y_i, i)) FROM y",
      "SELECT lhs.tileRow, rhs.tileCol, "
      "SUM(matrix_multiply(lhs.mat, rhs.mat)) "
      "FROM bigMatrix AS lhs, anotherBigMat AS rhs "
      "WHERE lhs.tileCol = rhs.tileRow "
      "GROUP BY lhs.tileRow, rhs.tileCol",
  };
  for (const char* q : queries) {
    auto first = ParseSelect(q);
    ASSERT_TRUE(first.ok()) << q;
    const std::string printed = (*first)->ToString();
    auto second = ParseSelect(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(printed, (*second)->ToString());
  }
}

TEST(ParserTest, CountStar) {
  auto stmt = ParseStatement("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *stmt->select->items[0].expr;
  ASSERT_EQ(e.children.size(), 1u);
  EXPECT_EQ(e.children[0]->kind, Expr::Kind::kStar);
}

}  // namespace
}  // namespace radb::parser
