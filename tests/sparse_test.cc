// Sparse tile subsystem battery (ctest label `sparse`): CSR/COO
// representation round-trips, semiring algebra laws, bit-identity of
// the sparse kernels against the dense oracles, the density-adaptive
// dispatch boundary, Value serialization through spill / result cache
// / reopen, and the graph-analytics workload (min-plus SSSP + or-and
// k-hop) against brute-force references.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "la/sparse/sparse.h"
#include "obs/metrics_registry.h"
#include "storage/serialize.h"
#include "test_util.h"
#include "workloads/graph.h"

namespace radb {
namespace {

namespace fs = std::filesystem;
using la::sparse::CooEntry;
using la::sparse::CooMatrix;
using la::sparse::CsrMatrix;
using la::sparse::PlusTimes;
using la::sparse::Semiring;
using la::sparse::SemiringByName;
using workloads::GraphEdge;

/// Random dense matrix on the 0.5 grid with roughly `density` nonzero
/// cells — the same exactness discipline as the fuzzer.
la::Matrix RandomGrid(size_t rows, size_t cols, double density, Rng* rng) {
  la::Matrix m(rows, cols);
  const uint64_t one_in =
      density >= 1.0 ? 1 : static_cast<uint64_t>(1.0 / density);
  for (size_t i = 0; i < rows * cols; ++i) {
    if (rng->NextBelow(one_in) == 0) {
      const size_t v = rng->NextBelow(8);
      m.data()[i] = v < 4 ? (static_cast<double>(v) - 4.0) * 0.5
                          : (static_cast<double>(v) - 3.0) * 0.5;
    }
  }
  return m;
}

void ExpectSameMatrix(const la::Matrix& a, const la::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows() * a.cols(); ++i) {
    // Exact: the whole point of the grid values.
    EXPECT_EQ(a.data()[i], b.data()[i]) << "flat index " << i;
  }
}

/// Byte-exact row fingerprint (FP bit patterns and row order).
std::string Fingerprint(const ResultSet& rs) {
  std::ostringstream os(std::ios::binary);
  for (const Row& row : rs.rows) WriteRowBinary(os, row);
  return os.str();
}

class TempDir {
 public:
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "/radb_sparse_XXXXXX";
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---- Representations -------------------------------------------------

TEST(CsrTest, DenseRoundTripAndLookup) {
  Rng rng(1);
  for (double density : {0.0, 0.05, 0.3, 1.0}) {
    const la::Matrix m = RandomGrid(7, 5, density, &rng);
    const CsrMatrix csr = CsrMatrix::FromDense(m);
    EXPECT_EQ(csr.nnz(), la::sparse::DenseNnz(m));
    ExpectSameMatrix(csr.ToDense(), m);
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t c = 0; c < m.cols(); ++c) {
        EXPECT_EQ(csr.At(r, c), m.At(r, c));
      }
    }
  }
}

TEST(CsrTest, CooRoundTripSortsAndValidates) {
  // Deliberately unsorted COO input, including an explicit 0.0 entry
  // that must be dropped (stored zero means "no entry").
  CooMatrix coo;
  coo.rows = 3;
  coo.cols = 4;
  coo.entries = {{2, 1, 4.0}, {0, 3, -1.5}, {0, 0, 2.0}, {1, 2, 0.0}};
  auto csr = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(csr.ok());
  EXPECT_EQ(csr->nnz(), 3u);
  EXPECT_EQ(csr->At(0, 0), 2.0);
  EXPECT_EQ(csr->At(0, 3), -1.5);
  EXPECT_EQ(csr->At(2, 1), 4.0);
  EXPECT_EQ(csr->At(1, 2), 0.0);

  // ToCoo -> FromCoo is the identity on canonical matrices.
  auto again = CsrMatrix::FromCoo(csr->ToCoo());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again == *csr);

  // Duplicates and out-of-range coordinates are rejected.
  coo.entries = {{0, 0, 1.0}, {0, 0, 2.0}};
  EXPECT_FALSE(CsrMatrix::FromCoo(coo).ok());
  coo.entries = {{5, 0, 1.0}};
  EXPECT_FALSE(CsrMatrix::FromCoo(coo).ok());
}

TEST(CsrTest, EmptyAllZeroAndSingleEntryTiles) {
  // All-structural-zero tile.
  const CsrMatrix zero(3, 3);
  EXPECT_EQ(zero.nnz(), 0u);
  EXPECT_EQ(zero.density(), 0.0);
  ExpectSameMatrix(zero.ToDense(), la::Matrix(3, 3));

  // Degenerate 0-cell shapes never look sparse to the dispatcher.
  EXPECT_EQ(CsrMatrix(0, 0).density(), 1.0);

  // Single-entry tile survives a kernel round.
  la::Matrix one_m(3, 3);
  one_m.At(1, 2) = 2.5;
  const CsrMatrix one = CsrMatrix::FromDense(one_m);
  EXPECT_EQ(one.nnz(), 1u);
  auto prod = la::sparse::SpGemm(one, zero, PlusTimes());
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod->nnz(), 0u);
  auto prod2 = la::sparse::SpGemm(one, one, PlusTimes());
  ASSERT_TRUE(prod2.ok());
  EXPECT_EQ(prod2->nnz(), 0u);  // (1,2)*(1,2): inner indexes miss
}

TEST(CsrTest, ThresholdCompressionKeepsStrictlyLarger) {
  la::Matrix m(2, 2);
  m.At(0, 0) = 0.25;
  m.At(0, 1) = -0.25;
  m.At(1, 0) = 0.5;
  const CsrMatrix csr = CsrMatrix::FromDense(m, 0.25);
  EXPECT_EQ(csr.nnz(), 1u);  // only |0.5| > 0.25 survives
  EXPECT_EQ(csr.At(1, 0), 0.5);
}

TEST(CsrTest, ByteSizeIsCapacityAwareAndSerializedSizeExact) {
  Rng rng(2);
  const la::Matrix m = RandomGrid(6, 6, 0.3, &rng);
  const CsrMatrix csr = CsrMatrix::FromDense(m);
  // Tracker charge covers at least the live arrays.
  EXPECT_GE(csr.ByteSize(), (csr.rows() + 1) * 8 + csr.nnz() * 12);
  // Serialized size formula matches WriteValueBinary to the byte.
  std::ostringstream os(std::ios::binary);
  WriteValueBinary(os, Value::FromSparseMatrix(csr));
  EXPECT_EQ(os.str().size(), 1 + csr.SerializedByteSize());
}

// ---- Semiring algebra ------------------------------------------------

TEST(SemiringTest, AlgebraLawsOnGridSamples) {
  const std::vector<double> numeric_samples = {-2.0, -0.5, 0.5, 1.0, 2.0};
  const std::vector<double> boolean_samples = {0.0, 1.0};  // or-and carrier
  for (const std::string& name : la::sparse::SemiringNames()) {
    auto sr = SemiringByName(name);
    ASSERT_TRUE(sr.ok()) << name;
    const Semiring& s = *sr;
    // Identity laws hold on the semiring's carrier: all of R for the
    // numeric semirings, {0, 1} for or-and (whose Add/Mul normalize
    // any nonzero input to 1.0).
    const bool boolean = s.kind == la::sparse::SemiringKind::kOrAnd;
    const auto& samples = boolean ? boolean_samples : numeric_samples;
    for (double a : samples) {
      // ⊕ identity, ⊗ identity, ⊗ annihilator.
      EXPECT_EQ(s.Add(s.zero, a), a) << name;
      EXPECT_EQ(s.Add(a, s.zero), a) << name;
      EXPECT_EQ(s.Mul(s.one, a), a) << name;
      EXPECT_EQ(s.Mul(a, s.one), a) << name;
      EXPECT_EQ(s.Mul(s.zero, a), s.zero) << name;
      for (double b : samples) {
        EXPECT_EQ(s.Add(a, b), s.Add(b, a)) << name;  // ⊕ commutative
        for (double c : samples) {
          EXPECT_EQ(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) << name;
          // Distributivity a⊗(b⊕c) = (a⊗b)⊕(a⊗c).
          EXPECT_EQ(s.Mul(a, s.Add(b, c)), s.Add(s.Mul(a, b), s.Mul(a, c)))
              << name;
        }
      }
    }
  }
  EXPECT_FALSE(SemiringByName("tropical").ok());
}

// ---- Kernels vs dense oracles ---------------------------------------

TEST(KernelTest, PlusTimesBitIdenticalToDenseKernels) {
  Rng rng(3);
  for (double density : {0.02, 0.1, 0.5, 1.0}) {
    const la::Matrix a = RandomGrid(8, 6, density, &rng);
    const la::Matrix b = RandomGrid(6, 7, density, &rng);
    const CsrMatrix sa = CsrMatrix::FromDense(a);
    const CsrMatrix sb = CsrMatrix::FromDense(b);

    auto dense = la::Multiply(a, b);
    ASSERT_TRUE(dense.ok());
    auto gemm = la::sparse::SpGemm(sa, sb, PlusTimes());
    ASSERT_TRUE(gemm.ok());
    ExpectSameMatrix(gemm->ToDense(), *dense);
    auto spmm = la::sparse::SpMm(sa, b, PlusTimes());
    ASSERT_TRUE(spmm.ok());
    ExpectSameMatrix(*spmm, *dense);

    ExpectSameMatrix(la::sparse::SpTransposeSelfMultiply(sa, PlusTimes()),
                     la::TransposeSelfMultiply(a));

    la::Vector x(a.cols());
    for (size_t i = 0; i < x.size(); ++i) {
      x[i] = (static_cast<double>(rng.NextBelow(9)) - 4.0) * 0.5;
    }
    auto mv = la::MatrixVectorMultiply(a, x);
    ASSERT_TRUE(mv.ok());
    auto smv = la::sparse::SpMV(sa, x, PlusTimes());
    ASSERT_TRUE(smv.ok());
    for (size_t i = 0; i < mv->size(); ++i) EXPECT_EQ((*smv)[i], (*mv)[i]);

    la::Vector y(a.rows());
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] = (static_cast<double>(rng.NextBelow(9)) - 4.0) * 0.5;
    }
    auto vm = la::VectorMatrixMultiply(y, a);
    ASSERT_TRUE(vm.ok());
    auto svm = la::sparse::SpVM(y, sa, PlusTimes());
    ASSERT_TRUE(svm.ok());
    for (size_t i = 0; i < vm->size(); ++i) EXPECT_EQ((*svm)[i], (*vm)[i]);
  }
}

TEST(KernelTest, SemiringKernelsMatchDenseOracles) {
  Rng rng(4);
  for (const std::string& name : la::sparse::SemiringNames()) {
    const Semiring s = *SemiringByName(name);
    for (double density : {0.1, 0.5}) {
      const la::Matrix a = RandomGrid(6, 5, density, &rng);
      const la::Matrix b = RandomGrid(5, 6, density, &rng);
      auto oracle = la::sparse::DenseMultiply(a, b, s);
      ASSERT_TRUE(oracle.ok());
      auto gemm = la::sparse::SpGemm(CsrMatrix::FromDense(a),
                                     CsrMatrix::FromDense(b), s);
      ASSERT_TRUE(gemm.ok()) << name;
      ExpectSameMatrix(gemm->ToDense(), *oracle);
      auto spmm = la::sparse::SpMm(CsrMatrix::FromDense(a), b, s);
      ASSERT_TRUE(spmm.ok());
      ExpectSameMatrix(*spmm, *oracle);
      ExpectSameMatrix(
          la::sparse::SpTransposeSelfMultiply(CsrMatrix::FromDense(a), s),
          la::sparse::DenseTransposeSelfMultiply(a, s));
    }
  }
}

TEST(KernelTest, EWiseAndMaskMatchBruteForce) {
  Rng rng(5);
  const la::Matrix a = RandomGrid(5, 5, 0.4, &rng);
  const la::Matrix b = RandomGrid(5, 5, 0.4, &rng);
  const CsrMatrix sa = CsrMatrix::FromDense(a);
  const CsrMatrix sb = CsrMatrix::FromDense(b);
  const Semiring& s = PlusTimes();

  auto add = la::sparse::EWiseAdd(sa, sb, s);
  ASSERT_TRUE(add.ok());
  auto add_oracle = la::sparse::DenseEWiseAdd(a, b, s);
  ASSERT_TRUE(add_oracle.ok());
  ExpectSameMatrix(add->ToDense(), *add_oracle);

  auto mul = la::sparse::EWiseMul(sa, sb, s);
  ASSERT_TRUE(mul.ok());
  auto mul_oracle = la::sparse::DenseEWiseMul(a, b, s);
  ASSERT_TRUE(mul_oracle.ok());
  ExpectSameMatrix(mul->ToDense(), *mul_oracle);

  for (bool complement : {false, true}) {
    auto masked = la::sparse::Mask(sa, sb, complement);
    ASSERT_TRUE(masked.ok());
    for (size_t r = 0; r < 5; ++r) {
      for (size_t c = 0; c < 5; ++c) {
        const bool mask_present = sb.At(r, c) != 0.0;
        const double want =
            (mask_present != complement) ? sa.At(r, c) : 0.0;
        EXPECT_EQ(masked->At(r, c), want)
            << "complement=" << complement << " at (" << r << "," << c
            << ")";
      }
    }
  }
}

TEST(KernelTest, TransposeTwiceIsIdentity) {
  Rng rng(6);
  const CsrMatrix sa = CsrMatrix::FromDense(RandomGrid(6, 4, 0.3, &rng));
  const CsrMatrix t = la::sparse::SpTranspose(sa);
  EXPECT_EQ(t.rows(), sa.cols());
  EXPECT_EQ(t.cols(), sa.rows());
  EXPECT_TRUE(la::sparse::SpTranspose(t) == sa);
}

// ---- Value payload: serialization, equality, hashing ----------------

TEST(SparseValueTest, BinaryRoundTripIsExactAndByteSized) {
  Rng rng(7);
  for (double density : {0.0, 0.2, 0.8}) {
    const CsrMatrix csr =
        CsrMatrix::FromDense(RandomGrid(5, 8, density, &rng));
    const Value v = Value::FromSparseMatrix(csr);
    std::ostringstream os(std::ios::binary);
    WriteValueBinary(os, v);
    const std::string bytes = os.str();
    EXPECT_EQ(bytes.size(), v.ByteSize());

    std::istringstream is(bytes);
    auto back = ReadValueBinary(is);
    ASSERT_TRUE(back.ok());
    ASSERT_TRUE(back->is_sparse_matrix());
    EXPECT_TRUE(back->sparse_matrix() == csr);
    EXPECT_TRUE(back->Equals(v));
  }
}

TEST(SparseValueTest, MixedRepresentationEqualityAndHash) {
  Rng rng(8);
  const la::Matrix m = RandomGrid(4, 4, 0.3, &rng);
  const Value sparse = Value::FromSparseMatrix(CsrMatrix::FromDense(m));
  const Value dense = Value::FromMatrix(la::Matrix(m));
  EXPECT_TRUE(sparse.Equals(dense));
  EXPECT_TRUE(dense.Equals(sparse));
  EXPECT_EQ(sparse.Hash(), dense.Hash());
  EXPECT_EQ(sparse.kind(), TypeKind::kMatrix);

  la::Matrix other(m);
  other.At(3, 3) = other.At(3, 3) == 0.0 ? 1.0 : 0.0;
  EXPECT_FALSE(sparse.Equals(Value::FromMatrix(std::move(other))));
}

TEST(SparseValueTest, DenseMatrixByteSizeIgnoresCapacitySlack) {
  // la::Matrix::ByteSize() is capacity-aware (the tracker charge);
  // Value::ByteSize() stays serialization-exact for dense matrices.
  const la::Matrix m(4, 3);
  EXPECT_GE(m.ByteSize(), 4 * 3 * sizeof(double));
  const Value v = Value::FromMatrix(la::Matrix(m));
  std::ostringstream os(std::ios::binary);
  WriteValueBinary(os, v);
  EXPECT_EQ(os.str().size(), v.ByteSize());
  EXPECT_EQ(v.ByteSize(), 1 + 8 + 8 + 4 * 3 * sizeof(double));
}

// ---- Density-adaptive dispatch --------------------------------------

TEST(DispatchTest, ThresholdBoundaryIsInclusiveAndCounted) {
  Database::Config cfg;
  cfg.obs.enable_metrics = true;
  cfg.sparse.auto_dispatch = true;
  cfg.sparse.density_threshold = 0.25;
  Database db(cfg);
  ASSERT_EQ(la::sparse::DispatchPolicy::Threshold(), 0.25);

  la::Matrix at(4, 4);  // density exactly 4/16 == threshold -> sparse
  at.At(0, 0) = at.At(1, 1) = at.At(2, 2) = at.At(3, 3) = 1.5;
  la::Matrix above(at);  // 5/16 > threshold -> dense
  above.At(0, 1) = 0.5;
  ASSERT_TRUE(
      Exec(db, "CREATE TABLE t (k INTEGER, a MATRIX[4][4], b MATRIX[4][4])")
          .ok());
  std::vector<Row> rows;
  rows.push_back({Value::Int(0), Value::FromMatrix(la::Matrix(at)),
                  Value::FromMatrix(la::Matrix(above))});
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());

  obs::MetricsRegistry* reg = obs::GlobalMetrics();
  ASSERT_NE(reg, nullptr);
  obs::Counter* auto_ctr = reg->counter("la.sparse.auto_sparsify");
  obs::Counter* dense_ctr = reg->counter("la.sparse.dispatch_dense");

  const uint64_t auto_before = auto_ctr->value();
  auto rs = Exec(db, "SELECT matrix_multiply(a, a) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(auto_ctr->value(), auto_before)
      << "density == threshold must take the sparse kernel";
  // Auto-dispatch is kernel selection only: the result is dense and
  // bit-identical to the dense kernel's answer.
  ASSERT_EQ(rs->rows.size(), 1u);
  ASSERT_FALSE(rs->rows[0][0].is_sparse_matrix());
  auto want = la::Multiply(at, at);
  ASSERT_TRUE(want.ok());
  ExpectSameMatrix(rs->rows[0][0].matrix(), *want);

  const uint64_t dense_before = dense_ctr->value();
  auto rs2 = Exec(db, "SELECT matrix_multiply(b, b) FROM t");
  ASSERT_TRUE(rs2.ok());
  EXPECT_GT(dense_ctr->value(), dense_before)
      << "density above threshold must stay on the dense kernel";

  // Disabling auto-dispatch pins the dense kernel even for sparse
  // densities (process-global policy, last writer wins).
  la::sparse::DispatchPolicy::Set(false, 0.25);
  const uint64_t auto_frozen = auto_ctr->value();
  ASSERT_TRUE(Exec(db, "SELECT matrix_multiply(a, a) FROM t").ok());
  EXPECT_EQ(auto_ctr->value(), auto_frozen);
  la::sparse::DispatchPolicy::Set(true, 0.05);  // restore default
}

// ---- SQL surface -----------------------------------------------------

TEST(SparseSqlTest, BuiltinsEndToEnd) {
  Database db;
  Rng rng(9);
  const la::Matrix m = RandomGrid(4, 4, 0.3, &rng);
  ASSERT_TRUE(Exec(db, "CREATE TABLE t (m MATRIX[4][4])").ok());
  std::vector<Row> rows;
  rows.push_back({Value::FromMatrix(la::Matrix(m))});
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());

  auto rs = Exec(db,
                 "SELECT nnz(m), is_sparse(m), is_sparse(sparsify(m)), "
                 "is_sparse(densify(sparsify(m))), densify(sparsify(m)) "
                 "FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  const Row& row = rs->rows[0];
  EXPECT_EQ(row[0].int_value(),
            static_cast<int64_t>(la::sparse::DenseNnz(m)));
  EXPECT_FALSE(row[1].bool_value());
  EXPECT_TRUE(row[2].bool_value());
  EXPECT_FALSE(row[3].bool_value());
  ExpectSameMatrix(row[4].matrix(), m);

  // Semiring argument reaches the kernel; bad names are type errors.
  auto mp = Exec(db, "SELECT matrix_multiply(sparsify(m), m, 'min_plus') "
                     "FROM t");
  ASSERT_TRUE(mp.ok()) << mp.status();
  auto oracle = la::sparse::DenseMultiply(m, m, *SemiringByName("min_plus"));
  ASSERT_TRUE(oracle.ok());
  ExpectSameMatrix(mp->rows[0][0].Densified().matrix(), *oracle);
  EXPECT_FALSE(Exec(db, "SELECT matrix_multiply(m, m, 'boolean') FROM t").ok());
  EXPECT_FALSE(Exec(db, "SELECT sparsify(m, -1.0) FROM t").ok());

  // Masking via SQL: mask with itself keeps everything, complement
  // empties it.
  auto mask = Exec(db,
                   "SELECT nnz(matrix_mask(sparsify(m), m)), "
                   "nnz(matrix_mask(sparsify(m), m, 1)) FROM t");
  ASSERT_TRUE(mask.ok()) << mask.status();
  EXPECT_EQ(mask->rows[0][0].int_value(),
            static_cast<int64_t>(la::sparse::DenseNnz(m)));
  EXPECT_EQ(mask->rows[0][1].int_value(), 0);
}

TEST(SparseSqlTest, ResultCacheServesSparseValuesExactly) {
  Database::Config cfg;
  cfg.obs.enable_metrics = true;
  Database db(cfg);
  Rng rng(10);
  ASSERT_TRUE(Exec(db, "CREATE TABLE t (k INTEGER, m MATRIX[4][4])").ok());
  std::vector<Row> rows;
  for (int64_t k = 0; k < 6; ++k) {
    rows.push_back({Value::Int(k),
                    Value::FromSparseMatrix(CsrMatrix::FromDense(
                        RandomGrid(4, 4, 0.2, &rng)))});
  }
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());

  const std::string q =
      "SELECT k, m, matrix_multiply(m, m, 'max_plus') FROM t ORDER BY k";
  auto first = Exec(db, q);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = Exec(db, q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Fingerprint(*first), Fingerprint(*second));

  uint64_t result_hits = 0;
  auto cache_rs = Exec(db, "SELECT cache, hits FROM radb_cache");
  ASSERT_TRUE(cache_rs.ok());
  for (const Row& r : cache_rs->rows) {
    if (r[0].string_value() == "result") {
      result_hits = static_cast<uint64_t>(r[1].int_value());
    }
  }
  EXPECT_GE(result_hits, 1u);
}

TEST(SparseSqlTest, SpillRoundTripUnderTinyBudget) {
  Database::Config cfg;
  cfg.cache.enable_result_cache = false;  // rerun must actually execute
  Database db(cfg);
  // ORDER BY keeps an unspillable sort buffer, so the spill path to
  // exercise is the join build + shuffle: joined rows carrying sparse
  // matrix values get serialized into spill files and read back.
  Rng rng(11);
  ASSERT_TRUE(Exec(db, "CREATE TABLE a (k INTEGER, m MATRIX[16][16]); "
                       "CREATE TABLE b (k INTEGER, m MATRIX[16][16])")
                  .ok());
  std::vector<Row> arows, brows;
  for (int64_t k = 0; k < 1024; ++k) {
    arows.push_back({Value::Int(k),
                     Value::FromSparseMatrix(CsrMatrix::FromDense(
                         RandomGrid(16, 16, 0.3, &rng)))});
    brows.push_back({Value::Int(k),
                     Value::FromSparseMatrix(CsrMatrix::FromDense(
                         RandomGrid(16, 16, 0.3, &rng)))});
  }
  ASSERT_TRUE(db.BulkInsert("a", std::move(arows)).ok());
  ASSERT_TRUE(db.BulkInsert("b", std::move(brows)).ok());

  // EMIN over an exact grid is order-independent, so the spilled run
  // must be bit-identical to the in-memory one.
  const std::string q =
      "SELECT COUNT(*), EMIN(elementwise_multiply(a.m, b.m, 'min_plus')) "
      "FROM a, b WHERE a.k = b.k";
  auto unbudgeted = Exec(db, q);
  ASSERT_TRUE(unbudgeted.ok()) << unbudgeted.status();
  auto spilled =
      db.Execute(q, QueryOptions{.memory_budget_bytes = 256u << 10});
  ASSERT_TRUE(spilled.ok()) << spilled.status();
  ASSERT_EQ(spilled->statements.size(), 1u);
  EXPECT_GT(spilled->statements[0].spill_bytes, 0u)
      << "budget did not actually force a spill";
  ASSERT_EQ(spilled->last().rows.size(), 1u);
  EXPECT_EQ(spilled->last().rows[0][0].int_value(), 1024);
  EXPECT_EQ(Fingerprint(*unbudgeted), Fingerprint(spilled->last()));
}

TEST(SparseSqlTest, PersistentReopenRoundTrip) {
  TempDir dir;
  Rng rng(12);
  std::vector<Row> rows;
  for (int64_t k = 0; k < 8; ++k) {
    rows.push_back({Value::Int(k),
                    Value::FromSparseMatrix(CsrMatrix::FromDense(
                        RandomGrid(5, 5, 0.25, &rng)))});
  }
  std::string before;
  {
    auto db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(
        Exec(**db, "CREATE TABLE t (k INTEGER, m MATRIX[5][5])").ok());
    ASSERT_TRUE((*db)->BulkInsert("t", rows).ok());
    auto rs = Exec(**db, "SELECT k, m FROM t ORDER BY k");
    ASSERT_TRUE(rs.ok());
    before = Fingerprint(*rs);
  }
  {
    auto db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    auto rs = Exec(**db, "SELECT k, m FROM t ORDER BY k");
    ASSERT_TRUE(rs.ok()) << rs.status();
    ASSERT_EQ(rs->rows.size(), 8u);
    EXPECT_EQ(Fingerprint(*rs), before);
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_TRUE(rs->rows[i][1].Equals(rows[i][1])) << "row " << i;
      EXPECT_TRUE(rs->rows[i][1].is_sparse_matrix());
    }
  }
}

TEST(SparseSqlTest, TiledMinPlusViaEminMatchesWholeMatrixOracle) {
  // 6x6 fully-dense positive matrices tiled 3x3: per-tile min-plus
  // products hold partial minima over their k-range, EMIN folds the
  // tiles. (Full density so every partial product cell has a real
  // contribution — a structural hole would read as "no path".)
  Rng rng(13);
  la::Matrix a(6, 6), b(6, 6);
  for (size_t i = 0; i < 36; ++i) {
    a.data()[i] = 0.5 * static_cast<double>(1 + rng.NextBelow(8));
    b.data()[i] = 0.5 * static_cast<double>(1 + rng.NextBelow(8));
  }

  Database db;
  ASSERT_TRUE(
      Exec(db, "CREATE TABLE l (tr INTEGER, tc INTEGER, mat MATRIX[3][3]); "
               "CREATE TABLE r (tr INTEGER, tc INTEGER, mat MATRIX[3][3])")
          .ok());
  auto tile = [](const la::Matrix& m, size_t tr, size_t tc) {
    la::Matrix t(3, 3);
    for (size_t i = 0; i < 3; ++i) {
      for (size_t j = 0; j < 3; ++j) t.At(i, j) = m.At(tr * 3 + i, tc * 3 + j);
    }
    return t;
  };
  std::vector<Row> lrows, rrows;
  for (size_t tr = 0; tr < 2; ++tr) {
    for (size_t tc = 0; tc < 2; ++tc) {
      lrows.push_back({Value::Int(static_cast<int64_t>(tr)),
                       Value::Int(static_cast<int64_t>(tc)),
                       Value::FromMatrix(tile(a, tr, tc))});
      rrows.push_back({Value::Int(static_cast<int64_t>(tr)),
                       Value::Int(static_cast<int64_t>(tc)),
                       Value::FromMatrix(tile(b, tr, tc))});
    }
  }
  ASSERT_TRUE(db.BulkInsert("l", std::move(lrows)).ok());
  ASSERT_TRUE(db.BulkInsert("r", std::move(rrows)).ok());

  auto rs = Exec(db,
                 "SELECT l.tr, r.tc, EMIN(matrix_multiply(l.mat, r.mat, "
                 "'min_plus')) AS mat FROM l, r WHERE l.tc = r.tr "
                 "GROUP BY l.tr, r.tc ORDER BY l.tr, r.tc");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 4u);

  auto oracle = la::sparse::DenseMultiply(a, b, *SemiringByName("min_plus"));
  ASSERT_TRUE(oracle.ok());
  for (const Row& row : rs->rows) {
    const size_t tr = static_cast<size_t>(row[0].int_value());
    const size_t tc = static_cast<size_t>(row[1].int_value());
    const la::Matrix& got = row[2].Densified().matrix();
    for (size_t i = 0; i < 3; ++i) {
      for (size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(got.At(i, j), oracle->At(tr * 3 + i, tc * 3 + j))
            << "tile (" << tr << "," << tc << ") cell (" << i << "," << j
            << ")";
      }
    }
  }
}

// ---- Graph workload vs brute force ----------------------------------

std::vector<GraphEdge> RandomGraph(size_t n, size_t avg_degree, Rng* rng) {
  std::vector<GraphEdge> edges;
  for (size_t s = 0; s < n; ++s) {
    const size_t degree = rng->NextBelow(2 * avg_degree + 1);
    for (size_t e = 0; e < degree; ++e) {
      edges.push_back({static_cast<int64_t>(s),
                       static_cast<int64_t>(rng->NextBelow(n)),
                       0.5 * static_cast<double>(1 + rng->NextBelow(8))});
    }
  }
  return edges;
}

/// Classic (asynchronous) Bellman-Ford — an implementation independent
/// of both the SQL path and the synchronous oracle.
std::vector<double> BellmanFord(size_t n, const std::vector<GraphEdge>& edges,
                                size_t source) {
  std::vector<double> dist(n, workloads::kUnreachable);
  dist[source] = 0.0;
  for (size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (const GraphEdge& e : edges) {
      const double cand = dist[e.src] + e.weight;
      if (cand < dist[e.dst]) {
        dist[e.dst] = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

TEST(GraphTest, SsspMatchesBruteForceOracles) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    Rng rng(seed);
    const size_t n = 10 + rng.NextBelow(6);
    const std::vector<GraphEdge> edges = RandomGraph(n, 2, &rng);

    Database db;
    workloads::GraphAnalytics graph(&db);
    ASSERT_TRUE(graph.LoadEdges(n, edges).ok());
    auto sssp = graph.Sssp(0);
    ASSERT_TRUE(sssp.ok()) << sssp.status();

    const std::vector<double> oracle = workloads::SsspOracle(n, edges, 0);
    const std::vector<double> bf = BellmanFord(n, edges, 0);
    ASSERT_EQ(sssp->values.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(sssp->values[i], oracle[i]) << "seed " << seed << " node "
                                            << i;
      EXPECT_EQ(sssp->values[i], bf[i]) << "seed " << seed << " node " << i;
    }
    // Converged: the final iteration found nothing left to improve.
    ASSERT_FALSE(sssp->frontier_sizes.empty());
    EXPECT_EQ(sssp->frontier_sizes.back(), 0u);
  }
}

TEST(GraphTest, KHopMatchesBfsDepths) {
  Rng rng(31);
  const size_t n = 12;
  const std::vector<GraphEdge> edges = RandomGraph(n, 2, &rng);

  // BFS hop counts (unit hops, weights ignored).
  std::vector<int> depth(n, -1);
  depth[0] = 0;
  std::vector<size_t> frontier{0};
  for (int d = 1; !frontier.empty(); ++d) {
    std::vector<size_t> next;
    for (size_t u : frontier) {
      for (const GraphEdge& e : edges) {
        if (static_cast<size_t>(e.src) == u && depth[e.dst] < 0) {
          depth[e.dst] = d;
          next.push_back(static_cast<size_t>(e.dst));
        }
      }
    }
    frontier = std::move(next);
  }

  Database db;
  workloads::GraphAnalytics graph(&db);
  ASSERT_TRUE(graph.LoadEdges(n, edges).ok());
  for (size_t k : {0u, 1u, 3u}) {
    auto hop = graph.KHop(0, k);
    ASSERT_TRUE(hop.ok()) << hop.status();
    const std::vector<double> oracle = workloads::KHopOracle(n, edges, 0, k);
    for (size_t i = 0; i < n; ++i) {
      const bool want = depth[i] >= 0 && static_cast<size_t>(depth[i]) <= k;
      EXPECT_EQ(hop->values[i], want ? 1.0 : 0.0)
          << "k=" << k << " node " << i;
      EXPECT_EQ(hop->values[i], oracle[i]) << "k=" << k << " node " << i;
    }
  }
}

TEST(GraphTest, RejectsBadEdges) {
  Database db;
  workloads::GraphAnalytics graph(&db);
  EXPECT_FALSE(graph.LoadEdges(3, {{0, 5, 1.0}}).ok());   // out of range
  EXPECT_FALSE(graph.LoadEdges(3, {{0, 1, 0.0}}).ok());   // structural weight
  EXPECT_FALSE(graph.LoadEdges(3, {{0, 1, -2.0}}).ok());  // negative
  EXPECT_FALSE(graph.Sssp(0).ok());                       // not loaded
}

}  // namespace
}  // namespace radb
