#include <gtest/gtest.h>

#include <cmath>

#include "api/database.h"

#include "test_util.h"
#include "common/rng.h"
#include "la/random.h"

namespace radb {
namespace {

/// Exercises every registered built-in through SQL end to end.
class BuiltinsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(55);
    mat_ = la::Matrix(3, 3, {4, 1, 0, 1, 5, 2, 0, 2, 6});  // SPD
    rect_ = la::RandomMatrix(rng, 2, 4);
    vec_ = la::Vector(std::vector<double>{1, -2, 3});
    ASSERT_TRUE(Exec(db_, "CREATE TABLE d (m MATRIX[3][3], "
                               "r MATRIX[2][4], v VECTOR[3], s DOUBLE, "
                               "i INTEGER)")
                    .ok());
    ASSERT_TRUE(db_.BulkInsert("d", {{Value::FromMatrix(mat_),
                                      Value::FromMatrix(rect_),
                                      Value::FromVector(vec_),
                                      Value::Double(-2.25),
                                      Value::Int(2)}})
                    .ok());
  }

  Result<Value> Eval(const std::string& expr) {
    auto rs = Exec(db_, "SELECT " + expr + " FROM d");
    if (!rs.ok()) return rs.status();
    return rs->at(0, 0);
  }

  Database db_;
  la::Matrix mat_, rect_;
  la::Vector vec_;
};

TEST_F(BuiltinsTest, MultiplicationFamily) {
  auto mm = Eval("matrix_multiply(m, m)");
  ASSERT_TRUE(mm.ok());
  auto expected = la::Multiply(mat_, mat_);
  EXPECT_LT(mm->matrix().MaxAbsDiff(*expected), 1e-12);

  auto mvm = Eval("matrix_vector_multiply(m, v)");
  ASSERT_TRUE(mvm.ok());
  EXPECT_LT(mvm->vector().MaxAbsDiff(
                *la::MatrixVectorMultiply(mat_, vec_)),
            1e-12);

  auto vmm = Eval("vector_matrix_multiply(v, m)");
  ASSERT_TRUE(vmm.ok());
  EXPECT_LT(vmm->vector().MaxAbsDiff(
                *la::VectorMatrixMultiply(vec_, mat_)),
            1e-12);

  auto outer = Eval("outer_product(v, v)");
  ASSERT_TRUE(outer.ok());
  EXPECT_DOUBLE_EQ(outer->matrix().At(2, 1), -6.0);

  auto inner = Eval("inner_product(v, v)");
  ASSERT_TRUE(inner.ok());
  EXPECT_DOUBLE_EQ(inner->double_value(), 1 + 4 + 9);
}

TEST_F(BuiltinsTest, StructureFamily) {
  auto t = Eval("trans_matrix(r)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->matrix().rows(), 4u);
  EXPECT_LT(t->matrix().MaxAbsDiff(la::Transpose(rect_)), 1e-12);

  auto inv = Eval("matrix_multiply(matrix_inverse(m), m)");
  ASSERT_TRUE(inv.ok());
  EXPECT_LT(inv->matrix().MaxAbsDiff(la::Matrix::Identity(3)), 1e-10);

  auto solve = Eval("matrix_solve(m, v)");
  ASSERT_TRUE(solve.ok());
  EXPECT_LT(solve->vector().MaxAbsDiff(*la::Solve(mat_, vec_)), 1e-12);

  auto diag = Eval("diag(m)");
  ASSERT_TRUE(diag.ok());
  EXPECT_EQ(diag->vector().values(), (std::vector<double>{4, 5, 6}));

  auto dm = Eval("diag(diag_matrix(v))");
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->vector().values(), vec_.values());

  EXPECT_DOUBLE_EQ(Eval("trace(m)")->double_value(), 15.0);
  auto det = Eval("determinant(m)");
  ASSERT_TRUE(det.ok());
  EXPECT_NEAR(det->double_value(), *la::Determinant(mat_), 1e-10);

  auto rm = Eval("row_matrix(v)");
  ASSERT_TRUE(rm.ok());
  EXPECT_EQ(rm->matrix().rows(), 1u);
  EXPECT_EQ(rm->matrix().cols(), 3u);
  auto cm = Eval("col_matrix(v)");
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->matrix().rows(), 3u);
  EXPECT_EQ(cm->matrix().cols(), 1u);
  // row vector x matrix via row_matrix, as §3.1 describes.
  auto rv = Eval("matrix_multiply(row_matrix(v), m)");
  ASSERT_TRUE(rv.ok());
  EXPECT_LT(rv->matrix().Row(0).MaxAbsDiff(
                *la::VectorMatrixMultiply(vec_, mat_)),
            1e-12);
}

TEST_F(BuiltinsTest, CholeskyFamily) {
  auto l = Eval("cholesky(m)");
  ASSERT_TRUE(l.ok()) << l.status();
  auto llt = la::Multiply(l->matrix(), la::Transpose(l->matrix()));
  ASSERT_TRUE(llt.ok());
  EXPECT_LT(llt->MaxAbsDiff(mat_), 1e-10);
  auto x = Eval("matrix_solve_spd(m, v)");
  ASSERT_TRUE(x.ok());
  EXPECT_LT(x->vector().MaxAbsDiff(*la::Solve(mat_, vec_)), 1e-10);
  // Indefinite input is a numeric error.
  ASSERT_TRUE(Exec(db_, "CREATE TABLE ind (m MATRIX[2][2])").ok());
  ASSERT_TRUE(db_.BulkInsert("ind", {{Value::FromMatrix(
                                     la::Matrix(2, 2, {1, 2, 2, 1}))}})
                  .ok());
  EXPECT_EQ(Exec(db_, "SELECT cholesky(m) FROM ind").status().code(),
            StatusCode::kNumericError);
}

TEST_F(BuiltinsTest, LabelFamily) {
  auto ls = Eval("label_scalar(s, i)");
  ASSERT_TRUE(ls.ok());
  EXPECT_DOUBLE_EQ(ls->labeled().value, -2.25);
  EXPECT_EQ(ls->labeled().label, 2);
  EXPECT_EQ(Eval("get_label(label_scalar(s, i))")->int_value(), 2);
  EXPECT_DOUBLE_EQ(Eval("labeled_value(label_scalar(s, i))")->double_value(),
                   -2.25);
  EXPECT_EQ(Eval("get_vector_label(v)")->int_value(), -1);  // default
  EXPECT_EQ(Eval("get_vector_label(label_vector(v, 9))")->int_value(), 9);
  EXPECT_DOUBLE_EQ(Eval("get_scalar(v, 2)")->double_value(), 3.0);
  EXPECT_FALSE(Eval("get_scalar(v, 3)").ok());
  EXPECT_FALSE(Eval("get_scalar(v, 0 - 1)").ok());
}

TEST_F(BuiltinsTest, ElementAccessFamily) {
  EXPECT_DOUBLE_EQ(Eval("get_entry(m, 1, 2)")->double_value(), 2.0);
  EXPECT_FALSE(Eval("get_entry(m, 3, 0)").ok());
  auto row = Eval("get_row(m, 1)");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->vector().values(), (std::vector<double>{1, 5, 2}));
  auto col = Eval("get_col(m, 0)");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->vector().values(), (std::vector<double>{4, 1, 0}));
  EXPECT_FALSE(Eval("get_row(m, 5)").ok());
  EXPECT_FALSE(Eval("get_col(m, 5)").ok());
}

TEST_F(BuiltinsTest, ConstructorsFamily) {
  auto id = Eval("identity_matrix(4)");
  ASSERT_TRUE(id.ok());
  EXPECT_LT(id->matrix().MaxAbsDiff(la::Matrix::Identity(4)), 1e-15);
  auto z = Eval("zeros_matrix(2, 5)");
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z->matrix().rows(), 2u);
  EXPECT_EQ(z->matrix().cols(), 5u);
  EXPECT_DOUBLE_EQ(z->matrix().Sum(), 0.0);
  EXPECT_DOUBLE_EQ(Eval("sum_vector(ones_vector(7))")->double_value(), 7.0);
  EXPECT_DOUBLE_EQ(Eval("sum_vector(zeros_vector(7))")->double_value(), 0.0);
  EXPECT_FALSE(Eval("zeros_vector(0 - 2)").ok());
  EXPECT_FALSE(Eval("identity_matrix(0 - 1)").ok());
}

TEST_F(BuiltinsTest, IntrospectionAndReductions) {
  EXPECT_EQ(Eval("vector_size(v)")->int_value(), 3);
  EXPECT_EQ(Eval("matrix_rows(r)")->int_value(), 2);
  EXPECT_EQ(Eval("matrix_cols(r)")->int_value(), 4);
  EXPECT_DOUBLE_EQ(Eval("sum_vector(v)")->double_value(), 2.0);
  EXPECT_DOUBLE_EQ(Eval("min_vector(v)")->double_value(), -2.0);
  EXPECT_DOUBLE_EQ(Eval("max_vector(v)")->double_value(), 3.0);
  EXPECT_EQ(Eval("argmin_vector(v)")->int_value(), 1);
  EXPECT_EQ(Eval("argmax_vector(v)")->int_value(), 2);
  EXPECT_NEAR(Eval("norm2(v)")->double_value(), std::sqrt(14.0), 1e-12);
  EXPECT_DOUBLE_EQ(Eval("sum_matrix(m)")->double_value(), mat_.Sum());
  EXPECT_DOUBLE_EQ(Eval("min_matrix(m)")->double_value(), 0.0);
  EXPECT_DOUBLE_EQ(Eval("max_matrix(m)")->double_value(), 6.0);
  EXPECT_NEAR(Eval("norm_f(m)")->double_value(), mat_.NormF(), 1e-12);
  auto rmins = Eval("row_mins(m)");
  ASSERT_TRUE(rmins.ok());
  EXPECT_EQ(rmins->vector().values(), (std::vector<double>{0, 1, 0}));
  auto rmaxs = Eval("row_maxs(m)");
  ASSERT_TRUE(rmaxs.ok());
  EXPECT_EQ(rmaxs->vector().values(), (std::vector<double>{4, 5, 6}));
}

TEST_F(BuiltinsTest, ScalarMathFamily) {
  EXPECT_DOUBLE_EQ(Eval("abs_val(s)")->double_value(), 2.25);
  EXPECT_DOUBLE_EQ(Eval("sqrt_val(abs_val(s) + 1.75)")->double_value(), 2.0);
  EXPECT_FALSE(Eval("sqrt_val(s)").ok());  // negative
  EXPECT_NEAR(Eval("ln_val(exp_val(1.5))")->double_value(), 1.5, 1e-12);
  EXPECT_FALSE(Eval("ln_val(0.0)").ok());
  EXPECT_DOUBLE_EQ(Eval("eq_indicator(i, 2)")->double_value(), 1.0);
  EXPECT_DOUBLE_EQ(Eval("eq_indicator(i, 3)")->double_value(), 0.0);
}

TEST_F(BuiltinsTest, NullStrictness) {
  // NULL anywhere in the arguments yields NULL (no evaluation).
  ASSERT_TRUE(Exec(db_, "CREATE TABLE n (m MATRIX[3][3], "
                             "v VECTOR[3])")
                  .ok());
  ASSERT_TRUE(
      db_.BulkInsert("n", {{Value::Null(), Value::FromVector(vec_)}}).ok());
  auto rs =
      Exec(db_, "SELECT matrix_vector_multiply(m, v) FROM n");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_TRUE(rs->at(0, 0).is_null());
}

TEST_F(BuiltinsTest, ArityErrors) {
  EXPECT_EQ(Eval("diag(m, m)").status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Eval("matrix_multiply(m)").status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Eval("inner_product(v)").status().code(),
            StatusCode::kTypeError);
}

}  // namespace
}  // namespace radb
