#!/usr/bin/env sh
# Differential fuzz campaign under AddressSanitizer + UBSan:
# configures a dedicated build tree with -DRADB_SANITIZE=address,undefined,
# builds the fuzz_queries driver, replays the pinned regression seeds,
# then runs a seeded random sweep (>= 500 queries, each executed under
# all twelve engine configurations — {DP, greedy, no-early-projection}
# x {1t, 8t} x {row, batch} — and compared cell-exactly against the
# brute-force reference evaluator). Exits non-zero on any divergence
# or sanitizer report; divergences are shrunk to a minimal repro to
# paste into src/testing/regression_seeds.h.
#
# Usage: scripts/fuzz.sh [build-dir] [queries] [seed]
#   defaults: build-fuzz 600 1
set -eu

BUILD_DIR="${1:-build-fuzz}"
QUERIES="${2:-600}"
SEED="${3:-1}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -S "$(dirname "$0")/.." -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRADB_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$JOBS" --target fuzz_queries
# halt_on_error so a UBSan report fails the run instead of scrolling by.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  "$BUILD_DIR/bench/fuzz_queries" --queries "$QUERIES" --seed "$SEED"

# Tight-budget pass: rerun the SQL-LA / tiled / aggregation suites
# with a 16 MB per-query memory budget (ctest label memory_budget), so
# the spill paths face the same assertions as the unbudgeted runs —
# under the sanitizers.
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target sql_la_test tiled_test sql_agg_test
(cd "$BUILD_DIR" && ctest -L memory_budget --output-on-failure)

# Concurrency pass: the service/cancellation suites and the
# multi-session bench smoke under ASan+UBSan (scripts/stress.sh runs
# the same label under TSan).
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target service_test cancel_test systab_test ablation_concurrency
(cd "$BUILD_DIR" && ctest -L concurrency --output-on-failure)

# Observability pass: system tables, telemetry ring, exporter — the
# same `obs` label scripts/stress.sh runs under TSan.
(cd "$BUILD_DIR" && ctest -L obs --output-on-failure)

# Vectorized engine pass: the row-vs-batch bit-identity battery and
# selection-vector edge cases under ASan+UBSan — columnar kernels index
# through selection vectors, so out-of-bounds lane math surfaces here
# first (scripts/stress.sh runs the same label under TSan).
cmake --build "$BUILD_DIR" -j "$JOBS" --target vectorized_test
(cd "$BUILD_DIR" && ctest -L vectorized --output-on-failure)

# Cache pass: plan/result cache hit/miss/invalidation suites and the
# cache ablation smoke (label `cache`), then the DDL-interleaved
# differential rounds — caches-on vs caches-off databases replaying
# hot statements across INSERT / CREATE-DROP / PREPARE churn — all
# under ASan+UBSan. A stale-cache bug surfaces here as a divergence;
# a lifetime bug in the shared entries surfaces as a sanitizer report
# (scripts/stress.sh runs the same label + rounds under TSan).
cmake --build "$BUILD_DIR" -j "$JOBS" --target cache_test ablation_cache
(cd "$BUILD_DIR" && ctest -L cache --output-on-failure)
"$BUILD_DIR/bench/fuzz_queries" --queries 0 --ddl-churn 200 --seed "$SEED"

# Storage pass: the persistence battery (pager/B+ tree/buffer-pool
# units, cold restarts, fork+SIGKILL crash recovery, larger-than-pool
# scans) and the fuzzer's close-reopen-compare rounds — page-file and
# WAL framing code is pointer-heavy, so ASan+UBSan is its first line
# of defense (scripts/stress.sh runs the same label under TSan).
cmake --build "$BUILD_DIR" -j "$JOBS" --target persist_test
(cd "$BUILD_DIR" && ctest -L storage --output-on-failure)
"$BUILD_DIR/bench/fuzz_queries" --queries 0 --reopen 8 --seed "$SEED"

# Sparse pass: CSR/COO kernels, semiring dispatch, sparse Value
# serialization through spill / cache / reopen, and the graph
# workload — pointer-walking CSR merge loops are classic off-by-one
# territory, so ASan+UBSan runs the whole label (scripts/stress.sh
# runs the same label under TSan).
cmake --build "$BUILD_DIR" -j "$JOBS" --target sparse_test
(cd "$BUILD_DIR" && ctest -L sparse --output-on-failure)
