#!/usr/bin/env sh
# ThreadSanitizer build-and-test: configures a dedicated build tree
# with -DRADB_SANITIZE=thread (TSan excludes AddressSanitizer; see
# scripts/ and the README's sanitizer notes for the asan/ubsan twin),
# builds everything, and runs the full test suite. The determinism
# and concurrent-obs tests drive the thread pool with real threads,
# so this is the race detector for the parallel runtime.
#
# Usage: scripts/tsan.sh [build-dir]   (default: build-tsan)
set -eu

BUILD_DIR="${1:-build-tsan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -S "$(dirname "$0")/.." -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRADB_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$JOBS"
# halt_on_error: fail the suite on the first race, not just the report.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure
