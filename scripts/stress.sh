#!/usr/bin/env sh
# Concurrency stress campaign under ThreadSanitizer:
# configures a dedicated build tree with -DRADB_SANITIZE=thread, runs
# the concurrency-labeled ctest suites (service admission/sessions,
# cancellation/deadlines, the multi-session spill regression, and the
# ablation_concurrency smoke — every result cross-checked bit-for-bit
# against single-session execution), then a multi-session
# differential-fuzzer round: 4 concurrent service sessions replaying
# generated query batches against the serial oracle. Exits non-zero on
# any divergence, test failure, or TSan report.
#
# Usage: scripts/stress.sh [build-dir] [queries] [seed]
#   defaults: build-tsan 120 1
set -eu

BUILD_DIR="${1:-build-tsan}"
QUERIES="${2:-120}"
SEED="${3:-1}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -S "$(dirname "$0")/.." -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRADB_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target service_test cancel_test systab_test vectorized_test \
  cache_test persist_test sparse_test ablation_concurrency ablation_cache \
  fuzz_queries

# halt_on_error so a race report fails the run instead of scrolling by.
# die_after_fork=0: the storage crash-recovery battery forks children
# that open their own Database (worker threads after fork); the forks
# happen while the parent is single-threaded, which TSan supports.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:die_after_fork=0}"

# Concurrency suites (ctest label shared with scripts/fuzz.sh).
(cd "$BUILD_DIR" && ctest -L concurrency --output-on-failure)

# Observability suite: system-table scans racing workload sessions,
# the exporter sampler thread, and the telemetry ring — the prime
# TSan targets this tree adds.
(cd "$BUILD_DIR" && ctest -L obs --output-on-failure)

# Vectorized engine suite: the batch pipeline fans partitions out over
# the worker pool and merges per-worker aggregate states, so the
# bit-identity battery doubles as a race detector for the columnar
# path (same label scripts/fuzz.sh runs under ASan).
(cd "$BUILD_DIR" && ctest -L vectorized --output-on-failure)

# Cache suite: the plan/result caches are shared mutable state across
# sessions — the 8-session hit storm, cancel-during-fill, and the
# ablation smoke's warm phase are the races TSan should chew on
# (same label scripts/fuzz.sh runs under ASan).
(cd "$BUILD_DIR" && ctest -L cache --output-on-failure)

# Storage suite: the persistence battery — buffer-pool loads race
# across worker threads during concurrent scans, and checkpoint vs
# reader interleavings are exactly what TSan should chew on (same
# label scripts/fuzz.sh runs under ASan).
(cd "$BUILD_DIR" && ctest -L storage --output-on-failure)

# Sparse suite: the multiply dispatch counters are process-global
# atomics updated from every worker thread, and the sparse kernels run
# inside the parallel pipeline — the bit-identity assertions double as
# race detectors (same label scripts/fuzz.sh runs under ASan).
(cd "$BUILD_DIR" && ctest -L sparse --output-on-failure)

# Multi-session differential fuzzing: 4 concurrent sessions vs the
# serial oracle, plus the usual single-threaded sweep for coverage,
# then the DDL-interleaved caches-on-vs-off rounds and the
# close-reopen-compare persistence rounds.
"$BUILD_DIR/bench/fuzz_queries" --queries "$QUERIES" --seed "$SEED" \
  --sessions 4
"$BUILD_DIR/bench/fuzz_queries" --queries 0 --ddl-churn 100 --seed "$SEED"
"$BUILD_DIR/bench/fuzz_queries" --queries 0 --reopen 4 --seed "$SEED"
