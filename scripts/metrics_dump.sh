#!/usr/bin/env sh
# Runs the example telemetry workload and prints what an operator
# would see: the radb_* system tables queried through SQL, the
# Prometheus text exposition, and the JSONL query-record feed.
#
# Usage: scripts/metrics_dump.sh [build-dir]
#   default: build
set -eu

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -S "$(dirname "$0")/.." -B "$BUILD_DIR"
fi
cmake --build "$BUILD_DIR" -j "$JOBS" --target telemetry_export

"$BUILD_DIR/examples/telemetry_export"
